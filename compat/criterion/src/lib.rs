//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`), `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as a
//! plain wall-clock runner that prints mean/min time per iteration. No
//! statistics, no plots; enough to compare hot paths release-to-release.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLES: usize = 20;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _c: self, name: name.into(), sample_size }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, recording one sample of its wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One untimed warm-up pass, then `samples` timed passes.
    let mut b = Bencher { samples: Vec::with_capacity(samples + 1) };
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {id:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {id:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
