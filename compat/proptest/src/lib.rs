//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of proptest it actually uses: the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, integer range
//! strategies, tuples, `collection::vec`, `bool::ANY`, and
//! `sample::select`. Case generation is driven by a deterministic SplitMix64
//! stream seeded from the test name, so failures reproduce across runs.
//! `PROPTEST_CASES` overrides the per-test case count (default 64).

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to drive all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Seed a generator deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 bits of the SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }
}

/// How many cases each `proptest!` test runs (`PROPTEST_CASES` env override).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Outcome of one generated case body.
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it a failure.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a formatted message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value from the deterministic stream.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + rng.below(span as u128) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Size bounds for `collection::vec` (inclusive).
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both boolean values.
    #[derive(Clone, Copy)]
    pub struct Any;

    /// Uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy selecting uniformly from a fixed set of options.
    pub struct Select<T>(Vec<T>);

    /// Uniform choice among `options` (cloned per case).
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select of empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u128) as usize].clone()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy, TestRng,
    };
}

/// Define deterministic property tests over named strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let mut run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                match run() {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed on case {case}/{cases}: {msg}")
                    }
                }
            }
        }
    )+};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
