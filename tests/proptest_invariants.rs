//! Property-based tests (proptest) on the core data structures and on
//! the CAP address algebra.

use caps::core::{CapConfig, CtaAwarePrefetcher};
use caps::sim::cache::{Cache, Lookup};
use caps::sim::coalescer::coalesce;
use caps::sim::config::CacheConfig;
use caps::sim::cta_scheduler::CtaDistributor;
use caps::sim::isa::{AddrPattern, AffinePattern, CtaTerm};
use caps::sim::mshr::{MshrFile, MshrOutcome, Waiter};
use caps::sim::prefetch::{DemandObservation, Prefetcher};
use caps::sim::sched::{TwoLevelScheduler, WarpScheduler};
use caps::sim::types::{line_base, CtaCoord};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        line_size: 128,
        assoc: 2,
        mshr_entries: 8,
        mshr_merge: 4,
        hit_latency: 1,
    })
}

proptest! {
    /// A filled line is observable until something evicts it; occupancy
    /// never exceeds capacity.
    #[test]
    fn cache_occupancy_is_bounded(addrs in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        let mut c = small_cache();
        for a in addrs {
            let line = line_base(a, 128);
            c.fill(line, None);
            prop_assert!(c.probe(line), "a just-filled line must be resident");
            prop_assert!(c.valid_lines() <= 16);
        }
    }

    /// access() after fill() always hits, regardless of history.
    #[test]
    fn cache_fill_then_access_hits(
        history in proptest::collection::vec(0u64..1 << 16, 0..64),
        probe in 0u64..1 << 16,
    ) {
        let mut c = small_cache();
        for a in history {
            c.fill(line_base(a, 128), None);
        }
        let line = line_base(probe, 128);
        c.fill(line, None);
        let hit = matches!(c.access(line), Lookup::Hit { .. });
        prop_assert!(hit);
    }

    /// The coalescer produces unique, aligned lines covering every lane.
    #[test]
    fn coalescer_covers_every_lane(
        base in 0u64..1 << 30,
        cta_pitch in 0i64..1 << 16,
        warp_stride in -(1i64 << 12)..1 << 12,
        lane_stride in 0i64..256,
        warp in 0u32..16,
        linear in 0u32..256,
    ) {
        let p = AffinePattern {
            base: base + (1 << 14), // keep addresses positive
            cta_term: CtaTerm::Linear { pitch: cta_pitch },
            warp_stride,
            lane_stride,
            iter_stride: 0,
        };
        let pat = AddrPattern::Affine(p);
        let cta = CtaCoord::from_linear(linear, 64);
        let mut lines = Vec::new();
        coalesce(&pat, cta, warp, 0, 32, 128, &mut lines);
        prop_assert!(!lines.is_empty() && lines.len() <= 32);
        for (i, &l) in lines.iter().enumerate() {
            prop_assert_eq!(l % 128, 0);
            prop_assert!(!lines[..i].contains(&l), "duplicate line");
        }
        for lane in 0..32 {
            let l = line_base(p.addr(cta, warp, lane, 0), 128);
            prop_assert!(lines.contains(&l), "lane {lane} uncovered");
        }
    }

    /// CAP's generated prefetch address equals the trailing warp's
    /// actual demand line for ANY affine geometry — the §V address
    /// algebra, verified for arbitrary parameters.
    #[test]
    fn cap_predictions_match_demands_for_any_affine_kernel(
        base in 1u64 << 20..1 << 28,
        x_pitch in 0i64..2048,
        y_pitch in 0i64..1 << 16,
        warp_stride_lines in 1i64..64,
        lead in 0u32..4u32,
        detect in 0u32..4u32,
        linear in 0u32..128,
    ) {
        prop_assume!(lead != detect);
        let warp_stride = warp_stride_lines * 128; // line-aligned strides
        let p = AffinePattern {
            base,
            cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
            warp_stride,
            lane_stride: 4,
            iter_stride: 0,
        };
        let cta = CtaCoord::from_linear(linear, 16);
        let mut cap = CtaAwarePrefetcher::with_config(CapConfig::default());
        cap.on_cta_launch(0, cta);
        let mut out = Vec::new();
        let observe = |cap: &mut CtaAwarePrefetcher, warp: u32, out: &mut Vec<_>| {
            let mut lines = Vec::new();
            coalesce(&AddrPattern::Affine(p), cta, warp, 0, 32, 128, &mut lines);
            let obs = DemandObservation {
                cycle: 0,
                pc: 4,
                cta_slot: 0,
                cta,
                warp_in_cta: warp,
                warp_slot: warp as usize,
                warps_per_cta: 4,
                lines: &lines,
                is_affine: true,
                iter: 0,
            };
            cap.on_demand(&obs, out);
        };
        observe(&mut cap, lead, &mut out);
        observe(&mut cap, detect, &mut out);
        // Every generated request must match the target warp's demand.
        for r in &out {
            let target = r.target_warp.expect("CAP always binds a warp") as u32;
            let mut lines = Vec::new();
            coalesce(&AddrPattern::Affine(p), cta, target, 0, 32, 128, &mut lines);
            prop_assert!(
                lines.contains(&r.line),
                "prefetch {:#x} not demanded by warp {target}",
                r.line
            );
        }
        // And with a detected stride there must be work for the others.
        prop_assert!(!out.is_empty());
    }

    /// MSHR conservation: allocations + merges never exceed capacity
    /// bounds, and completion drains exactly what was allocated.
    #[test]
    fn mshr_conserves_entries(lines in proptest::collection::vec(0u64..16u64, 1..64)) {
        let mut m = MshrFile::new(4, 4);
        let mut live: Vec<u64> = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            let line = l * 128;
            match m.demand_miss(line, Waiter { warp: i % 8 }) {
                MshrOutcome::Allocated => live.push(line),
                MshrOutcome::Merged { .. } => prop_assert!(live.contains(&line)),
                MshrOutcome::ReservationFail => {
                    prop_assert!(m.free() == 0 || live.contains(&line));
                }
            }
            prop_assert!(m.len() <= 4);
        }
        for line in live.drain(..) {
            let e = m.complete(line);
            prop_assert!(!e.waiters.is_empty());
        }
        prop_assert!(m.is_empty());
    }

    /// Two-level scheduler conservation: every resident warp is always
    /// in exactly one of (ready, pending), under arbitrary event churn.
    #[test]
    fn two_level_conserves_warps(events in proptest::collection::vec((0usize..12, 0u8..4), 0..300)) {
        let mut s = TwoLevelScheduler::new(4, true, false);
        for w in 0..12 {
            s.on_launch(w, w % 4 == 0, (w % 2) as u8);
        }
        for (w, ev) in events {
            match ev {
                0 => s.on_long_latency(w),
                1 => s.on_ready_again(w),
                2 => {
                    let _ = s.on_prefetch_fill(w);
                }
                _ => {
                    let mut any = |_x: usize| true;
                    let _ = s.pick(0, &mut any);
                }
            }
            prop_assert!(s.ready_len() <= 4);
        }
    }

    /// The CTA distributor dispenses each id exactly once, regardless of
    /// the fill pattern.
    #[test]
    fn distributor_dispenses_each_cta_once(total in 1u32..200, sms in 1usize..20, slots in 1usize..10) {
        let mut d = CtaDistributor::new(total);
        let mut seen = vec![false; total as usize];
        for (_, id) in d.initial_fill(sms, slots) {
            prop_assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        while let Some(id) = d.next_cta() {
            prop_assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
