//! Cross-crate integration tests: whole-GPU simulations exercising the
//! CAPS stack end to end at reduced scale.

use caps::prelude::*;

#[test]
fn caps_speeds_up_the_stride_friendly_core() {
    // The paper's headline direction: across stride-friendly kernels,
    // CAPS must not lose to the baseline on aggregate.
    let workloads = [Workload::Lps, Workload::Jc1, Workload::Cnv];
    let mut ratio_sum = 0.0;
    for w in workloads {
        let base = run_one(&RunSpec::paper(w, Engine::Baseline));
        let caps = run_one(&RunSpec::paper(w, Engine::Caps));
        ratio_sum += caps.ipc() / base.ipc();
    }
    let mean = ratio_sum / workloads.len() as f64;
    assert!(
        mean > 1.0,
        "mean CAPS speedup on stride kernels was {mean:.3}"
    );
}

#[test]
fn caps_accuracy_is_high_on_affine_kernels() {
    for w in [Workload::Lps, Workload::Jc1, Workload::Mm] {
        let r = run_one(&RunSpec::paper(w, Engine::Caps));
        assert!(
            r.stats.accuracy() > 0.9,
            "{}: accuracy {:.2}",
            w.abbr(),
            r.stats.accuracy()
        );
    }
}

#[test]
fn indirect_loads_are_excluded_from_prefetching() {
    // BFS's visited/cost chases are indirect; CAP must only target the
    // affine metadata, keeping coverage low but positive.
    let r = run_one(&RunSpec::small(Workload::Bfs, Engine::Caps));
    assert!(
        r.stats.prefetch_issued > 0,
        "metadata loads should prefetch"
    );
    assert!(
        r.stats.coverage() < 0.5,
        "indirect loads must not be covered: {:.2}",
        r.stats.coverage()
    );
}

#[test]
fn inter_warp_prefetching_pollutes_across_cta_boundaries() {
    // §III-B: INTER's cross-boundary prefetches are wrong. Its accuracy
    // must be clearly below CAPS accuracy on the same kernel.
    let inter = run_one(&RunSpec::paper(Workload::Cnv, Engine::Inter));
    let caps = run_one(&RunSpec::paper(Workload::Cnv, Engine::Caps));
    assert!(
        inter.stats.accuracy() < caps.stats.accuracy(),
        "INTER {:.2} vs CAPS {:.2}",
        inter.stats.accuracy(),
        caps.stats.accuracy()
    );
    assert!(inter.stats.prefetch_early_evicted + inter.stats.prefetch_unused_resident > 0);
}

#[test]
fn whole_matrix_is_deterministic() {
    let specs = vec![
        RunSpec::small(Workload::Mm, Engine::Caps),
        RunSpec::small(Workload::Bfs, Engine::Mta),
        RunSpec::small(Workload::Scn, Engine::Nlp),
    ];
    let a = run_matrix(&specs);
    let b = run_matrix(&specs);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats, "{} {}", x.workload, x.engine);
    }
}

#[test]
fn every_workload_completes_under_every_engine_at_small_scale() {
    let mut engines = vec![Engine::Baseline];
    engines.extend(Engine::FIGURE10);
    let specs: Vec<RunSpec> = all_workloads()
        .into_iter()
        .flat_map(|w| engines.iter().map(move |&e| RunSpec::small(w, e)))
        .collect();
    let recs = run_matrix(&specs);
    for r in &recs {
        assert!(
            r.stats.ctas_completed > 0,
            "{} {}: no CTAs completed",
            r.workload,
            r.engine
        );
        assert!(r.stats.cycles > 0);
        assert!(r.ipc() > 0.0);
    }
}

#[test]
fn prefetchers_never_change_results_only_timing() {
    // The same kernel must execute the same instruction count under any
    // prefetcher: prefetching is a pure performance hint.
    let mut engines = vec![Engine::Baseline];
    engines.extend(Engine::FIGURE10);
    let specs: Vec<RunSpec> = engines
        .iter()
        .map(|&e| RunSpec::small(Workload::Ste, e))
        .collect();
    let recs = run_matrix(&specs);
    let base_inst = recs[0].stats.warp_instructions;
    for r in &recs {
        assert_eq!(r.stats.warp_instructions, base_inst, "{}", r.engine);
        assert_eq!(r.stats.ctas_completed, recs[0].stats.ctas_completed);
    }
}

#[test]
fn fewer_concurrent_ctas_hurt_throughput() {
    // Fig. 11's frame: curtailing concurrency loses more than any
    // prefetcher can recover.
    let mut one = RunSpec::small(Workload::Jc1, Engine::Baseline);
    one.base_config.max_ctas_per_sm = 1;
    let eight = RunSpec::small(Workload::Jc1, Engine::Baseline);
    let r1 = run_one(&one);
    let r8 = run_one(&eight);
    assert!(
        r1.ipc() < r8.ipc(),
        "1 CTA {:.3} should be slower than 8 CTAs {:.3}",
        r1.ipc(),
        r8.ipc()
    );
}

#[test]
fn caps_bandwidth_overhead_is_small() {
    // Fig. 13: accurate prefetching must not blow up request traffic.
    let base = run_one(&RunSpec::paper(Workload::Lps, Engine::Baseline));
    let caps = run_one(&RunSpec::paper(Workload::Lps, Engine::Caps));
    let overhead = caps.stats.icnt_requests as f64 / base.stats.icnt_requests as f64;
    assert!(overhead < 1.30, "traffic overhead {overhead:.2}");
}

#[test]
fn energy_model_tracks_cycles() {
    let base = run_one(&RunSpec::paper(Workload::Lps, Engine::Baseline));
    let caps = run_one(&RunSpec::paper(Workload::Lps, Engine::Caps));
    let ratio = caps.energy.total_mj() / base.energy.total_mj();
    assert!(ratio > 0.7 && ratio < 1.2, "energy ratio {ratio:.3}");
    assert!(caps.energy.caps_mj > 0.0, "CAPS table energy accounted");
    assert_eq!(base.energy.caps_mj, 0.0, "baseline carries no table energy");
}

#[test]
fn pas_improves_prefetch_distance_over_lrr() {
    // Fig. 14b: the prefetch-aware scheduler buys earlier prefetches
    // than plain round-robin for the same engine.
    let lrr = run_one(&RunSpec::paper(Workload::Mm, Engine::CapsOnLrr));
    let pas = run_one(&RunSpec::paper(Workload::Mm, Engine::Caps));
    assert!(lrr.stats.prefetch_issued > 0 && pas.stats.prefetch_issued > 0);
    // Both must at least produce measurable distances.
    assert!(pas.stats.mean_prefetch_distance() > 0.0);
}
