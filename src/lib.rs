//! # caps — CTA-Aware Prefetching and Scheduling for GPUs
//!
//! A full reproduction of Koo, Jeon, Liu, Kim & Annavaram, *CTA-Aware
//! Prefetching and Scheduling for GPU* (IEEE IPDPS 2018), built on a
//! from-scratch cycle-level GPU simulator. This facade crate re-exports
//! the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | the Fermi-class GPU microarchitecture simulator (SMs, warp schedulers, coalescer, caches + MSHRs, crossbar, FR-FCFS GDDR5 DRAM) |
//! | [`core`] | the paper's contribution: the CTA-Aware Prefetcher (PerCTA + DIST tables) and Prefetch-Aware Scheduler |
//! | [`prefetchers`] | the comparison engines: INTRA, INTER, MTA, NLP, LAP, ORCH |
//! | [`workloads`] | the 16-benchmark synthetic suite (Table IV) |
//! | [`metrics`] | parallel experiment harness, energy model, reporting |
//!
//! ## Quick start
//!
//! ```
//! use caps::prelude::*;
//!
//! // Run convolutionSeparable under CAPS and under the baseline.
//! let base = run_one(&RunSpec::small(Workload::Cnv, Engine::Baseline));
//! let caps = run_one(&RunSpec::small(Workload::Cnv, Engine::Caps));
//! assert!(caps.stats.prefetch_issued > 0);
//! println!("speedup: {:.3}", caps.ipc() / base.ipc());
//! ```

#![warn(missing_docs)]

pub use caps_core as core;
pub use caps_gpu_sim as sim;
pub use caps_metrics as metrics;
pub use caps_prefetchers as prefetchers;
pub use caps_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use caps_core::{caps_config, caps_factory, CapConfig, CtaAwarePrefetcher};
    pub use caps_gpu_sim::prelude::*;
    pub use caps_metrics::{run_matrix, run_one, EnergyModel, Engine, RunRecord, RunSpec, Table};
    pub use caps_workloads::{all_workloads, Scale, Workload};
}
