//! Multi-kernel application (§II-A: "A GPU application consists of
//! several kernels"): a separable convolution as two dependent passes —
//! the row pass writes an intermediate image that the column pass
//! re-reads through the (persistent) cache hierarchy.
//!
//! ```text
//! cargo run --release --example multi_kernel_app
//! ```

use caps::prelude::*;

const ROW: i64 = 16 * 32 * 4; // 16 CTAs across × 32 lanes × 4 B
const WPC: i64 = 4;

fn pass(name: &str, src: u32, dst: u32, taps: i64, alu: u32) -> Kernel {
    let region = |i: u32| 0x1000_0000u64 + ((i as u64) << 24);
    let x_pitch = 32 * 4;
    let y_pitch = ROW * WPC;
    let mut b = ProgramBuilder::new();
    for t in 0..taps {
        b = b.ld(AddrPattern::Affine(AffinePattern {
            base: (region(src) as i64 + t * WPC * ROW) as Addr,
            cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
            warp_stride: ROW,
            lane_stride: 4,
            iter_stride: 0,
        }));
    }
    let out = AddrPattern::Affine(AffinePattern {
        base: region(dst),
        cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
        warp_stride: ROW,
        lane_stride: 4,
        iter_stride: 0,
    });
    let prog = b.wait().alu(alu).st(out).build();
    Kernel::new(name, (16, 8), 32 * WPC as u32, prog)
}

fn main() {
    // Row pass: image → intermediate. Column pass: intermediate → output.
    let row_pass = pass("conv-rows", 0, 1, 3, 24);
    let col_pass = pass("conv-cols", 1, 2, 3, 24);

    for (label, engine) in [("baseline", Engine::Baseline), ("CAPS", Engine::Caps)] {
        let cfg = engine.configure(&GpuConfig::fermi_gtx480());
        let factory = engine.factory();
        let mut gpu = Gpu::new(cfg, row_pass.clone(), &*factory);
        let stats = gpu.run_app(&[row_pass.clone(), col_pass.clone()], 50_000_000);
        println!(
            "{label:>8}: cycles={:>7}  IPC={:.3}  L1 miss={:>5.1}%  L2 hit={:>5.1}%  \
             prefetch acc={:>5.1}%  DRAM reads={}",
            stats.cycles,
            stats.ipc(),
            stats.l1d_miss_rate() * 100.0,
            100.0 * stats.l2_hits as f64 / stats.l2_accesses.max(1) as f64,
            stats.accuracy() * 100.0,
            stats.dram_reads,
        );
    }
    println!(
        "\nThe column pass re-reads the row pass's intermediate image from the\n\
         persistent L2 — the cross-kernel locality whole-application simulation captures."
    );
}
