//! Compare every prefetcher configuration of the paper's evaluation on
//! one benchmark (default MM; pass an abbreviation to pick another).
//!
//! ```text
//! cargo run --release --example prefetcher_shootout -- CNV
//! ```

use caps::prelude::*;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "MM".to_string());
    let workload = all_workloads()
        .into_iter()
        .find(|w| w.abbr().eq_ignore_ascii_case(&want))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {want:?}; expected one of:");
            for w in all_workloads() {
                eprintln!("  {}", w.abbr());
            }
            std::process::exit(2);
        });
    println!(
        "benchmark: {} ({})\n",
        workload.info().name,
        workload.abbr()
    );

    let mut engines = vec![Engine::Baseline];
    engines.extend(Engine::FIGURE10);
    let specs: Vec<RunSpec> = engines
        .iter()
        .map(|&e| RunSpec::paper(workload, e))
        .collect();
    let records = run_matrix(&specs);
    let base_ipc = records[0].ipc();

    let mut t = Table::new(&[
        "engine",
        "norm. IPC",
        "coverage",
        "accuracy",
        "early",
        "distance",
    ]);
    for r in &records[1..] {
        t.row(vec![
            r.engine.clone(),
            format!("{:.3}", r.ipc() / base_ipc),
            format!("{:.1}%", r.stats.coverage() * 100.0),
            format!("{:.1}%", r.stats.accuracy() * 100.0),
            format!("{:.1}%", r.stats.early_prefetch_ratio() * 100.0),
            format!("{:.0} cy", r.stats.mean_prefetch_distance()),
        ]);
    }
    println!("{}", t.render());
}
