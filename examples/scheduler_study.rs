//! Scheduler ablation: run the CAP prefetch engine on loose round-robin,
//! the unmodified two-level scheduler, and the prefetch-aware scheduler,
//! plus PAS without the eager wake-up — the Fig. 14 experiment as a
//! runnable study.
//!
//! ```text
//! cargo run --release --example scheduler_study
//! ```

use caps::prelude::*;

fn main() {
    let workloads = [Workload::Lps, Workload::Jc1, Workload::Cnv, Workload::Mm];
    let engines = [
        ("baseline (TLV, no prefetch)", Engine::Baseline),
        ("CAP on LRR", Engine::CapsOnLrr),
        ("CAP on TLV", Engine::CapsOnTlv),
        ("CAP + PAS w/o wakeup", Engine::CapsNoWakeup),
        ("CAP + PAS (CAPS)", Engine::Caps),
    ];

    for w in workloads {
        println!("== {} ==", w.abbr());
        let specs: Vec<RunSpec> = engines.iter().map(|&(_, e)| RunSpec::paper(w, e)).collect();
        let recs = run_matrix(&specs);
        let base = recs[0].ipc();
        let mut t = Table::new(&["configuration", "norm. IPC", "distance", "early", "wakeups"]);
        for ((label, _), r) in engines.iter().zip(&recs) {
            t.row(vec![
                label.to_string(),
                format!("{:.3}", r.ipc() / base),
                format!("{:.0} cy", r.stats.mean_prefetch_distance()),
                format!("{:.1}%", r.stats.early_prefetch_ratio() * 100.0),
                format!("{}", r.stats.prefetch_wakeups),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "The paper's Fig. 14b trend: prefetch distance grows LRR → TLV → PA-TLV,\n\
         and the wake-up keeps the early-eviction ratio low (Fig. 14a)."
    );
}
