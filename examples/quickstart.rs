//! Quickstart: run one benchmark under the baseline two-level scheduler
//! and under CAPS, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use caps::prelude::*;

fn main() {
    // Pick the paper's running example: laplace3D (Fig. 6a).
    let workload = Workload::Lps;
    println!("benchmark: {} ({})", workload.info().name, workload.abbr());

    let base = run_one(&RunSpec::paper(workload, Engine::Baseline));
    let caps = run_one(&RunSpec::paper(workload, Engine::Caps));

    println!("\n                     {:>12} {:>12}", "baseline", "CAPS");
    println!(
        "cycles               {:>12} {:>12}",
        base.stats.cycles, caps.stats.cycles
    );
    println!(
        "IPC                  {:>12.3} {:>12.3}",
        base.ipc(),
        caps.ipc()
    );
    println!(
        "L1D miss rate        {:>11.1}% {:>11.1}%",
        base.stats.l1d_miss_rate() * 100.0,
        caps.stats.l1d_miss_rate() * 100.0
    );
    println!(
        "prefetches issued    {:>12} {:>12}",
        base.stats.prefetch_issued, caps.stats.prefetch_issued
    );
    println!(
        "prefetch accuracy    {:>11.1}% {:>11.1}%",
        base.stats.accuracy() * 100.0,
        caps.stats.accuracy() * 100.0
    );
    println!(
        "prefetch distance    {:>9.0} cy {:>9.0} cy",
        base.stats.mean_prefetch_distance(),
        caps.stats.mean_prefetch_distance()
    );
    println!("\nspeedup: {:.3}×", caps.ipc() / base.ipc());
}
