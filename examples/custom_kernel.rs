//! Author a kernel in the IR, run it under CAPS, and inspect what the
//! CTA-aware prefetcher learned — the PerCTA/DIST mechanics of §V made
//! visible.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use caps::core::{CapConfig, CtaAwarePrefetcher};
use caps::prelude::*;
use caps::sim::prefetch::Prefetcher;

fn main() {
    // A 2-D kernel in the image of Fig. 6a: the base address mixes
    // blockIdx.x and blockIdx.y with different pitches, each warp strides
    // by one grid row, each lane by 4 bytes.
    let row = 64 * 32 * 4; // 64 CTAs across, 32 lanes, 4 B
    let pattern = AddrPattern::Affine(AffinePattern {
        base: 0x1000_0000,
        cta_term: CtaTerm::Surface2D {
            x_pitch: 32 * 4,
            y_pitch: row * 4,
        },
        warp_stride: row,
        lane_stride: 4,
        iter_stride: 0,
    });
    let out = AddrPattern::Affine(AffinePattern {
        base: 0x3000_0000,
        cta_term: CtaTerm::Surface2D {
            x_pitch: 32 * 4,
            y_pitch: row * 4,
        },
        warp_stride: row,
        lane_stride: 4,
        iter_stride: 0,
    });
    let program = ProgramBuilder::new()
        .ld(pattern)
        .wait()
        .alu(24)
        .st(out)
        .build();
    let kernel = Kernel::new("custom-2d", (64, 4), 128, program);
    println!(
        "kernel: {} CTAs × {} warps, {} static instructions",
        kernel.num_ctas(),
        kernel.warps_per_cta(32),
        kernel.program.len()
    );

    // Run it under CAP + PAS.
    let cfg = caps_config(&GpuConfig::fermi_gtx480());
    let mut gpu = Gpu::new(cfg, kernel, &*caps_factory());
    let stats = gpu.run_to_completion();
    println!("\ncycles: {}   IPC: {:.3}", stats.cycles, stats.ipc());
    println!(
        "prefetches: issued {}  useful {}  late {}  accuracy {:.1}%",
        stats.prefetch_issued,
        stats.prefetch_useful,
        stats.prefetch_late,
        stats.accuracy() * 100.0
    );

    // Drive a standalone CAP engine by hand to show the table mechanics
    // of Fig. 9: leading warps register bases, the first trailing warp
    // reveals the stride, prefetches fire for everyone else.
    println!("\n--- standalone CAP table walk (Fig. 9) ---");
    let mut cap = CtaAwarePrefetcher::with_config(CapConfig::default());
    let mut requests = Vec::new();
    let grid_x = 64;
    for (slot, linear) in [(0usize, 0u32), (1, 15), (2, 30)] {
        cap.on_cta_launch(slot, CtaCoord::from_linear(linear, grid_x));
    }
    let observe = |cap: &mut CtaAwarePrefetcher,
                   requests: &mut Vec<PrefetchRequest>,
                   slot: usize,
                   linear: u32,
                   warp: u32,
                   addr: Addr| {
        let lines = [addr];
        let obs = DemandObservation {
            cycle: 0,
            pc: 8,
            cta_slot: slot,
            cta: CtaCoord::from_linear(linear, grid_x),
            warp_in_cta: warp,
            warp_slot: slot * 4 + warp as usize,
            warps_per_cta: 4,
            lines: &lines,
            is_affine: true,
            iter: 0,
        };
        cap.on_demand(&obs, requests);
    };
    // Three leading warps register three CTA bases…
    observe(&mut cap, &mut requests, 0, 0, 0, 0x1000_0000);
    observe(&mut cap, &mut requests, 1, 15, 0, 0x1008_0000);
    observe(&mut cap, &mut requests, 2, 30, 0, 0x1010_0000);
    println!(
        "after leading warps: {} prefetches (no stride yet)",
        requests.len()
    );
    // …then one trailing warp reveals Δ and prefetches fire everywhere.
    observe(&mut cap, &mut requests, 0, 0, 1, 0x1000_0000 + row as u64);
    println!(
        "after first trailing warp: stride {:?} detected, {} prefetches:",
        cap.dist().stride(8),
        requests.len()
    );
    for r in &requests {
        println!("  line {:#x} for warp slot {:?}", r.line, r.target_warp);
    }
}
