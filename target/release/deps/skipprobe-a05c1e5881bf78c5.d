/root/repo/target/release/deps/skipprobe-a05c1e5881bf78c5.d: crates/bench/src/bin/skipprobe.rs

/root/repo/target/release/deps/skipprobe-a05c1e5881bf78c5: crates/bench/src/bin/skipprobe.rs

crates/bench/src/bin/skipprobe.rs:
