/root/repo/target/release/deps/fig10_ipc-4cef264490bb3074.d: crates/bench/src/bin/fig10_ipc.rs

/root/repo/target/release/deps/fig10_ipc-4cef264490bb3074: crates/bench/src/bin/fig10_ipc.rs

crates/bench/src/bin/fig10_ipc.rs:
