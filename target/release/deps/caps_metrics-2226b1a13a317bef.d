/root/repo/target/release/deps/caps_metrics-2226b1a13a317bef.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/release/deps/caps_metrics-2226b1a13a317bef: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/export.rs:
crates/metrics/src/harness.rs:
crates/metrics/src/report.rs:
crates/metrics/src/sweep.rs:
