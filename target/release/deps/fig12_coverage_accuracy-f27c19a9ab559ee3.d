/root/repo/target/release/deps/fig12_coverage_accuracy-f27c19a9ab559ee3.d: crates/bench/src/bin/fig12_coverage_accuracy.rs

/root/repo/target/release/deps/fig12_coverage_accuracy-f27c19a9ab559ee3: crates/bench/src/bin/fig12_coverage_accuracy.rs

crates/bench/src/bin/fig12_coverage_accuracy.rs:
