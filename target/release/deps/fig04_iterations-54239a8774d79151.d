/root/repo/target/release/deps/fig04_iterations-54239a8774d79151.d: crates/bench/src/bin/fig04_iterations.rs

/root/repo/target/release/deps/fig04_iterations-54239a8774d79151: crates/bench/src/bin/fig04_iterations.rs

crates/bench/src/bin/fig04_iterations.rs:
