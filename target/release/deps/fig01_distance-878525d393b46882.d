/root/repo/target/release/deps/fig01_distance-878525d393b46882.d: crates/bench/src/bin/fig01_distance.rs

/root/repo/target/release/deps/fig01_distance-878525d393b46882: crates/bench/src/bin/fig01_distance.rs

crates/bench/src/bin/fig01_distance.rs:
