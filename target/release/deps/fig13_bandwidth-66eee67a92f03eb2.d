/root/repo/target/release/deps/fig13_bandwidth-66eee67a92f03eb2.d: crates/bench/src/bin/fig13_bandwidth.rs

/root/repo/target/release/deps/fig13_bandwidth-66eee67a92f03eb2: crates/bench/src/bin/fig13_bandwidth.rs

crates/bench/src/bin/fig13_bandwidth.rs:
