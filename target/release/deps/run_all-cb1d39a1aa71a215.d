/root/repo/target/release/deps/run_all-cb1d39a1aa71a215.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-cb1d39a1aa71a215: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
