/root/repo/target/release/deps/run_all-27c8aa469589589b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-27c8aa469589589b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
