/root/repo/target/release/deps/caps_bench-91cbeb0d9b662420.d: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libcaps_bench-91cbeb0d9b662420.rlib: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libcaps_bench-91cbeb0d9b662420.rmeta: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig04.rs:
crates/bench/src/fig05.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/tables.rs:
