/root/repo/target/release/deps/fig01_distance-c64a4d4cabdead72.d: crates/bench/src/bin/fig01_distance.rs

/root/repo/target/release/deps/fig01_distance-c64a4d4cabdead72: crates/bench/src/bin/fig01_distance.rs

crates/bench/src/bin/fig01_distance.rs:
