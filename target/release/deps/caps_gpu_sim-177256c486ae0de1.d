/root/repo/target/release/deps/caps_gpu_sim-177256c486ae0de1.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalescer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cta.rs crates/gpu-sim/src/cta_scheduler.rs crates/gpu-sim/src/dram.rs crates/gpu-sim/src/gpu.rs crates/gpu-sim/src/interconnect.rs crates/gpu-sim/src/isa.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/mshr.rs crates/gpu-sim/src/partition.rs crates/gpu-sim/src/prefetch.rs crates/gpu-sim/src/sched/mod.rs crates/gpu-sim/src/sched/two_level.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/stats.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/types.rs crates/gpu-sim/src/warp.rs

/root/repo/target/release/deps/libcaps_gpu_sim-177256c486ae0de1.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalescer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cta.rs crates/gpu-sim/src/cta_scheduler.rs crates/gpu-sim/src/dram.rs crates/gpu-sim/src/gpu.rs crates/gpu-sim/src/interconnect.rs crates/gpu-sim/src/isa.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/mshr.rs crates/gpu-sim/src/partition.rs crates/gpu-sim/src/prefetch.rs crates/gpu-sim/src/sched/mod.rs crates/gpu-sim/src/sched/two_level.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/stats.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/types.rs crates/gpu-sim/src/warp.rs

/root/repo/target/release/deps/libcaps_gpu_sim-177256c486ae0de1.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/coalescer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cta.rs crates/gpu-sim/src/cta_scheduler.rs crates/gpu-sim/src/dram.rs crates/gpu-sim/src/gpu.rs crates/gpu-sim/src/interconnect.rs crates/gpu-sim/src/isa.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/mshr.rs crates/gpu-sim/src/partition.rs crates/gpu-sim/src/prefetch.rs crates/gpu-sim/src/sched/mod.rs crates/gpu-sim/src/sched/two_level.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/stats.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/types.rs crates/gpu-sim/src/warp.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/coalescer.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cta.rs:
crates/gpu-sim/src/cta_scheduler.rs:
crates/gpu-sim/src/dram.rs:
crates/gpu-sim/src/gpu.rs:
crates/gpu-sim/src/interconnect.rs:
crates/gpu-sim/src/isa.rs:
crates/gpu-sim/src/kernel.rs:
crates/gpu-sim/src/mshr.rs:
crates/gpu-sim/src/partition.rs:
crates/gpu-sim/src/prefetch.rs:
crates/gpu-sim/src/sched/mod.rs:
crates/gpu-sim/src/sched/two_level.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/stats.rs:
crates/gpu-sim/src/trace.rs:
crates/gpu-sim/src/types.rs:
crates/gpu-sim/src/warp.rs:
