/root/repo/target/release/deps/ext_sensitivity-54f9e9ec16e110e8.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/release/deps/ext_sensitivity-54f9e9ec16e110e8: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
