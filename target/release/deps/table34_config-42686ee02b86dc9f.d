/root/repo/target/release/deps/table34_config-42686ee02b86dc9f.d: crates/bench/src/bin/table34_config.rs

/root/repo/target/release/deps/table34_config-42686ee02b86dc9f: crates/bench/src/bin/table34_config.rs

crates/bench/src/bin/table34_config.rs:
