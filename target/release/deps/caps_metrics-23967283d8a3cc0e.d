/root/repo/target/release/deps/caps_metrics-23967283d8a3cc0e.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/release/deps/libcaps_metrics-23967283d8a3cc0e.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/release/deps/libcaps_metrics-23967283d8a3cc0e.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/export.rs:
crates/metrics/src/harness.rs:
crates/metrics/src/report.rs:
crates/metrics/src/sweep.rs:
