/root/repo/target/release/deps/fig14_timeliness-822561b762080816.d: crates/bench/src/bin/fig14_timeliness.rs

/root/repo/target/release/deps/fig14_timeliness-822561b762080816: crates/bench/src/bin/fig14_timeliness.rs

crates/bench/src/bin/fig14_timeliness.rs:
