/root/repo/target/release/deps/fig11_cta_sweep-29bc8d6a50acc254.d: crates/bench/src/bin/fig11_cta_sweep.rs

/root/repo/target/release/deps/fig11_cta_sweep-29bc8d6a50acc254: crates/bench/src/bin/fig11_cta_sweep.rs

crates/bench/src/bin/fig11_cta_sweep.rs:
