/root/repo/target/release/deps/ext_kepler-49415fe19749dc0d.d: crates/bench/src/bin/ext_kepler.rs

/root/repo/target/release/deps/ext_kepler-49415fe19749dc0d: crates/bench/src/bin/ext_kepler.rs

crates/bench/src/bin/ext_kepler.rs:
