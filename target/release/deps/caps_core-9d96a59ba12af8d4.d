/root/repo/target/release/deps/caps_core-9d96a59ba12af8d4.d: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

/root/repo/target/release/deps/libcaps_core-9d96a59ba12af8d4.rlib: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

/root/repo/target/release/deps/libcaps_core-9d96a59ba12af8d4.rmeta: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

crates/core/src/lib.rs:
crates/core/src/cap.rs:
crates/core/src/dist.rs:
crates/core/src/hardware.rs:
crates/core/src/pas.rs:
crates/core/src/per_cta.rs:
