/root/repo/target/release/deps/table34_config-5c78f2691b743cc8.d: crates/bench/src/bin/table34_config.rs

/root/repo/target/release/deps/table34_config-5c78f2691b743cc8: crates/bench/src/bin/table34_config.rs

crates/bench/src/bin/table34_config.rs:
