/root/repo/target/release/deps/fastforward-e902386e0826bd3f.d: crates/metrics/tests/fastforward.rs

/root/repo/target/release/deps/fastforward-e902386e0826bd3f: crates/metrics/tests/fastforward.rs

crates/metrics/tests/fastforward.rs:
