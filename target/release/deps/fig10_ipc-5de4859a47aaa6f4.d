/root/repo/target/release/deps/fig10_ipc-5de4859a47aaa6f4.d: crates/bench/src/bin/fig10_ipc.rs

/root/repo/target/release/deps/fig10_ipc-5de4859a47aaa6f4: crates/bench/src/bin/fig10_ipc.rs

crates/bench/src/bin/fig10_ipc.rs:
