/root/repo/target/release/deps/fig05_cta_strides-d2fca23994be875b.d: crates/bench/src/bin/fig05_cta_strides.rs

/root/repo/target/release/deps/fig05_cta_strides-d2fca23994be875b: crates/bench/src/bin/fig05_cta_strides.rs

crates/bench/src/bin/fig05_cta_strides.rs:
