/root/repo/target/release/deps/fig03_distribution-a57882dbfea58e9e.d: crates/bench/src/bin/fig03_distribution.rs

/root/repo/target/release/deps/fig03_distribution-a57882dbfea58e9e: crates/bench/src/bin/fig03_distribution.rs

crates/bench/src/bin/fig03_distribution.rs:
