/root/repo/target/release/deps/caps_json-5b05ad269a95472f.d: crates/json/src/lib.rs

/root/repo/target/release/deps/libcaps_json-5b05ad269a95472f.rlib: crates/json/src/lib.rs

/root/repo/target/release/deps/libcaps_json-5b05ad269a95472f.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
