/root/repo/target/release/deps/fig13_bandwidth-e2ed46fe58d254e8.d: crates/bench/src/bin/fig13_bandwidth.rs

/root/repo/target/release/deps/fig13_bandwidth-e2ed46fe58d254e8: crates/bench/src/bin/fig13_bandwidth.rs

crates/bench/src/bin/fig13_bandwidth.rs:
