/root/repo/target/release/deps/fig14_timeliness-6c0b0a6270d76ab2.d: crates/bench/src/bin/fig14_timeliness.rs

/root/repo/target/release/deps/fig14_timeliness-6c0b0a6270d76ab2: crates/bench/src/bin/fig14_timeliness.rs

crates/bench/src/bin/fig14_timeliness.rs:
