/root/repo/target/release/deps/caps_prefetchers-8d0bdcb61a6f413c.d: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

/root/repo/target/release/deps/libcaps_prefetchers-8d0bdcb61a6f413c.rlib: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

/root/repo/target/release/deps/libcaps_prefetchers-8d0bdcb61a6f413c.rmeta: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

crates/prefetchers/src/lib.rs:
crates/prefetchers/src/inter.rs:
crates/prefetchers/src/intra.rs:
crates/prefetchers/src/lap.rs:
crates/prefetchers/src/mta.rs:
crates/prefetchers/src/nlp.rs:
