/root/repo/target/release/deps/fig05_cta_strides-4a6aec9b0dc08b95.d: crates/bench/src/bin/fig05_cta_strides.rs

/root/repo/target/release/deps/fig05_cta_strides-4a6aec9b0dc08b95: crates/bench/src/bin/fig05_cta_strides.rs

crates/bench/src/bin/fig05_cta_strides.rs:
