/root/repo/target/release/deps/ext_kepler-2751061020b2bc34.d: crates/bench/src/bin/ext_kepler.rs

/root/repo/target/release/deps/ext_kepler-2751061020b2bc34: crates/bench/src/bin/ext_kepler.rs

crates/bench/src/bin/ext_kepler.rs:
