/root/repo/target/release/deps/caps-9006f9157efb22ed.d: src/lib.rs

/root/repo/target/release/deps/libcaps-9006f9157efb22ed.rlib: src/lib.rs

/root/repo/target/release/deps/libcaps-9006f9157efb22ed.rmeta: src/lib.rs

src/lib.rs:
