/root/repo/target/release/deps/fig03_distribution-b179d15558124ec5.d: crates/bench/src/bin/fig03_distribution.rs

/root/repo/target/release/deps/fig03_distribution-b179d15558124ec5: crates/bench/src/bin/fig03_distribution.rs

crates/bench/src/bin/fig03_distribution.rs:
