/root/repo/target/release/deps/fig11_cta_sweep-53174d8b6580182e.d: crates/bench/src/bin/fig11_cta_sweep.rs

/root/repo/target/release/deps/fig11_cta_sweep-53174d8b6580182e: crates/bench/src/bin/fig11_cta_sweep.rs

crates/bench/src/bin/fig11_cta_sweep.rs:
