/root/repo/target/release/deps/fig15_energy-6736aabc3d0aa361.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/release/deps/fig15_energy-6736aabc3d0aa361: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
