/root/repo/target/release/deps/fig04_iterations-85793ec06fcb0cc6.d: crates/bench/src/bin/fig04_iterations.rs

/root/repo/target/release/deps/fig04_iterations-85793ec06fcb0cc6: crates/bench/src/bin/fig04_iterations.rs

crates/bench/src/bin/fig04_iterations.rs:
