/root/repo/target/release/deps/ext_sensitivity-e2dde35186770e31.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/release/deps/ext_sensitivity-e2dde35186770e31: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
