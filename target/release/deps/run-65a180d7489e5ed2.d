/root/repo/target/release/deps/run-65a180d7489e5ed2.d: crates/bench/src/bin/run.rs

/root/repo/target/release/deps/run-65a180d7489e5ed2: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
