/root/repo/target/release/deps/fig15_energy-34e1ef6726e23741.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/release/deps/fig15_energy-34e1ef6726e23741: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
