/root/repo/target/release/deps/fig12_coverage_accuracy-544dd380ce5a349f.d: crates/bench/src/bin/fig12_coverage_accuracy.rs

/root/repo/target/release/deps/fig12_coverage_accuracy-544dd380ce5a349f: crates/bench/src/bin/fig12_coverage_accuracy.rs

crates/bench/src/bin/fig12_coverage_accuracy.rs:
