/root/repo/target/release/deps/run-af87c3349ffdd155.d: crates/bench/src/bin/run.rs

/root/repo/target/release/deps/run-af87c3349ffdd155: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
