/root/repo/target/release/deps/table12_hardware-74f9a3613d6bc947.d: crates/bench/src/bin/table12_hardware.rs

/root/repo/target/release/deps/table12_hardware-74f9a3613d6bc947: crates/bench/src/bin/table12_hardware.rs

crates/bench/src/bin/table12_hardware.rs:
