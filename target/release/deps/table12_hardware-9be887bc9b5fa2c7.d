/root/repo/target/release/deps/table12_hardware-9be887bc9b5fa2c7.d: crates/bench/src/bin/table12_hardware.rs

/root/repo/target/release/deps/table12_hardware-9be887bc9b5fa2c7: crates/bench/src/bin/table12_hardware.rs

crates/bench/src/bin/table12_hardware.rs:
