/root/repo/target/release/examples/characterize-867c5101baf180c9.d: crates/metrics/examples/characterize.rs

/root/repo/target/release/examples/characterize-867c5101baf180c9: crates/metrics/examples/characterize.rs

crates/metrics/examples/characterize.rs:
