/root/repo/target/debug/examples/multi_kernel_app-99e1e2e50cff85f0.d: examples/multi_kernel_app.rs

/root/repo/target/debug/examples/multi_kernel_app-99e1e2e50cff85f0: examples/multi_kernel_app.rs

examples/multi_kernel_app.rs:
