/root/repo/target/debug/examples/scheduler_study-8987715dddc55bd8.d: examples/scheduler_study.rs

/root/repo/target/debug/examples/scheduler_study-8987715dddc55bd8: examples/scheduler_study.rs

examples/scheduler_study.rs:
