/root/repo/target/debug/examples/prefetcher_shootout-3473c17f1fbef38c.d: examples/prefetcher_shootout.rs

/root/repo/target/debug/examples/prefetcher_shootout-3473c17f1fbef38c: examples/prefetcher_shootout.rs

examples/prefetcher_shootout.rs:
