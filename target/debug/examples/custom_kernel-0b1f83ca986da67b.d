/root/repo/target/debug/examples/custom_kernel-0b1f83ca986da67b.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-0b1f83ca986da67b: examples/custom_kernel.rs

examples/custom_kernel.rs:
