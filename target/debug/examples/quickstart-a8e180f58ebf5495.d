/root/repo/target/debug/examples/quickstart-a8e180f58ebf5495.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a8e180f58ebf5495: examples/quickstart.rs

examples/quickstart.rs:
