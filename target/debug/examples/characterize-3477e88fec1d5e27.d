/root/repo/target/debug/examples/characterize-3477e88fec1d5e27.d: crates/metrics/examples/characterize.rs

/root/repo/target/debug/examples/characterize-3477e88fec1d5e27: crates/metrics/examples/characterize.rs

crates/metrics/examples/characterize.rs:
