/root/repo/target/debug/deps/fig15_energy-9a51710246084eff.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/debug/deps/fig15_energy-9a51710246084eff: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
