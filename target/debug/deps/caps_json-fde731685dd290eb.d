/root/repo/target/debug/deps/caps_json-fde731685dd290eb.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/caps_json-fde731685dd290eb: crates/json/src/lib.rs

crates/json/src/lib.rs:
