/root/repo/target/debug/deps/fig01_distance-57561b8fb0bdfe75.d: crates/bench/src/bin/fig01_distance.rs

/root/repo/target/debug/deps/fig01_distance-57561b8fb0bdfe75: crates/bench/src/bin/fig01_distance.rs

crates/bench/src/bin/fig01_distance.rs:
