/root/repo/target/debug/deps/proptests-37d13ed02c321bc3.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-37d13ed02c321bc3: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
