/root/repo/target/debug/deps/caps_metrics-618afe77545b7d6c.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/debug/deps/libcaps_metrics-618afe77545b7d6c.rlib: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/debug/deps/libcaps_metrics-618afe77545b7d6c.rmeta: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/export.rs:
crates/metrics/src/harness.rs:
crates/metrics/src/report.rs:
crates/metrics/src/sweep.rs:
