/root/repo/target/debug/deps/run-69e3d114a1401da2.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-69e3d114a1401da2: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
