/root/repo/target/debug/deps/caps_prefetchers-372bd480434fcf02.d: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

/root/repo/target/debug/deps/caps_prefetchers-372bd480434fcf02: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

crates/prefetchers/src/lib.rs:
crates/prefetchers/src/inter.rs:
crates/prefetchers/src/intra.rs:
crates/prefetchers/src/lap.rs:
crates/prefetchers/src/mta.rs:
crates/prefetchers/src/nlp.rs:
