/root/repo/target/debug/deps/fastforward-8c15d5845dbd0134.d: crates/metrics/tests/fastforward.rs

/root/repo/target/debug/deps/fastforward-8c15d5845dbd0134: crates/metrics/tests/fastforward.rs

crates/metrics/tests/fastforward.rs:
