/root/repo/target/debug/deps/run_all-0d07853a0658c023.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-0d07853a0658c023: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
