/root/repo/target/debug/deps/fig04_iterations-ac25824515ea37f6.d: crates/bench/src/bin/fig04_iterations.rs

/root/repo/target/debug/deps/fig04_iterations-ac25824515ea37f6: crates/bench/src/bin/fig04_iterations.rs

crates/bench/src/bin/fig04_iterations.rs:
