/root/repo/target/debug/deps/proptest-ad0ca9994e997d98.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ad0ca9994e997d98.rlib: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ad0ca9994e997d98.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
