/root/repo/target/debug/deps/ext_kepler-2149b78381c5a772.d: crates/bench/src/bin/ext_kepler.rs

/root/repo/target/debug/deps/ext_kepler-2149b78381c5a772: crates/bench/src/bin/ext_kepler.rs

crates/bench/src/bin/ext_kepler.rs:
