/root/repo/target/debug/deps/run_all-abee23c10eda99e6.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-abee23c10eda99e6: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
