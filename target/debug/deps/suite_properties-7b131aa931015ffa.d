/root/repo/target/debug/deps/suite_properties-7b131aa931015ffa.d: crates/workloads/tests/suite_properties.rs

/root/repo/target/debug/deps/suite_properties-7b131aa931015ffa: crates/workloads/tests/suite_properties.rs

crates/workloads/tests/suite_properties.rs:
