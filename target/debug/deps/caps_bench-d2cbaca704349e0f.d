/root/repo/target/debug/deps/caps_bench-d2cbaca704349e0f.d: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcaps_bench-d2cbaca704349e0f.rlib: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcaps_bench-d2cbaca704349e0f.rmeta: crates/bench/src/lib.rs crates/bench/src/fig01.rs crates/bench/src/fig04.rs crates/bench/src/fig05.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig14.rs crates/bench/src/fig15.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig04.rs:
crates/bench/src/fig05.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig14.rs:
crates/bench/src/fig15.rs:
crates/bench/src/tables.rs:
