/root/repo/target/debug/deps/fig15_energy-b3bb2758f9f089a5.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/debug/deps/fig15_energy-b3bb2758f9f089a5: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
