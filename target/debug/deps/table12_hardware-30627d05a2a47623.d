/root/repo/target/debug/deps/table12_hardware-30627d05a2a47623.d: crates/bench/src/bin/table12_hardware.rs

/root/repo/target/debug/deps/table12_hardware-30627d05a2a47623: crates/bench/src/bin/table12_hardware.rs

crates/bench/src/bin/table12_hardware.rs:
