/root/repo/target/debug/deps/run-e7040075d1205918.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-e7040075d1205918: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
