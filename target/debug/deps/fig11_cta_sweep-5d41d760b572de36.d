/root/repo/target/debug/deps/fig11_cta_sweep-5d41d760b572de36.d: crates/bench/src/bin/fig11_cta_sweep.rs

/root/repo/target/debug/deps/fig11_cta_sweep-5d41d760b572de36: crates/bench/src/bin/fig11_cta_sweep.rs

crates/bench/src/bin/fig11_cta_sweep.rs:
