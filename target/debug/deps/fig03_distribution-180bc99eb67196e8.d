/root/repo/target/debug/deps/fig03_distribution-180bc99eb67196e8.d: crates/bench/src/bin/fig03_distribution.rs

/root/repo/target/debug/deps/fig03_distribution-180bc99eb67196e8: crates/bench/src/bin/fig03_distribution.rs

crates/bench/src/bin/fig03_distribution.rs:
