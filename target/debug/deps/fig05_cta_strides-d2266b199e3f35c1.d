/root/repo/target/debug/deps/fig05_cta_strides-d2266b199e3f35c1.d: crates/bench/src/bin/fig05_cta_strides.rs

/root/repo/target/debug/deps/fig05_cta_strides-d2266b199e3f35c1: crates/bench/src/bin/fig05_cta_strides.rs

crates/bench/src/bin/fig05_cta_strides.rs:
