/root/repo/target/debug/deps/table34_config-4bbf1e2ec6beaeae.d: crates/bench/src/bin/table34_config.rs

/root/repo/target/debug/deps/table34_config-4bbf1e2ec6beaeae: crates/bench/src/bin/table34_config.rs

crates/bench/src/bin/table34_config.rs:
