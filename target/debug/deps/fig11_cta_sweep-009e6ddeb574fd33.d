/root/repo/target/debug/deps/fig11_cta_sweep-009e6ddeb574fd33.d: crates/bench/src/bin/fig11_cta_sweep.rs

/root/repo/target/debug/deps/fig11_cta_sweep-009e6ddeb574fd33: crates/bench/src/bin/fig11_cta_sweep.rs

crates/bench/src/bin/fig11_cta_sweep.rs:
