/root/repo/target/debug/deps/memory_properties-f44d54763d298951.d: crates/gpu-sim/tests/memory_properties.rs

/root/repo/target/debug/deps/memory_properties-f44d54763d298951: crates/gpu-sim/tests/memory_properties.rs

crates/gpu-sim/tests/memory_properties.rs:
