/root/repo/target/debug/deps/fig13_bandwidth-7963072124076544.d: crates/bench/src/bin/fig13_bandwidth.rs

/root/repo/target/debug/deps/fig13_bandwidth-7963072124076544: crates/bench/src/bin/fig13_bandwidth.rs

crates/bench/src/bin/fig13_bandwidth.rs:
