/root/repo/target/debug/deps/end_to_end-c250691f0660e985.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c250691f0660e985: tests/end_to_end.rs

tests/end_to_end.rs:
