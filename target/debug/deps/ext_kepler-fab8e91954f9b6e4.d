/root/repo/target/debug/deps/ext_kepler-fab8e91954f9b6e4.d: crates/bench/src/bin/ext_kepler.rs

/root/repo/target/debug/deps/ext_kepler-fab8e91954f9b6e4: crates/bench/src/bin/ext_kepler.rs

crates/bench/src/bin/ext_kepler.rs:
