/root/repo/target/debug/deps/proptest_invariants-db7b9c64c42e7da2.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-db7b9c64c42e7da2: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
