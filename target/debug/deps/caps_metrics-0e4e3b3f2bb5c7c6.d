/root/repo/target/debug/deps/caps_metrics-0e4e3b3f2bb5c7c6.d: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

/root/repo/target/debug/deps/caps_metrics-0e4e3b3f2bb5c7c6: crates/metrics/src/lib.rs crates/metrics/src/energy.rs crates/metrics/src/engine.rs crates/metrics/src/export.rs crates/metrics/src/harness.rs crates/metrics/src/report.rs crates/metrics/src/sweep.rs

crates/metrics/src/lib.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/engine.rs:
crates/metrics/src/export.rs:
crates/metrics/src/harness.rs:
crates/metrics/src/report.rs:
crates/metrics/src/sweep.rs:
