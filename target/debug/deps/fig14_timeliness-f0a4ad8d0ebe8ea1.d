/root/repo/target/debug/deps/fig14_timeliness-f0a4ad8d0ebe8ea1.d: crates/bench/src/bin/fig14_timeliness.rs

/root/repo/target/debug/deps/fig14_timeliness-f0a4ad8d0ebe8ea1: crates/bench/src/bin/fig14_timeliness.rs

crates/bench/src/bin/fig14_timeliness.rs:
