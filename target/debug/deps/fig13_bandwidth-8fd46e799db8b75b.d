/root/repo/target/debug/deps/fig13_bandwidth-8fd46e799db8b75b.d: crates/bench/src/bin/fig13_bandwidth.rs

/root/repo/target/debug/deps/fig13_bandwidth-8fd46e799db8b75b: crates/bench/src/bin/fig13_bandwidth.rs

crates/bench/src/bin/fig13_bandwidth.rs:
