/root/repo/target/debug/deps/ext_sensitivity-e644525d799027ad.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/debug/deps/ext_sensitivity-e644525d799027ad: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
