/root/repo/target/debug/deps/fig10_ipc-a3fc3387191cb9f5.d: crates/bench/src/bin/fig10_ipc.rs

/root/repo/target/debug/deps/fig10_ipc-a3fc3387191cb9f5: crates/bench/src/bin/fig10_ipc.rs

crates/bench/src/bin/fig10_ipc.rs:
