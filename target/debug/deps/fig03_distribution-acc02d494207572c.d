/root/repo/target/debug/deps/fig03_distribution-acc02d494207572c.d: crates/bench/src/bin/fig03_distribution.rs

/root/repo/target/debug/deps/fig03_distribution-acc02d494207572c: crates/bench/src/bin/fig03_distribution.rs

crates/bench/src/bin/fig03_distribution.rs:
