/root/repo/target/debug/deps/caps-266a79619edf2781.d: src/lib.rs

/root/repo/target/debug/deps/libcaps-266a79619edf2781.rlib: src/lib.rs

/root/repo/target/debug/deps/libcaps-266a79619edf2781.rmeta: src/lib.rs

src/lib.rs:
