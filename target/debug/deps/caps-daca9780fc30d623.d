/root/repo/target/debug/deps/caps-daca9780fc30d623.d: src/lib.rs

/root/repo/target/debug/deps/caps-daca9780fc30d623: src/lib.rs

src/lib.rs:
