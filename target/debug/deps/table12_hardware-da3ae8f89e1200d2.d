/root/repo/target/debug/deps/table12_hardware-da3ae8f89e1200d2.d: crates/bench/src/bin/table12_hardware.rs

/root/repo/target/debug/deps/table12_hardware-da3ae8f89e1200d2: crates/bench/src/bin/table12_hardware.rs

crates/bench/src/bin/table12_hardware.rs:
