/root/repo/target/debug/deps/caps_prefetchers-e24f307a5a7be4a2.d: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

/root/repo/target/debug/deps/libcaps_prefetchers-e24f307a5a7be4a2.rlib: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

/root/repo/target/debug/deps/libcaps_prefetchers-e24f307a5a7be4a2.rmeta: crates/prefetchers/src/lib.rs crates/prefetchers/src/inter.rs crates/prefetchers/src/intra.rs crates/prefetchers/src/lap.rs crates/prefetchers/src/mta.rs crates/prefetchers/src/nlp.rs

crates/prefetchers/src/lib.rs:
crates/prefetchers/src/inter.rs:
crates/prefetchers/src/intra.rs:
crates/prefetchers/src/lap.rs:
crates/prefetchers/src/mta.rs:
crates/prefetchers/src/nlp.rs:
