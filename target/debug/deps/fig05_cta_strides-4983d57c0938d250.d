/root/repo/target/debug/deps/fig05_cta_strides-4983d57c0938d250.d: crates/bench/src/bin/fig05_cta_strides.rs

/root/repo/target/debug/deps/fig05_cta_strides-4983d57c0938d250: crates/bench/src/bin/fig05_cta_strides.rs

crates/bench/src/bin/fig05_cta_strides.rs:
