/root/repo/target/debug/deps/fig10_ipc-d9db9339c52e505c.d: crates/bench/src/bin/fig10_ipc.rs

/root/repo/target/debug/deps/fig10_ipc-d9db9339c52e505c: crates/bench/src/bin/fig10_ipc.rs

crates/bench/src/bin/fig10_ipc.rs:
