/root/repo/target/debug/deps/ext_sensitivity-8484353ea32564de.d: crates/bench/src/bin/ext_sensitivity.rs

/root/repo/target/debug/deps/ext_sensitivity-8484353ea32564de: crates/bench/src/bin/ext_sensitivity.rs

crates/bench/src/bin/ext_sensitivity.rs:
