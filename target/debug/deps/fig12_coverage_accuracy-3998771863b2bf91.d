/root/repo/target/debug/deps/fig12_coverage_accuracy-3998771863b2bf91.d: crates/bench/src/bin/fig12_coverage_accuracy.rs

/root/repo/target/debug/deps/fig12_coverage_accuracy-3998771863b2bf91: crates/bench/src/bin/fig12_coverage_accuracy.rs

crates/bench/src/bin/fig12_coverage_accuracy.rs:
