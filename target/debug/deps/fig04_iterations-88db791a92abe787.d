/root/repo/target/debug/deps/fig04_iterations-88db791a92abe787.d: crates/bench/src/bin/fig04_iterations.rs

/root/repo/target/debug/deps/fig04_iterations-88db791a92abe787: crates/bench/src/bin/fig04_iterations.rs

crates/bench/src/bin/fig04_iterations.rs:
