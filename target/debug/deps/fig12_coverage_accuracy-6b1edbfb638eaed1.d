/root/repo/target/debug/deps/fig12_coverage_accuracy-6b1edbfb638eaed1.d: crates/bench/src/bin/fig12_coverage_accuracy.rs

/root/repo/target/debug/deps/fig12_coverage_accuracy-6b1edbfb638eaed1: crates/bench/src/bin/fig12_coverage_accuracy.rs

crates/bench/src/bin/fig12_coverage_accuracy.rs:
