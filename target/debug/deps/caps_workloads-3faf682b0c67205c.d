/root/repo/target/debug/deps/caps_workloads-3faf682b0c67205c.d: crates/workloads/src/lib.rs crates/workloads/src/dsl.rs crates/workloads/src/suite.rs crates/workloads/src/bfs.rs crates/workloads/src/bpr.rs crates/workloads/src/ccl.rs crates/workloads/src/cnv.rs crates/workloads/src/cp.rs crates/workloads/src/fft.rs crates/workloads/src/hsp.rs crates/workloads/src/hst.rs crates/workloads/src/jc1.rs crates/workloads/src/km.rs crates/workloads/src/lps.rs crates/workloads/src/mm.rs crates/workloads/src/mrq.rs crates/workloads/src/pvr.rs crates/workloads/src/scn.rs crates/workloads/src/ste.rs

/root/repo/target/debug/deps/libcaps_workloads-3faf682b0c67205c.rlib: crates/workloads/src/lib.rs crates/workloads/src/dsl.rs crates/workloads/src/suite.rs crates/workloads/src/bfs.rs crates/workloads/src/bpr.rs crates/workloads/src/ccl.rs crates/workloads/src/cnv.rs crates/workloads/src/cp.rs crates/workloads/src/fft.rs crates/workloads/src/hsp.rs crates/workloads/src/hst.rs crates/workloads/src/jc1.rs crates/workloads/src/km.rs crates/workloads/src/lps.rs crates/workloads/src/mm.rs crates/workloads/src/mrq.rs crates/workloads/src/pvr.rs crates/workloads/src/scn.rs crates/workloads/src/ste.rs

/root/repo/target/debug/deps/libcaps_workloads-3faf682b0c67205c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dsl.rs crates/workloads/src/suite.rs crates/workloads/src/bfs.rs crates/workloads/src/bpr.rs crates/workloads/src/ccl.rs crates/workloads/src/cnv.rs crates/workloads/src/cp.rs crates/workloads/src/fft.rs crates/workloads/src/hsp.rs crates/workloads/src/hst.rs crates/workloads/src/jc1.rs crates/workloads/src/km.rs crates/workloads/src/lps.rs crates/workloads/src/mm.rs crates/workloads/src/mrq.rs crates/workloads/src/pvr.rs crates/workloads/src/scn.rs crates/workloads/src/ste.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dsl.rs:
crates/workloads/src/suite.rs:
crates/workloads/src/bfs.rs:
crates/workloads/src/bpr.rs:
crates/workloads/src/ccl.rs:
crates/workloads/src/cnv.rs:
crates/workloads/src/cp.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/hsp.rs:
crates/workloads/src/hst.rs:
crates/workloads/src/jc1.rs:
crates/workloads/src/km.rs:
crates/workloads/src/lps.rs:
crates/workloads/src/mm.rs:
crates/workloads/src/mrq.rs:
crates/workloads/src/pvr.rs:
crates/workloads/src/scn.rs:
crates/workloads/src/ste.rs:
