/root/repo/target/debug/deps/proptest-61c53f6fddfee76f.d: compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-61c53f6fddfee76f: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
