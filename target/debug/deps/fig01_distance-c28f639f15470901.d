/root/repo/target/debug/deps/fig01_distance-c28f639f15470901.d: crates/bench/src/bin/fig01_distance.rs

/root/repo/target/debug/deps/fig01_distance-c28f639f15470901: crates/bench/src/bin/fig01_distance.rs

crates/bench/src/bin/fig01_distance.rs:
