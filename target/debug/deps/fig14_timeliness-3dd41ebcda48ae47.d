/root/repo/target/debug/deps/fig14_timeliness-3dd41ebcda48ae47.d: crates/bench/src/bin/fig14_timeliness.rs

/root/repo/target/debug/deps/fig14_timeliness-3dd41ebcda48ae47: crates/bench/src/bin/fig14_timeliness.rs

crates/bench/src/bin/fig14_timeliness.rs:
