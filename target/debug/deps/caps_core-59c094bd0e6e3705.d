/root/repo/target/debug/deps/caps_core-59c094bd0e6e3705.d: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

/root/repo/target/debug/deps/libcaps_core-59c094bd0e6e3705.rlib: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

/root/repo/target/debug/deps/libcaps_core-59c094bd0e6e3705.rmeta: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

crates/core/src/lib.rs:
crates/core/src/cap.rs:
crates/core/src/dist.rs:
crates/core/src/hardware.rs:
crates/core/src/pas.rs:
crates/core/src/per_cta.rs:
