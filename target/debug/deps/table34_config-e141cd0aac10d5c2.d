/root/repo/target/debug/deps/table34_config-e141cd0aac10d5c2.d: crates/bench/src/bin/table34_config.rs

/root/repo/target/debug/deps/table34_config-e141cd0aac10d5c2: crates/bench/src/bin/table34_config.rs

crates/bench/src/bin/table34_config.rs:
