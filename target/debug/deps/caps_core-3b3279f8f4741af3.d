/root/repo/target/debug/deps/caps_core-3b3279f8f4741af3.d: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

/root/repo/target/debug/deps/caps_core-3b3279f8f4741af3: crates/core/src/lib.rs crates/core/src/cap.rs crates/core/src/dist.rs crates/core/src/hardware.rs crates/core/src/pas.rs crates/core/src/per_cta.rs

crates/core/src/lib.rs:
crates/core/src/cap.rs:
crates/core/src/dist.rs:
crates/core/src/hardware.rs:
crates/core/src/pas.rs:
crates/core/src/per_cta.rs:
