/root/repo/target/debug/deps/proptests-d9f01ecf07a5ed13.d: crates/prefetchers/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d9f01ecf07a5ed13: crates/prefetchers/tests/proptests.rs

crates/prefetchers/tests/proptests.rs:
