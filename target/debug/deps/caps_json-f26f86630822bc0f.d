/root/repo/target/debug/deps/caps_json-f26f86630822bc0f.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libcaps_json-f26f86630822bc0f.rlib: crates/json/src/lib.rs

/root/repo/target/debug/deps/libcaps_json-f26f86630822bc0f.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
