//! Kernel intermediate representation.
//!
//! The paper's analysis (§IV, Fig. 6) shows that GPU load addresses are a
//! mix of three ingredients:
//!
//! * **CTA-specific terms** `θ = C1 + C2·C3`, functions of `blockIdx.{x,y}`
//!   that are constant within a CTA but *irregular across the CTAs resident
//!   on one SM* (because SMs receive non-consecutive CTAs, Fig. 3/5);
//! * a **warp stride** `Δ` between consecutive warps of a CTA, identical in
//!   every CTA of the kernel;
//! * a **per-thread pitch** (`threadIdx * C3`), and optionally a
//!   loop-iteration stride for loads inside loops.
//!
//! [`AddrPattern::Affine`] captures exactly that decomposition, and
//! [`AddrPattern::Indirect`] models data-dependent accesses
//! (`g_graph_edges[i]`-style) that no stride prefetcher can predict; the
//! paper excludes those via backward register tracing, which we mirror with
//! the pattern's explicit origin.

use crate::types::{Addr, CtaCoord, Pc};

/// How the CTA-specific base address `θ` depends on the CTA coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtaTerm {
    /// `θ = linear_cta_id · pitch` — 1-D grids (e.g. BFS's
    /// `blockIdx.x * MAX_THREADS_PER_BLOCK`).
    Linear {
        /// Bytes between the bases of CTA *i* and CTA *i+1*.
        pitch: i64,
    },
    /// `θ = blockIdx.x · x_pitch + blockIdx.y · y_pitch` — 2-D grids
    /// (e.g. LPS's `blockIdx.x*BLOCK_X + blockIdx.y*BLOCK_Y*pitch`).
    /// With `y_pitch ≠ grid_x · x_pitch` the bases of consecutively
    /// *launched* CTAs are not equally spaced, which is what defeats
    /// naive inter-warp stride prediction at CTA boundaries.
    Surface2D {
        /// Contribution of `blockIdx.x` in bytes.
        x_pitch: i64,
        /// Contribution of `blockIdx.y` in bytes.
        y_pitch: i64,
    },
}

impl CtaTerm {
    /// Evaluate `θ` for a concrete CTA.
    #[inline]
    pub fn theta(&self, cta: CtaCoord) -> i64 {
        match *self {
            CtaTerm::Linear { pitch } => cta.linear as i64 * pitch,
            CtaTerm::Surface2D { x_pitch, y_pitch } => {
                cta.x as i64 * x_pitch + cta.y as i64 * y_pitch
            }
        }
    }
}

/// A fully affine load/store address generator:
/// `addr = base + θ(cta) + warp_in_cta·Δ + lane·lane_stride + iter·iter_stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinePattern {
    /// Array base address (`C1`-like constant).
    pub base: Addr,
    /// CTA-dependent term.
    pub cta_term: CtaTerm,
    /// `Δ`: bytes between the addresses of consecutive warps within a CTA.
    pub warp_stride: i64,
    /// Bytes between consecutive lanes of a warp (4 for `float`).
    pub lane_stride: i64,
    /// Bytes advanced per loop iteration for loads inside loops.
    pub iter_stride: i64,
}

impl AffinePattern {
    /// A dense `float` array access: 4 B lanes, warp stride = 128 B
    /// (perfectly coalesced row-major).
    pub fn dense(base: Addr, cta_term: CtaTerm) -> Self {
        AffinePattern {
            base,
            cta_term,
            warp_stride: 128,
            lane_stride: 4,
            iter_stride: 0,
        }
    }

    /// Evaluate the address of one lane.
    #[inline]
    pub fn addr(&self, cta: CtaCoord, warp_in_cta: u32, lane: u32, iter: u32) -> Addr {
        let v = self.base as i64
            + self.cta_term.theta(cta)
            + warp_in_cta as i64 * self.warp_stride
            + lane as i64 * self.lane_stride
            + iter as i64 * self.iter_stride;
        debug_assert!(v >= 0, "affine pattern generated a negative address");
        v as Addr
    }
}

/// Pseudo-random but deterministic address stream for indirect accesses.
/// Mirrors graph-analytics loads whose addresses are themselves loaded
/// data (`g_cost[g_graph_edges[i]]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectPattern {
    /// Base of the indirectly indexed region.
    pub region_base: Addr,
    /// Region length in bytes; generated addresses stay inside it.
    pub region_len: u64,
    /// Per-load salt so distinct indirect loads produce distinct streams.
    pub salt: u64,
}

impl IndirectPattern {
    /// Evaluate the (deterministic) pseudo-random address of one lane.
    /// SplitMix64 over (salt, cta, warp, lane, iter) — high-quality
    /// mixing keeps the stream stride-free for any observer.
    #[inline]
    pub fn addr(&self, cta: CtaCoord, warp_in_cta: u32, lane: u32, iter: u32) -> Addr {
        let key = self
            .salt
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((cta.linear as u64) << 40)
            .wrapping_add((warp_in_cta as u64) << 24)
            .wrapping_add((iter as u64) << 8)
            .wrapping_add(lane as u64);
        let mixed = splitmix64(key);
        // Word-align inside the region.
        self.region_base + (mixed % self.region_len.max(4)) / 4 * 4
    }
}

/// Deterministic warp-predicate hash used by [`Op::SkipIf`].
#[inline]
pub fn warp_predicate(cta: CtaCoord, warp_in_cta: u32, iter: u32, modulo: u32) -> bool {
    debug_assert!(modulo >= 1);
    let key = ((cta.linear as u64) << 34)
        ^ ((warp_in_cta as u64) << 21)
        ^ ((iter as u64) << 3)
        ^ 0x5bd1_e995;
    splitmix64(key).is_multiple_of(modulo as u64)
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Address generator of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPattern {
    /// Thread-id/CTA-id derived address — prefetchable in principle.
    Affine(AffinePattern),
    /// Data-dependent address — backward register tracing would find a
    /// loaded value as the source, so CTA-aware prefetching excludes it.
    Indirect(IndirectPattern),
}

impl AddrPattern {
    /// Evaluate the address of one lane.
    #[inline]
    pub fn addr(&self, cta: CtaCoord, warp_in_cta: u32, lane: u32, iter: u32) -> Addr {
        match self {
            AddrPattern::Affine(p) => p.addr(cta, warp_in_cta, lane, iter),
            AddrPattern::Indirect(p) => p.addr(cta, warp_in_cta, lane, iter),
        }
    }

    /// Whether backward register tracing (Koo et al., IISWC'15) would
    /// classify this load's source operands as thread-id/CTA-id derived.
    #[inline]
    pub fn is_affine(&self) -> bool {
        matches!(self, AddrPattern::Affine(_))
    }
}

/// One static instruction of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Arithmetic work: occupies the warp's issue slot once and completes
    /// after `cycles` (fully pipelined; no structural hazard modelled).
    Alu {
        /// Execution latency in core cycles.
        cycles: u32,
    },
    /// A global load. Coalesced per warp into line requests.
    Ld {
        /// Static PC tag — prefetch tables are indexed by this.
        pc: Pc,
        /// Address generator.
        pattern: AddrPattern,
        /// Active lanes (≤ SIMT width); divergent apps use fewer.
        active_lanes: u32,
    },
    /// A global store. Fire-and-forget traffic (write-through,
    /// no-allocate at L1).
    St {
        /// Static PC tag.
        pc: Pc,
        /// Address generator.
        pattern: AddrPattern,
        /// Active lanes.
        active_lanes: u32,
    },
    /// Consume previously loaded values: the warp cannot proceed past
    /// this point until all its outstanding loads have returned. This is
    /// the "long-latency" event that demotes a warp to the two-level
    /// scheduler's pending queue.
    WaitLoads,
    /// Begin a counted loop with `iters` iterations. The matching
    /// `LoopEnd` is at `end` (index of the instruction *after* the loop).
    LoopBegin {
        /// Trip count.
        iters: u32,
        /// Index one past the matching [`Op::LoopEnd`].
        end: usize,
    },
    /// End of a counted loop; jumps back to `start` (the `LoopBegin`)
    /// while iterations remain.
    LoopEnd {
        /// Index of the matching [`Op::LoopBegin`].
        start: usize,
    },
    /// CTA-wide barrier: the warp waits until all warps of its CTA reach
    /// the same barrier.
    Barrier,
    /// Warp-level divergence: skip the next `len` instructions unless a
    /// deterministic hash of (CTA, warp, iteration) is ≡ 0 mod `modulo`
    /// — i.e. roughly one in `modulo` warps executes the guarded block.
    /// Models frontier-style predication (`if (g_graph_mask[tid]) { … }`)
    /// where most warps fall through.
    SkipIf {
        /// 1-in-`modulo` warps take the guarded block (≥ 1).
        modulo: u32,
        /// Instructions guarded by the predicate.
        len: usize,
    },
}

impl Op {
    /// `true` for instructions that issue memory requests.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. })
    }
}

/// A straight-line kernel program with structured counted loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// The instruction sequence.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Instruction at `idx`.
    #[inline]
    pub fn op(&self, idx: usize) -> Op {
        self.ops[idx]
    }

    /// Whether the instruction at `idx` issues memory requests, checked
    /// by reference — the per-cycle issue predicate asks this for every
    /// candidate warp, and copying a pattern-carrying [`Op`] out of the
    /// program just to test its discriminant dominated that path.
    #[inline]
    pub fn op_is_mem(&self, idx: usize) -> bool {
        self.ops[idx].is_mem()
    }

    /// Static loads, paired with the trip count of the innermost loop
    /// enclosing them (1 when not in a loop). Drives the Fig. 4 analysis.
    pub fn static_loads(&self) -> Vec<(Pc, u32, bool)> {
        let mut out = Vec::new();
        let mut loop_stack: Vec<u32> = Vec::new();
        for op in &self.ops {
            match *op {
                Op::LoopBegin { iters, .. } => loop_stack.push(iters),
                Op::LoopEnd { .. } => {
                    loop_stack.pop();
                }
                Op::Ld { pc, .. } => {
                    let iters = loop_stack.last().copied().unwrap_or(1);
                    out.push((pc, iters, !loop_stack.is_empty()));
                }
                _ => {}
            }
        }
        out
    }

    /// Validates structural well-formedness (balanced loops, correct
    /// jump targets, positive trip counts, lane counts within width).
    pub fn validate(&self, simt_width: u32) -> Result<(), String> {
        let mut stack = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                Op::LoopBegin { iters, end } => {
                    if iters == 0 {
                        return Err(format!("op {i}: zero-trip loop"));
                    }
                    if end > self.ops.len() {
                        return Err(format!("op {i}: loop end {end} out of range"));
                    }
                    stack.push((i, end));
                }
                Op::LoopEnd { start } => match stack.pop() {
                    Some((begin, end)) => {
                        if start != begin {
                            return Err(format!(
                                "op {i}: LoopEnd start {start} does not match LoopBegin {begin}"
                            ));
                        }
                        if end != i + 1 {
                            return Err(format!(
                                "op {begin}: LoopBegin end {end} should be {}",
                                i + 1
                            ));
                        }
                    }
                    None => return Err(format!("op {i}: LoopEnd without LoopBegin")),
                },
                Op::SkipIf { modulo, len } => {
                    if modulo == 0 {
                        return Err(format!("op {i}: SkipIf with modulo 0"));
                    }
                    if i + 1 + len > self.ops.len() {
                        return Err(format!("op {i}: SkipIf guards past program end"));
                    }
                }
                Op::Ld { active_lanes, .. } | Op::St { active_lanes, .. }
                    if (active_lanes == 0 || active_lanes > simt_width) =>
                {
                    return Err(format!("op {i}: invalid active lane count {active_lanes}"));
                }
                _ => {}
            }
        }
        if let Some((begin, _)) = stack.pop() {
            return Err(format!("op {begin}: unterminated loop"));
        }
        Ok(())
    }
}

// --- content hashing (sweep-farm result cache keys) -------------------
//
// The kernel IR is the largest variable-length part of a run's identity;
// every op is framed with a variant tag and the op list with its length,
// so no two distinct programs share a byte stream.

use crate::digest::{Digest, Hashable};

impl Hashable for CtaTerm {
    fn digest_into(&self, d: &mut Digest) {
        match *self {
            CtaTerm::Linear { pitch } => {
                d.write_tag(0);
                d.write_i64(pitch);
            }
            CtaTerm::Surface2D { x_pitch, y_pitch } => {
                d.write_tag(1);
                d.write_i64(x_pitch);
                d.write_i64(y_pitch);
            }
        }
    }
}

impl Hashable for AffinePattern {
    fn digest_into(&self, d: &mut Digest) {
        d.write_u64(self.base);
        self.cta_term.digest_into(d);
        d.write_i64(self.warp_stride);
        d.write_i64(self.lane_stride);
        d.write_i64(self.iter_stride);
    }
}

impl Hashable for IndirectPattern {
    fn digest_into(&self, d: &mut Digest) {
        d.write_u64(self.region_base);
        d.write_u64(self.region_len);
        d.write_u64(self.salt);
    }
}

impl Hashable for AddrPattern {
    fn digest_into(&self, d: &mut Digest) {
        match self {
            AddrPattern::Affine(p) => {
                d.write_tag(0);
                p.digest_into(d);
            }
            AddrPattern::Indirect(p) => {
                d.write_tag(1);
                p.digest_into(d);
            }
        }
    }
}

impl Hashable for Op {
    fn digest_into(&self, d: &mut Digest) {
        match *self {
            Op::Alu { cycles } => {
                d.write_tag(0);
                d.write_u32(cycles);
            }
            Op::Ld {
                pc,
                pattern,
                active_lanes,
            } => {
                d.write_tag(1);
                d.write_u32(pc);
                pattern.digest_into(d);
                d.write_u32(active_lanes);
            }
            Op::St {
                pc,
                pattern,
                active_lanes,
            } => {
                d.write_tag(2);
                d.write_u32(pc);
                pattern.digest_into(d);
                d.write_u32(active_lanes);
            }
            Op::WaitLoads => d.write_tag(3),
            Op::LoopBegin { iters, end } => {
                d.write_tag(4);
                d.write_u32(iters);
                d.write_usize(end);
            }
            Op::LoopEnd { start } => {
                d.write_tag(5);
                d.write_usize(start);
            }
            Op::Barrier => d.write_tag(6),
            Op::SkipIf { modulo, len } => {
                d.write_tag(7);
                d.write_u32(modulo);
                d.write_usize(len);
            }
        }
    }
}

impl Hashable for Program {
    fn digest_into(&self, d: &mut Digest) {
        d.write_usize(self.ops.len());
        for op in &self.ops {
            op.digest_into(d);
        }
    }
}

/// Fluent builder for [`Program`] that assigns PCs and closes loops.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    next_pc: Pc,
    loop_starts: Vec<usize>,
    skip_starts: Vec<usize>,
}

impl ProgramBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append ALU work of `cycles` latency.
    pub fn alu(mut self, cycles: u32) -> Self {
        self.ops.push(Op::Alu { cycles });
        self
    }

    /// Append a fully-active global load; the PC is auto-assigned.
    pub fn ld(self, pattern: AddrPattern) -> Self {
        self.ld_lanes(pattern, 32)
    }

    /// Append a global load with an explicit active-lane count.
    pub fn ld_lanes(mut self, pattern: AddrPattern, active_lanes: u32) -> Self {
        let pc = self.alloc_pc();
        self.ops.push(Op::Ld {
            pc,
            pattern,
            active_lanes,
        });
        self
    }

    /// Append a fully-active global store.
    pub fn st(self, pattern: AddrPattern) -> Self {
        self.st_lanes(pattern, 32)
    }

    /// Append a global store with an explicit active-lane count.
    pub fn st_lanes(mut self, pattern: AddrPattern, active_lanes: u32) -> Self {
        let pc = self.alloc_pc();
        self.ops.push(Op::St {
            pc,
            pattern,
            active_lanes,
        });
        self
    }

    /// Append a wait-for-all-loads dependence point.
    pub fn wait(mut self) -> Self {
        self.ops.push(Op::WaitLoads);
        self
    }

    /// Append a CTA barrier.
    pub fn barrier(mut self) -> Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Open a predicated block executed by roughly one in `modulo`
    /// warps; close it with [`ProgramBuilder::end_skip`].
    pub fn begin_skip(mut self, modulo: u32) -> Self {
        self.skip_starts.push(self.ops.len());
        self.ops.push(Op::SkipIf { modulo, len: usize::MAX });
        self
    }

    /// Close the innermost open predicated block.
    pub fn end_skip(mut self) -> Self {
        let start = self.skip_starts.pop().expect("end_skip without begin_skip");
        let len = self.ops.len() - start - 1;
        match &mut self.ops[start] {
            Op::SkipIf { len: l, .. } => *l = len,
            _ => unreachable!("skip start index must point at SkipIf"),
        }
        self
    }

    /// Open a counted loop; close it with [`ProgramBuilder::end_loop`].
    pub fn begin_loop(mut self, iters: u32) -> Self {
        self.loop_starts.push(self.ops.len());
        self.ops.push(Op::LoopBegin {
            iters,
            end: usize::MAX,
        });
        self
    }

    /// Close the innermost open loop.
    pub fn end_loop(mut self) -> Self {
        let start = self.loop_starts.pop().expect("end_loop without begin_loop");
        let end = self.ops.len() + 1;
        self.ops.push(Op::LoopEnd { start });
        match &mut self.ops[start] {
            Op::LoopBegin { end: e, .. } => *e = end,
            _ => unreachable!("loop start index must point at LoopBegin"),
        }
        self
    }

    /// Finish; panics if a loop is left open or the program is invalid.
    pub fn build(self) -> Program {
        assert!(
            self.loop_starts.is_empty(),
            "unclosed loop in program builder"
        );
        assert!(
            self.skip_starts.is_empty(),
            "unclosed skip block in program builder"
        );
        let p = Program { ops: self.ops };
        if let Err(e) = p.validate(32) {
            panic!("invalid program: {e}");
        }
        p
    }

    fn alloc_pc(&mut self) -> Pc {
        let pc = self.next_pc;
        self.next_pc += 8; // instruction-width spacing, cosmetic
        pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(base: Addr) -> AddrPattern {
        AddrPattern::Affine(AffinePattern::dense(base, CtaTerm::Linear { pitch: 4096 }))
    }

    #[test]
    fn affine_addr_decomposition() {
        let p = AffinePattern {
            base: 0x1000,
            cta_term: CtaTerm::Surface2D {
                x_pitch: 128,
                y_pitch: 5120,
            },
            warp_stride: 1280,
            lane_stride: 4,
            iter_stride: 40960,
        };
        let cta = CtaCoord {
            x: 3,
            y: 2,
            linear: 13,
        };
        // base + 3*128 + 2*5120 + warp 2*1280 + lane 5*4 + iter 1*40960
        assert_eq!(
            p.addr(cta, 2, 5, 1),
            0x1000 + 384 + 10240 + 2560 + 20 + 40960
        );
    }

    #[test]
    fn warp_stride_is_cta_invariant() {
        // The core premise of CAP: Δ between consecutive warps is the same
        // in every CTA even when θ is irregular.
        let p = AffinePattern {
            base: 0,
            cta_term: CtaTerm::Surface2D {
                x_pitch: 128,
                y_pitch: 99840,
            },
            warp_stride: 512,
            lane_stride: 4,
            iter_stride: 0,
        };
        for linear in [0u32, 7, 19, 101] {
            let cta = CtaCoord::from_linear(linear, 13);
            let d = p.addr(cta, 3, 0, 0) - p.addr(cta, 2, 0, 0);
            assert_eq!(d, 512);
        }
    }

    #[test]
    fn cta_bases_are_irregular_in_launch_order() {
        // §IV: distances between CTA bases seen by one SM are not constant.
        let term = CtaTerm::Surface2D {
            x_pitch: 128,
            y_pitch: 5184,
        };
        let b = |l| term.theta(CtaCoord::from_linear(l, 8));
        let d1 = b(9) - b(0);
        let d2 = b(20) - b(9);
        assert_ne!(d1, d2);
    }

    #[test]
    fn indirect_addresses_stay_in_region() {
        let p = IndirectPattern {
            region_base: 1 << 20,
            region_len: 1 << 16,
            salt: 7,
        };
        let cta = CtaCoord::from_linear(3, 4);
        for lane in 0..32 {
            let a = p.addr(cta, 1, lane, 0);
            assert!((1 << 20..(1 << 20) + (1 << 16)).contains(&a));
            assert_eq!(a % 4, 0);
        }
    }

    #[test]
    fn indirect_addresses_have_no_common_warp_stride() {
        let p = IndirectPattern {
            region_base: 0,
            region_len: 1 << 24,
            salt: 3,
        };
        let cta = CtaCoord::from_linear(0, 4);
        let d0 = p.addr(cta, 1, 0, 0) as i64 - p.addr(cta, 0, 0, 0) as i64;
        let d1 = p.addr(cta, 2, 0, 0) as i64 - p.addr(cta, 1, 0, 0) as i64;
        assert_ne!(d0, d1);
    }

    #[test]
    fn builder_assigns_distinct_pcs_and_closes_loops() {
        let prog = ProgramBuilder::new()
            .alu(4)
            .begin_loop(10)
            .ld(dense(0))
            .wait()
            .end_loop()
            .st(dense(1 << 20))
            .build();
        assert_eq!(prog.len(), 6);
        let pcs: Vec<Pc> = prog
            .ops()
            .iter()
            .filter_map(|op| match *op {
                Op::Ld { pc, .. } | Op::St { pc, .. } => Some(pc),
                _ => None,
            })
            .collect();
        assert_eq!(pcs.len(), 2);
        assert_ne!(pcs[0], pcs[1]);
        match prog.op(1) {
            Op::LoopBegin { iters, end } => {
                assert_eq!(iters, 10);
                assert_eq!(end, 5);
            }
            other => panic!("expected LoopBegin, got {other:?}"),
        }
    }

    #[test]
    fn static_loads_reports_loop_membership() {
        let prog = ProgramBuilder::new()
            .ld(dense(0))
            .begin_loop(62)
            .ld(dense(4096))
            .end_loop()
            .build();
        let loads = prog.static_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].1, 1);
        assert!(!loads[0].2);
        assert_eq!(loads[1].1, 62);
        assert!(loads[1].2);
    }

    #[test]
    fn validate_rejects_zero_lane_loads() {
        let p = Program {
            ops: vec![Op::Ld {
                pc: 0,
                pattern: dense(0),
                active_lanes: 0,
            }],
        };
        assert!(p.validate(32).is_err());
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn builder_panics_on_unclosed_loop() {
        let _ = ProgramBuilder::new().begin_loop(2).alu(1).build();
    }

    #[test]
    fn skip_blocks_build_and_validate() {
        let prog = ProgramBuilder::new()
            .alu(1)
            .begin_skip(4)
            .ld(dense(0))
            .wait()
            .end_skip()
            .alu(1)
            .build();
        match prog.op(1) {
            Op::SkipIf { modulo, len } => {
                assert_eq!(modulo, 4);
                assert_eq!(len, 2);
            }
            other => panic!("expected SkipIf, got {other:?}"),
        }
    }

    #[test]
    fn warp_predicate_is_deterministic_and_sparse() {
        let cta = CtaCoord::from_linear(7, 16);
        assert_eq!(
            warp_predicate(cta, 3, 0, 4),
            warp_predicate(cta, 3, 0, 4),
            "deterministic"
        );
        // With modulo 1 every warp takes the block.
        for w in 0..8 {
            assert!(warp_predicate(cta, w, 0, 1));
        }
        // With a large modulo most warps skip.
        let taken = (0..64).filter(|&w| warp_predicate(cta, w, 0, 8)).count();
        assert!(taken < 32, "roughly 1/8 of warps take the block, got {taken}");
    }

    #[test]
    fn skip_past_end_is_invalid() {
        let p = Program {
            ops: vec![Op::SkipIf { modulo: 2, len: 3 }, Op::Alu { cycles: 1 }],
        };
        assert!(p.validate(32).is_err());
    }

    #[test]
    fn nested_loops_validate() {
        let prog = ProgramBuilder::new()
            .begin_loop(3)
            .begin_loop(5)
            .alu(1)
            .end_loop()
            .end_loop()
            .build();
        assert!(prog.validate(32).is_ok());
    }
}
