//! Memory access coalescer.
//!
//! Per §II-A, up to 32 per-thread requests of one warp instruction are
//! merged into as few 128 B cache-line requests as possible. Perfectly
//! regular warps produce one or two line requests; divergent/indirect
//! warps can produce up to 32. The paper's prefetcher only targets loads
//! that coalesce into at most four lines (§V-B).

use crate::isa::AddrPattern;
use crate::types::{line_base, Addr, CtaCoord};

/// Coalesces one warp memory instruction into unique line requests,
/// preserving first-touch lane order (deterministic).
///
/// `out` is a reusable scratch vector; it is cleared first.
pub fn coalesce(
    pattern: &AddrPattern,
    cta: CtaCoord,
    warp_in_cta: u32,
    iter: u32,
    active_lanes: u32,
    line_size: u32,
    out: &mut Vec<Addr>,
) {
    out.clear();
    for lane in 0..active_lanes {
        let line = line_base(pattern.addr(cta, warp_in_cta, lane, iter), line_size);
        // Linear scan beats hashing at these sizes: regular warps produce
        // 1–2 unique lines, divergent ones up to 32.
        if !out.contains(&line) {
            out.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AffinePattern, CtaTerm, IndirectPattern};

    fn cta0() -> CtaCoord {
        CtaCoord {
            x: 0,
            y: 0,
            linear: 0,
        }
    }

    #[test]
    fn dense_float_warp_coalesces_to_one_line() {
        let p = AddrPattern::Affine(AffinePattern::dense(0, CtaTerm::Linear { pitch: 4096 }));
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn unaligned_dense_warp_spans_two_lines() {
        let p = AddrPattern::Affine(AffinePattern {
            base: 64,
            cta_term: CtaTerm::Linear { pitch: 4096 },
            warp_stride: 128,
            lane_stride: 4,
            iter_stride: 0,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert_eq!(out, vec![0, 128]);
    }

    #[test]
    fn wide_lane_stride_fans_out() {
        // 128 B per lane: every lane touches its own line.
        let p = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 0 },
            warp_stride: 0,
            lane_stride: 128,
            iter_stride: 0,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn broadcast_access_is_one_line() {
        let p = AddrPattern::Affine(AffinePattern {
            base: 0x1000,
            cta_term: CtaTerm::Linear { pitch: 0 },
            warp_stride: 0,
            lane_stride: 0,
            iter_stride: 0,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert_eq!(out, vec![0x1000]);
    }

    #[test]
    fn active_lane_count_limits_fanout() {
        let p = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 0 },
            warp_stride: 0,
            lane_stride: 128,
            iter_stride: 0,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 4, 128, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn indirect_pattern_is_divergent() {
        let p = AddrPattern::Indirect(IndirectPattern {
            region_base: 0,
            region_len: 1 << 26,
            salt: 11,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert!(
            out.len() > 4,
            "indirect warp should span many lines, got {}",
            out.len()
        );
    }

    #[test]
    fn lines_are_line_aligned_and_unique() {
        let p = AddrPattern::Indirect(IndirectPattern {
            region_base: 1 << 20,
            region_len: 1 << 22,
            salt: 3,
        });
        let mut out = Vec::new();
        coalesce(&p, cta0(), 2, 1, 32, 128, &mut out);
        for (i, &a) in out.iter().enumerate() {
            assert_eq!(a % 128, 0);
            assert!(!out[..i].contains(&a));
        }
    }

    #[test]
    fn scratch_vector_is_cleared() {
        let p = AddrPattern::Affine(AffinePattern::dense(0, CtaTerm::Linear { pitch: 0 }));
        let mut out = vec![0xdead_beef];
        coalesce(&p, cta0(), 0, 0, 32, 128, &mut out);
        assert_eq!(out, vec![0]);
    }
}
