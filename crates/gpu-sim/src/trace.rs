//! Event tracing as decorators.
//!
//! Downstream users debugging a prefetcher or scheduler policy need to
//! see the event stream the engine saw. Rather than threading a logger
//! through the SM, the tracers wrap the policy objects themselves:
//! [`TracingPrefetcher`] records every demand observation and every
//! generated request; [`TracingScheduler`] records warp lifecycle events
//! and issue picks. Both forward to the wrapped implementation untouched,
//! so attaching a tracer never changes simulated behaviour.

use std::sync::{Arc, Mutex};

use crate::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use crate::sched::WarpScheduler;
use crate::types::{Addr, CtaCoord, CtaSlot, Cycle, Pc, WarpSlot};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A warp issued a demand load.
    Demand {
        /// Cycle of the observation.
        cycle: Cycle,
        /// Load PC.
        pc: Pc,
        /// Issuing hardware warp slot.
        warp: WarpSlot,
        /// First coalesced line.
        first_line: Addr,
        /// Number of coalesced lines.
        lines: usize,
    },
    /// The engine generated a prefetch request.
    Prefetch {
        /// Load PC the prefetch predicts for.
        pc: Pc,
        /// Predicted line.
        line: Addr,
        /// Bound target warp.
        target: Option<WarpSlot>,
    },
    /// A CTA was launched into a slot.
    CtaLaunch {
        /// Hardware CTA slot.
        slot: CtaSlot,
        /// Grid coordinates.
        cta: CtaCoord,
    },
    /// A CTA completed.
    CtaComplete {
        /// Hardware CTA slot.
        slot: CtaSlot,
    },
    /// The scheduler issued a warp.
    Issue {
        /// Cycle of the pick.
        cycle: Cycle,
        /// Picked warp.
        warp: WarpSlot,
    },
    /// A warp was demoted on a long-latency dependence.
    Demote {
        /// Demoted warp.
        warp: WarpSlot,
    },
    /// A warp's data returned (re-schedulable).
    Wake {
        /// Woken warp.
        warp: WarpSlot,
    },
}

/// Shared, thread-safe event buffer.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    inner: Arc<Mutex<Vec<Event>>>,
    capacity: usize,
}

impl TraceBuffer {
    /// Buffer capped at `capacity` events (older events are kept; new
    /// ones beyond the cap are dropped — the interesting part of a trace
    /// is usually its beginning).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            inner: Arc::new(Mutex::new(Vec::new())),
            capacity,
        }
    }

    fn push(&self, e: Event) {
        let mut v = self.inner.lock().expect("trace buffer poisoned");
        if v.len() < self.capacity {
            v.push(e);
        }
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("trace buffer poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace buffer poisoned").len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Prefetcher decorator recording observations and generated requests.
pub struct TracingPrefetcher<P> {
    inner: P,
    buf: TraceBuffer,
}

impl<P: Prefetcher> TracingPrefetcher<P> {
    /// Wrap `inner`, recording into `buf`.
    pub fn new(inner: P, buf: TraceBuffer) -> Self {
        TracingPrefetcher { inner, buf }
    }
}

impl<P: Prefetcher> Prefetcher for TracingPrefetcher<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_demand(&mut self, obs: &DemandObservation<'_>, out: &mut Vec<PrefetchRequest>) {
        self.buf.push(Event::Demand {
            cycle: obs.cycle,
            pc: obs.pc,
            warp: obs.warp_slot,
            first_line: obs.lines.first().copied().unwrap_or(0),
            lines: obs.lines.len(),
        });
        let before = out.len();
        self.inner.on_demand(obs, out);
        for r in &out[before..] {
            self.buf.push(Event::Prefetch {
                pc: r.pc,
                line: r.line,
                target: r.target_warp,
            });
        }
    }

    fn on_l1_miss(&mut self, cycle: Cycle, line: Addr, out: &mut Vec<PrefetchRequest>) {
        let before = out.len();
        self.inner.on_l1_miss(cycle, line, out);
        for r in &out[before..] {
            self.buf.push(Event::Prefetch {
                pc: r.pc,
                line: r.line,
                target: r.target_warp,
            });
        }
    }

    fn on_cta_launch(&mut self, slot: CtaSlot, cta: CtaCoord) {
        self.buf.push(Event::CtaLaunch { slot, cta });
        self.inner.on_cta_launch(slot, cta);
    }

    fn on_cta_complete(&mut self, slot: CtaSlot) {
        self.buf.push(Event::CtaComplete { slot });
        self.inner.on_cta_complete(slot);
    }

    fn table_accesses(&self) -> u64 {
        self.inner.table_accesses()
    }

    fn mispredicts(&self) -> u64 {
        self.inner.mispredicts()
    }
}

/// Scheduler decorator recording issue picks and queue transitions.
pub struct TracingScheduler<S> {
    inner: S,
    buf: TraceBuffer,
}

impl<S: WarpScheduler> TracingScheduler<S> {
    /// Wrap `inner`, recording into `buf`.
    pub fn new(inner: S, buf: TraceBuffer) -> Self {
        TracingScheduler { inner, buf }
    }
}

impl<S: WarpScheduler> WarpScheduler for TracingScheduler<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_launch(&mut self, w: WarpSlot, leading: bool, group: u8) {
        self.inner.on_launch(w, leading, group);
    }

    fn on_finish(&mut self, w: WarpSlot) {
        self.inner.on_finish(w);
    }

    fn on_long_latency(&mut self, w: WarpSlot) {
        self.buf.push(Event::Demote { warp: w });
        self.inner.on_long_latency(w);
    }

    fn on_ready_again(&mut self, w: WarpSlot) {
        self.buf.push(Event::Wake { warp: w });
        self.inner.on_ready_again(w);
    }

    fn on_prefetch_fill(&mut self, w: WarpSlot) -> bool {
        self.inner.on_prefetch_fill(w)
    }

    fn on_leading_done(&mut self, w: WarpSlot) {
        self.inner.on_leading_done(w);
    }

    fn pick(
        &mut self,
        now: Cycle,
        can_issue: &mut dyn FnMut(WarpSlot) -> bool,
    ) -> Option<WarpSlot> {
        let picked = self.inner.pick(now, can_issue);
        if let Some(w) = picked {
            self.buf.push(Event::Issue {
                cycle: now,
                warp: w,
            });
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::gpu::Gpu;
    use crate::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};
    use crate::kernel::Kernel;
    use crate::prefetch::NullPrefetcher;
    use crate::sched::TwoLevelScheduler;

    fn kernel() -> Kernel {
        let pat = AddrPattern::Affine(AffinePattern::dense(0, CtaTerm::Linear { pitch: 4096 }));
        Kernel::new(
            "t",
            (4, 1),
            64,
            ProgramBuilder::new().ld(pat).wait().alu(4).build(),
        )
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let cfg = GpuConfig::test_small();
        let buf = TraceBuffer::new(1 << 16);
        let b2 = buf.clone();
        let traced = {
            let factory = move |_sm: usize| -> Box<dyn Prefetcher> {
                Box::new(TracingPrefetcher::new(NullPrefetcher, b2.clone()))
            };
            Gpu::new(cfg.clone(), kernel(), &factory).run(1_000_000)
        };
        let plain = Gpu::new(cfg, kernel(), &|_| Box::new(NullPrefetcher)).run(1_000_000);
        assert_eq!(traced, plain, "tracing must not perturb simulation");
        assert!(!buf.is_empty());
    }

    #[test]
    fn demand_events_carry_the_observation() {
        let cfg = GpuConfig::test_small();
        let buf = TraceBuffer::new(1 << 16);
        let b2 = buf.clone();
        let factory = move |_sm: usize| -> Box<dyn Prefetcher> {
            Box::new(TracingPrefetcher::new(NullPrefetcher, b2.clone()))
        };
        let _ = Gpu::new(cfg, kernel(), &factory).run(1_000_000);
        let events = buf.events();
        let demands = events
            .iter()
            .filter(|e| matches!(e, Event::Demand { .. }))
            .count();
        let launches = events
            .iter()
            .filter(|e| matches!(e, Event::CtaLaunch { .. }))
            .count();
        let completes = events
            .iter()
            .filter(|e| matches!(e, Event::CtaComplete { .. }))
            .count();
        assert_eq!(demands, 8, "4 CTAs × 2 warps × 1 load");
        assert_eq!(launches, 4);
        assert_eq!(completes, 4);
    }

    #[test]
    fn scheduler_tracer_records_issue_stream() {
        let buf = TraceBuffer::new(64);
        let mut s = TracingScheduler::new(TwoLevelScheduler::new(2, false, false), buf.clone());
        s.on_launch(0, true, 0);
        s.on_launch(1, false, 0);
        let mut all = |_: WarpSlot| true;
        let _ = s.pick(5, &mut all);
        s.on_long_latency(0);
        s.on_ready_again(0);
        let events = buf.events();
        assert_eq!(
            events,
            vec![
                Event::Issue { cycle: 5, warp: 0 },
                Event::Demote { warp: 0 },
                Event::Wake { warp: 0 },
            ]
        );
    }

    #[test]
    fn buffer_capacity_is_respected() {
        let buf = TraceBuffer::new(2);
        buf.push(Event::Demote { warp: 0 });
        buf.push(Event::Demote { warp: 1 });
        buf.push(Event::Demote { warp: 2 });
        assert_eq!(buf.len(), 2, "events beyond the cap are dropped");
    }
}
