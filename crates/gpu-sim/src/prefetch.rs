//! Prefetch engine interface.
//!
//! A prefetcher is attached per SM (the paper's tables are per-SM/per-CTA
//! structures). It observes demand loads at the LD/ST unit *before* the
//! L1 lookup — the point where the paper's PerCTA/DIST tables are read —
//! and L1 misses (the trigger for next-line-style engines). It emits
//! [`PrefetchRequest`]s that the SM injects into L1 with lower priority
//! than demand fetches.

use crate::types::{Addr, CtaCoord, CtaSlot, Cycle, Pc, WarpSlot};

/// Everything a prefetch engine may observe about one warp demand load.
#[derive(Debug, Clone, Copy)]
pub struct DemandObservation<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// Static PC of the load.
    pub pc: Pc,
    /// Hardware CTA slot of the issuing warp.
    pub cta_slot: CtaSlot,
    /// Grid coordinates of the issuing warp's CTA.
    pub cta: CtaCoord,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// Hardware warp slot (SM-local).
    pub warp_slot: WarpSlot,
    /// Warps per CTA for the running kernel.
    pub warps_per_cta: u32,
    /// Coalesced line addresses of this warp access (first-touch order).
    pub lines: &'a [Addr],
    /// `true` when backward register tracing would classify the address
    /// as thread-id/CTA-id derived (§V-B "handling indirect accesses").
    pub is_affine: bool,
    /// Innermost loop iteration index of the issuing warp.
    pub iter: u32,
}

/// A prefetch the engine wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line to prefetch.
    pub line: Addr,
    /// Load PC the prefetch is predicted for.
    pub pc: Pc,
    /// Warp the data is destined for (`None` for target-less engines);
    /// used by PAS's eager wake-up.
    pub target_warp: Option<WarpSlot>,
}

/// A per-SM prefetch engine.
pub trait Prefetcher: Send {
    /// Display name (matches the paper's legend: INTRA, INTER, MTA, NLP,
    /// LAP, ORCH, CAPS).
    fn name(&self) -> &'static str;

    /// A warp issued a demand load. Push generated prefetches to `out`.
    fn on_demand(&mut self, _obs: &DemandObservation<'_>, _out: &mut Vec<PrefetchRequest>) {}

    /// A demand line request missed in L1 (next-line-family trigger).
    fn on_l1_miss(&mut self, _cycle: Cycle, _line: Addr, _out: &mut Vec<PrefetchRequest>) {}

    /// A CTA was launched into `cta_slot` (reset per-CTA state).
    fn on_cta_launch(&mut self, _cta_slot: CtaSlot, _cta: CtaCoord) {}

    /// The CTA in `cta_slot` completed (free per-CTA state).
    fn on_cta_complete(&mut self, _cta_slot: CtaSlot) {}

    /// Metadata-table accesses so far (energy model input).
    fn table_accesses(&self) -> u64 {
        0
    }

    /// Address-verification mispredictions so far.
    fn mispredicts(&self) -> u64 {
        0
    }
}

/// The no-prefetch baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "NONE"
    }
}

/// Factory that builds one engine per SM.
pub type PrefetcherFactory = dyn Fn(usize) -> Box<dyn Prefetcher> + Send + Sync;

/// Convenience: a boxed factory for [`NullPrefetcher`].
pub fn null_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(NullPrefetcher))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_inert() {
        let mut p = NullPrefetcher;
        let mut out = Vec::new();
        let obs = DemandObservation {
            cycle: 0,
            pc: 0,
            cta_slot: 0,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: 0,
            },
            warp_in_cta: 0,
            warp_slot: 0,
            warps_per_cta: 4,
            lines: &[0],
            is_affine: true,
            iter: 0,
        };
        p.on_demand(&obs, &mut out);
        p.on_l1_miss(0, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.table_accesses(), 0);
        assert_eq!(p.name(), "NONE");
    }

    #[test]
    fn factory_builds_per_sm() {
        let f = null_factory();
        assert_eq!(f(0).name(), "NONE");
        assert_eq!(f(7).name(), "NONE");
    }
}
