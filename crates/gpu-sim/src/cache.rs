//! Set-associative cache with LRU replacement and per-line prefetch
//! provenance.
//!
//! Each line remembers whether a prefetch brought it in, which load PC and
//! warp the prefetch targeted, and when the prefetch was issued. This is
//! what lets the simulator measure the paper's accuracy (consumed
//! prefetches), early-prefetch ratio (evicted before use, Fig. 14a) and
//! prefetch-to-demand distance (Fig. 14b) without any approximation.

use crate::config::CacheConfig;
use crate::types::{Addr, Cycle, Pc, WarpSlot};

/// Provenance of a prefetched line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchProvenance {
    /// Load PC that generated the prefetch.
    pub pc: Pc,
    /// Warp the data was prefetched for.
    pub target_warp: Option<WarpSlot>,
    /// Cycle the prefetch request was issued.
    pub issue_cycle: Cycle,
}

/// Per-line state other than the tag and the LRU stamp. Kept out of the
/// tag array so the hot tag scan stays within one hardware cache line
/// per set; this struct is only touched for the single way a hit, fill
/// or invalidation acts on.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    dirty: bool,
    /// `Some` while the line holds unconsumed prefetched data.
    prefetch: Option<PrefetchProvenance>,
}

const EMPTY_META: LineMeta = LineMeta {
    dirty: false,
    prefetch: None,
};

/// Tag value marking an empty way. Real tags are line addresses and
/// never reach `Addr::MAX`, so the sentinel folds the `valid` bit into
/// the tag compare itself.
const TAG_INVALID: Addr = Addr::MAX;

/// Associativity the wide tag compare is specialised for. Eight u64
/// tags are one 64-byte hardware cache line and exactly two 256-bit
/// vector registers, so the full-config 8-way L1/L2 probe becomes two
/// compares plus a movemask.
const WIDE_WAYS: usize = 8;

/// Runtime check for the wide tag compare. Separate from the per-set
/// scan so `Cache::new` probes CPUID once and the hot path only tests
/// a bool.
#[inline]
fn wide_compare_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// AVX2 8-way tag compare returning the **first** matching way, so it
/// is drop-in equivalent to the scalar `iter().position()` scan (the
/// refill path relies on first-match when a set briefly holds a
/// duplicate sentinel pattern). `TAG_INVALID` never equals a real line
/// address, so empty ways can never match a lookup.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and `tags.len() == WIDE_WAYS`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn wide8_position(tags: &[Addr], needle: Addr) -> Option<usize> {
    use std::arch::x86_64::{
        __m256i, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi64x,
    };
    debug_assert_eq!(tags.len(), WIDE_WAYS);
    let key = _mm256_set1_epi64x(needle as i64);
    let lo = _mm256_loadu_si256(tags.as_ptr() as *const __m256i);
    let hi = _mm256_loadu_si256(tags.as_ptr().add(4) as *const __m256i);
    // Each 64-bit equal lane contributes 8 set bits to the movemask;
    // trailing_zeros / 8 recovers the lowest matching lane index.
    let lo_mask = _mm256_movemask_epi8(_mm256_cmpeq_epi64(lo, key)) as u32;
    if lo_mask != 0 {
        return Some(lo_mask.trailing_zeros() as usize / 8);
    }
    let hi_mask = _mm256_movemask_epi8(_mm256_cmpeq_epi64(hi, key)) as u32;
    if hi_mask != 0 {
        return Some(4 + hi_mask.trailing_zeros() as usize / 8);
    }
    None
}

/// Portable stand-in so non-x86 builds still compile; `wide_ok` is
/// always false there and this is never reached at runtime.
#[cfg(not(all(target_arch = "x86_64", not(miri))))]
unsafe fn wide8_position(tags: &[Addr], needle: Addr) -> Option<usize> {
    tags.iter().position(|&t| t == needle)
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present. If it held unconsumed prefetched data, the
    /// provenance is returned and the line is marked consumed.
    Hit {
        /// Provenance when this demand is the first to touch a
        /// prefetched line.
        first_use_of_prefetch: Option<PrefetchProvenance>,
    },
    /// Line absent.
    Miss,
}

/// Result of filling a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// An unconsumed prefetched line was evicted to make room
    /// (an *early* prefetch per Fig. 14a).
    pub evicted_unused_prefetch: bool,
    /// A dirty line was evicted and must be written back.
    pub writeback: Option<Addr>,
}

/// A set-associative LRU cache (tag store only — the simulator carries no
/// data values).
///
/// The line state lives in three parallel flat arrays indexed by
/// `set * assoc + way` instead of an array-of-structs: the tag scan that
/// every access performs walks `tags` alone (a full 8-way set is one
/// 64-byte hardware cache line), victim selection walks `last_use`
/// alone, and the wide `meta` entry (dirty bit plus prefetch
/// provenance) is only loaded for the single way that hits or is
/// evicted.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<Addr>,
    last_use: Vec<u64>,
    meta: Vec<LineMeta>,
    sets: usize,
    assoc: usize,
    use_clock: u64,
    /// Whether the 8-way tag scan may use the AVX2 wide compare.
    /// Decided once at construction (`assoc == 8` and the CPU reports
    /// AVX2); `find` branches on this flag so the per-access cost is a
    /// predictable test, not a feature probe.
    wide_ok: bool,
}

impl Cache {
    /// Build an empty cache with `cfg` geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let assoc = cfg.assoc as usize;
        Cache {
            cfg,
            tags: vec![TAG_INVALID; sets * assoc],
            last_use: vec![0; sets * assoc],
            meta: vec![EMPTY_META; sets * assoc],
            sets,
            assoc,
            use_clock: 0,
            wide_ok: assoc == WIDE_WAYS && wide_compare_available(),
        }
    }

    /// Geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// XOR-folded set hash. Plain modulo indexing aliases badly under
    /// GPU address streams: partition interleaving strips low bits, and
    /// power-of-two row strides (stencil taps, matrix pitches) collapse
    /// onto a handful of sets. Folding the upper index bits in (as
    /// GPGPU-Sim's hashed L2 set function does) restores full capacity.
    #[inline]
    fn set_of(&self, line_addr: Addr) -> usize {
        let idx = (line_addr / self.cfg.line_size as Addr) as usize;
        let bits = self.sets.trailing_zeros() as usize;
        (idx ^ (idx >> bits) ^ (idx >> (2 * bits))) & (self.sets - 1)
    }

    /// Index of the way holding `line_addr` in `set`, if resident.
    #[inline]
    fn find(&self, set: usize, line_addr: Addr) -> Option<usize> {
        let base = set * self.assoc;
        if self.wide_ok {
            // SAFETY: `wide_ok` is only set when the CPU reported AVX2
            // at construction and `assoc == WIDE_WAYS`, so the slice
            // passed here is exactly 8 tags long.
            return unsafe { wide8_position(&self.tags[base..base + WIDE_WAYS], line_addr) }
                .map(|w| base + w);
        }
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == line_addr)
            .map(|w| base + w)
    }

    /// Non-destructive presence check (no LRU update, no consumption).
    /// Prefetch engines use this to drop redundant requests.
    pub fn probe(&self, line_addr: Addr) -> bool {
        self.find(self.set_of(line_addr), line_addr).is_some()
    }

    /// Demand access to `line_addr`. Updates LRU and consumes prefetch
    /// provenance on first touch.
    pub fn access(&mut self, line_addr: Addr) -> Lookup {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.last_use[i] = clock;
                let first = self.meta[i].prefetch.take();
                Lookup::Hit {
                    first_use_of_prefetch: first,
                }
            }
            None => Lookup::Miss,
        }
    }

    /// Install `line_addr`, evicting the LRU way if needed. `prefetch`
    /// carries provenance when the fill came from a prefetch request
    /// whose data no demand has touched yet.
    pub fn fill(&mut self, line_addr: Addr, prefetch: Option<PrefetchProvenance>) -> FillOutcome {
        self.fill_inner(line_addr, prefetch, false)
    }

    /// Install `line_addr` as dirty (write-allocate store at a
    /// write-back cache).
    pub fn fill_dirty(&mut self, line_addr: Addr) -> FillOutcome {
        self.fill_inner(line_addr, None, true)
    }

    fn fill_inner(
        &mut self,
        line_addr: Addr,
        prefetch: Option<PrefetchProvenance>,
        dirty: bool,
    ) -> FillOutcome {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        let base = set * self.assoc;

        // Refill of a resident line (possible when a store invalidated and
        // a racing fill returns): overwrite in place.
        if let Some(i) = self.find(set, line_addr) {
            self.last_use[i] = clock;
            self.meta[i].prefetch = prefetch;
            self.meta[i].dirty |= dirty;
            return FillOutcome::default();
        }

        // First empty way, else the LRU way (earliest way on a stamp
        // tie, matching `min_by_key` over the former array-of-structs).
        let tags = &self.tags[base..base + self.assoc];
        let victim = match tags.iter().position(|&t| t == TAG_INVALID) {
            Some(w) => base + w,
            None => {
                let stamps = &self.last_use[base..base + self.assoc];
                let mut w = 0;
                for (i, &s) in stamps.iter().enumerate().skip(1) {
                    if s < stamps[w] {
                        w = i;
                    }
                }
                base + w
            }
        };
        let was_valid = self.tags[victim] != TAG_INVALID;
        let evicted_unused_prefetch = was_valid && self.meta[victim].prefetch.is_some();
        let writeback = (was_valid && self.meta[victim].dirty).then_some(self.tags[victim]);
        self.tags[victim] = line_addr;
        self.last_use[victim] = clock;
        self.meta[victim] = LineMeta { dirty, prefetch };
        FillOutcome {
            evicted_unused_prefetch,
            writeback,
        }
    }

    /// Mark a resident line dirty (store hit at a write-back cache).
    /// Returns whether the line was present.
    pub fn mark_dirty(&mut self, line_addr: Addr) -> bool {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.meta[i].dirty = true;
                self.last_use[i] = clock;
                true
            }
            None => false,
        }
    }

    /// Invalidate `line_addr` if present (write-evict store policy).
    /// Returns the prefetch provenance if the invalidated line held
    /// unconsumed prefetched data.
    pub fn invalidate(&mut self, line_addr: Addr) -> Option<PrefetchProvenance> {
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.tags[i] = TAG_INVALID;
                self.meta[i].prefetch.take()
            }
            None => None,
        }
    }

    /// Count of resident lines still holding unconsumed prefetched data
    /// (collected at kernel end for the accuracy denominator).
    pub fn unconsumed_prefetched_lines(&self) -> u64 {
        self.tags
            .iter()
            .zip(&self.meta)
            .filter(|(&t, m)| t != TAG_INVALID && m.prefetch.is_some())
            .count() as u64
    }

    /// Number of valid lines (occupancy diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_size: 128,
            assoc: 2,
            mshr_entries: 4,
            mshr_merge: 4,
            hit_latency: 1,
        }
    }

    fn prov(pc: Pc) -> PrefetchProvenance {
        PrefetchProvenance {
            pc,
            target_warp: Some(1),
            issue_cycle: 10,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.access(0x100), Lookup::Miss);
        c.fill(0x100, None);
        assert_eq!(
            c.access(0x100),
            Lookup::Hit {
                first_use_of_prefetch: None
            }
        );
        assert!(c.probe(0x100));
    }

    /// First `n` line addresses mapping to the same set as `base`.
    fn colliding(c: &Cache, base: Addr, n: usize) -> Vec<Addr> {
        let set = c.set_of(base);
        let mut out = vec![base];
        let mut a = base;
        while out.len() < n {
            a += 128;
            if c.set_of(a) == set {
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let _ = c.access(s[0]); // make s[1] the LRU way
        c.fill(s[2], None); // evicts s[1]
        assert!(c.probe(s[0]));
        assert!(!c.probe(s[1]));
        assert!(c.probe(s[2]));
    }

    #[test]
    fn prefetch_provenance_consumed_on_first_hit_only() {
        let mut c = Cache::new(cfg());
        c.fill(0x100, Some(prov(42)));
        match c.access(0x100) {
            Lookup::Hit {
                first_use_of_prefetch: Some(p),
            } => assert_eq!(p.pc, 42),
            other => panic!("expected first-use hit, got {other:?}"),
        }
        assert_eq!(
            c.access(0x100),
            Lookup::Hit {
                first_use_of_prefetch: None
            }
        );
        assert_eq!(c.unconsumed_prefetched_lines(), 0);
    }

    #[test]
    fn evicting_unused_prefetch_is_reported() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], Some(prov(1)));
        c.fill(s[1], None);
        // Set full; next fill evicts the LRU way holding the prefetch.
        let out = c.fill(s[2], None);
        assert!(out.evicted_unused_prefetch);
    }

    #[test]
    fn evicting_consumed_prefetch_is_not_early() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], Some(prov(1)));
        let _ = c.access(s[0]); // consume
        c.fill(s[1], None);
        let _ = c.access(s[1]); // make s[0] LRU
        let out = c.fill(s[2], None);
        assert!(!out.evicted_unused_prefetch);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(cfg());
        c.fill(0x100, Some(prov(5)));
        let p = c.invalidate(0x100);
        assert_eq!(p.unwrap().pc, 5);
        assert!(!c.probe(0x100));
        assert_eq!(c.invalidate(0x100), None);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 2);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let out = c.fill(s[0], None);
        assert!(!out.evicted_unused_prefetch);
        assert!(c.probe(s[0]) && c.probe(s[1]));
    }

    #[test]
    fn dirty_lines_write_back_on_eviction() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        assert!(c.fill_dirty(s[0]).writeback.is_none());
        c.fill(s[1], None);
        let _ = c.access(s[1]); // keep s[0] as the LRU way
        let out = c.fill(s[2], None); // evicts s[0]
        assert_eq!(out.writeback, Some(s[0]));
    }

    #[test]
    fn clean_evictions_do_not_write_back() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn mark_dirty_hits_resident_lines_only() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0x100, 3);
        c.fill(s[0], None);
        assert!(c.mark_dirty(s[0]));
        assert!(!c.mark_dirty(s[0] + 0x8000));
        // The dirtied line writes back when evicted.
        c.fill(s[1], None);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, Some(s[0]));
    }

    #[test]
    fn refill_merges_dirty_state() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill_dirty(s[0]);
        // A racing clean refill must not lose the dirty bit.
        let out = c.fill(s[0], None);
        assert_eq!(out.writeback, None);
        c.fill(s[1], None);
        let _ = c.access(s[1]);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, Some(s[0]));
    }

    /// The wide compare must agree with the scalar `position` scan on
    /// every probe pattern: misses, hits in each way, the invalid
    /// sentinel, and duplicate tags (first match wins). Runs the same
    /// workload through an 8-way cache (wide path where the host has
    /// AVX2) and a direct scalar scan over its tag array.
    #[test]
    fn wide_tag_compare_matches_scalar_scan() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8 * 128 * 16,
            line_size: 128,
            assoc: 8,
            mshr_entries: 4,
            mshr_merge: 4,
            hit_latency: 1,
        });
        assert_eq!(c.assoc, WIDE_WAYS);

        // Deterministic LCG address stream: fills, probes and
        // invalidations exercise hits in every way plus misses.
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) * 128
        };
        let mut addrs = Vec::new();
        for _ in 0..512 {
            let a = step();
            c.fill(a, None);
            addrs.push(a);
        }
        for (i, &a) in addrs.iter().enumerate() {
            let probes = [a, a + 128, step()];
            for p in probes {
                let set = c.set_of(p);
                let base = set * c.assoc;
                let scalar = c.tags[base..base + c.assoc]
                    .iter()
                    .position(|&t| t == p)
                    .map(|w| base + w);
                assert_eq!(c.find(set, p), scalar, "probe {p:#x} step {i}");
            }
            if i % 7 == 0 {
                c.invalidate(a);
            }
        }

        // First-match semantics on a hand-built duplicate set: way 2
        // and way 5 hold the same tag; both paths must report way 2.
        let set = c.set_of(0);
        let base = set * c.assoc;
        for w in 0..WIDE_WAYS {
            c.tags[base + w] = TAG_INVALID;
        }
        c.tags[base + 2] = 0;
        c.tags[base + 5] = 0;
        assert_eq!(c.find(set, 0), Some(base + 2));
        // Misses in the duplicate set still miss.
        assert_eq!(c.find(set, 640), None);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.valid_lines(), 0);
        c.fill(0x000, Some(prov(1)));
        c.fill(0x080, None);
        assert_eq!(c.valid_lines(), 2);
        assert_eq!(c.unconsumed_prefetched_lines(), 1);
    }
}
