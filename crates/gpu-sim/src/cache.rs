//! Set-associative cache with LRU replacement and per-line prefetch
//! provenance.
//!
//! Each line remembers whether a prefetch brought it in, which load PC and
//! warp the prefetch targeted, and when the prefetch was issued. This is
//! what lets the simulator measure the paper's accuracy (consumed
//! prefetches), early-prefetch ratio (evicted before use, Fig. 14a) and
//! prefetch-to-demand distance (Fig. 14b) without any approximation.

use crate::config::CacheConfig;
use crate::types::{Addr, Cycle, Pc, WarpSlot};

/// Provenance of a prefetched line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchProvenance {
    /// Load PC that generated the prefetch.
    pub pc: Pc,
    /// Warp the data was prefetched for.
    pub target_warp: Option<WarpSlot>,
    /// Cycle the prefetch request was issued.
    pub issue_cycle: Cycle,
}

/// Per-line state other than the tag and the LRU stamp. Kept out of the
/// tag array so the hot tag scan stays within one hardware cache line
/// per set; this struct is only touched for the single way a hit, fill
/// or invalidation acts on.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    dirty: bool,
    /// `Some` while the line holds unconsumed prefetched data.
    prefetch: Option<PrefetchProvenance>,
}

const EMPTY_META: LineMeta = LineMeta {
    dirty: false,
    prefetch: None,
};

/// Tag value marking an empty way. Real tags are line addresses and
/// never reach `Addr::MAX`, so the sentinel folds the `valid` bit into
/// the tag compare itself.
const TAG_INVALID: Addr = Addr::MAX;

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present. If it held unconsumed prefetched data, the
    /// provenance is returned and the line is marked consumed.
    Hit {
        /// Provenance when this demand is the first to touch a
        /// prefetched line.
        first_use_of_prefetch: Option<PrefetchProvenance>,
    },
    /// Line absent.
    Miss,
}

/// Result of filling a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// An unconsumed prefetched line was evicted to make room
    /// (an *early* prefetch per Fig. 14a).
    pub evicted_unused_prefetch: bool,
    /// A dirty line was evicted and must be written back.
    pub writeback: Option<Addr>,
}

/// A set-associative LRU cache (tag store only — the simulator carries no
/// data values).
///
/// The line state lives in three parallel flat arrays indexed by
/// `set * assoc + way` instead of an array-of-structs: the tag scan that
/// every access performs walks `tags` alone (a full 8-way set is one
/// 64-byte hardware cache line), victim selection walks `last_use`
/// alone, and the wide `meta` entry (dirty bit plus prefetch
/// provenance) is only loaded for the single way that hits or is
/// evicted.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<Addr>,
    last_use: Vec<u64>,
    meta: Vec<LineMeta>,
    sets: usize,
    assoc: usize,
    use_clock: u64,
}

impl Cache {
    /// Build an empty cache with `cfg` geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let assoc = cfg.assoc as usize;
        Cache {
            cfg,
            tags: vec![TAG_INVALID; sets * assoc],
            last_use: vec![0; sets * assoc],
            meta: vec![EMPTY_META; sets * assoc],
            sets,
            assoc,
            use_clock: 0,
        }
    }

    /// Geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// XOR-folded set hash. Plain modulo indexing aliases badly under
    /// GPU address streams: partition interleaving strips low bits, and
    /// power-of-two row strides (stencil taps, matrix pitches) collapse
    /// onto a handful of sets. Folding the upper index bits in (as
    /// GPGPU-Sim's hashed L2 set function does) restores full capacity.
    #[inline]
    fn set_of(&self, line_addr: Addr) -> usize {
        let idx = (line_addr / self.cfg.line_size as Addr) as usize;
        let bits = self.sets.trailing_zeros() as usize;
        (idx ^ (idx >> bits) ^ (idx >> (2 * bits))) & (self.sets - 1)
    }

    /// Index of the way holding `line_addr` in `set`, if resident.
    #[inline]
    fn find(&self, set: usize, line_addr: Addr) -> Option<usize> {
        let base = set * self.assoc;
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == line_addr)
            .map(|w| base + w)
    }

    /// Non-destructive presence check (no LRU update, no consumption).
    /// Prefetch engines use this to drop redundant requests.
    pub fn probe(&self, line_addr: Addr) -> bool {
        self.find(self.set_of(line_addr), line_addr).is_some()
    }

    /// Demand access to `line_addr`. Updates LRU and consumes prefetch
    /// provenance on first touch.
    pub fn access(&mut self, line_addr: Addr) -> Lookup {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.last_use[i] = clock;
                let first = self.meta[i].prefetch.take();
                Lookup::Hit {
                    first_use_of_prefetch: first,
                }
            }
            None => Lookup::Miss,
        }
    }

    /// Install `line_addr`, evicting the LRU way if needed. `prefetch`
    /// carries provenance when the fill came from a prefetch request
    /// whose data no demand has touched yet.
    pub fn fill(&mut self, line_addr: Addr, prefetch: Option<PrefetchProvenance>) -> FillOutcome {
        self.fill_inner(line_addr, prefetch, false)
    }

    /// Install `line_addr` as dirty (write-allocate store at a
    /// write-back cache).
    pub fn fill_dirty(&mut self, line_addr: Addr) -> FillOutcome {
        self.fill_inner(line_addr, None, true)
    }

    fn fill_inner(
        &mut self,
        line_addr: Addr,
        prefetch: Option<PrefetchProvenance>,
        dirty: bool,
    ) -> FillOutcome {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        let base = set * self.assoc;

        // Refill of a resident line (possible when a store invalidated and
        // a racing fill returns): overwrite in place.
        if let Some(i) = self.find(set, line_addr) {
            self.last_use[i] = clock;
            self.meta[i].prefetch = prefetch;
            self.meta[i].dirty |= dirty;
            return FillOutcome::default();
        }

        // First empty way, else the LRU way (earliest way on a stamp
        // tie, matching `min_by_key` over the former array-of-structs).
        let tags = &self.tags[base..base + self.assoc];
        let victim = match tags.iter().position(|&t| t == TAG_INVALID) {
            Some(w) => base + w,
            None => {
                let stamps = &self.last_use[base..base + self.assoc];
                let mut w = 0;
                for (i, &s) in stamps.iter().enumerate().skip(1) {
                    if s < stamps[w] {
                        w = i;
                    }
                }
                base + w
            }
        };
        let was_valid = self.tags[victim] != TAG_INVALID;
        let evicted_unused_prefetch = was_valid && self.meta[victim].prefetch.is_some();
        let writeback = (was_valid && self.meta[victim].dirty).then_some(self.tags[victim]);
        self.tags[victim] = line_addr;
        self.last_use[victim] = clock;
        self.meta[victim] = LineMeta { dirty, prefetch };
        FillOutcome {
            evicted_unused_prefetch,
            writeback,
        }
    }

    /// Mark a resident line dirty (store hit at a write-back cache).
    /// Returns whether the line was present.
    pub fn mark_dirty(&mut self, line_addr: Addr) -> bool {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.meta[i].dirty = true;
                self.last_use[i] = clock;
                true
            }
            None => false,
        }
    }

    /// Invalidate `line_addr` if present (write-evict store policy).
    /// Returns the prefetch provenance if the invalidated line held
    /// unconsumed prefetched data.
    pub fn invalidate(&mut self, line_addr: Addr) -> Option<PrefetchProvenance> {
        let set = self.set_of(line_addr);
        match self.find(set, line_addr) {
            Some(i) => {
                self.tags[i] = TAG_INVALID;
                self.meta[i].prefetch.take()
            }
            None => None,
        }
    }

    /// Count of resident lines still holding unconsumed prefetched data
    /// (collected at kernel end for the accuracy denominator).
    pub fn unconsumed_prefetched_lines(&self) -> u64 {
        self.tags
            .iter()
            .zip(&self.meta)
            .filter(|(&t, m)| t != TAG_INVALID && m.prefetch.is_some())
            .count() as u64
    }

    /// Number of valid lines (occupancy diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_size: 128,
            assoc: 2,
            mshr_entries: 4,
            mshr_merge: 4,
            hit_latency: 1,
        }
    }

    fn prov(pc: Pc) -> PrefetchProvenance {
        PrefetchProvenance {
            pc,
            target_warp: Some(1),
            issue_cycle: 10,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.access(0x100), Lookup::Miss);
        c.fill(0x100, None);
        assert_eq!(
            c.access(0x100),
            Lookup::Hit {
                first_use_of_prefetch: None
            }
        );
        assert!(c.probe(0x100));
    }

    /// First `n` line addresses mapping to the same set as `base`.
    fn colliding(c: &Cache, base: Addr, n: usize) -> Vec<Addr> {
        let set = c.set_of(base);
        let mut out = vec![base];
        let mut a = base;
        while out.len() < n {
            a += 128;
            if c.set_of(a) == set {
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let _ = c.access(s[0]); // make s[1] the LRU way
        c.fill(s[2], None); // evicts s[1]
        assert!(c.probe(s[0]));
        assert!(!c.probe(s[1]));
        assert!(c.probe(s[2]));
    }

    #[test]
    fn prefetch_provenance_consumed_on_first_hit_only() {
        let mut c = Cache::new(cfg());
        c.fill(0x100, Some(prov(42)));
        match c.access(0x100) {
            Lookup::Hit {
                first_use_of_prefetch: Some(p),
            } => assert_eq!(p.pc, 42),
            other => panic!("expected first-use hit, got {other:?}"),
        }
        assert_eq!(
            c.access(0x100),
            Lookup::Hit {
                first_use_of_prefetch: None
            }
        );
        assert_eq!(c.unconsumed_prefetched_lines(), 0);
    }

    #[test]
    fn evicting_unused_prefetch_is_reported() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], Some(prov(1)));
        c.fill(s[1], None);
        // Set full; next fill evicts the LRU way holding the prefetch.
        let out = c.fill(s[2], None);
        assert!(out.evicted_unused_prefetch);
    }

    #[test]
    fn evicting_consumed_prefetch_is_not_early() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], Some(prov(1)));
        let _ = c.access(s[0]); // consume
        c.fill(s[1], None);
        let _ = c.access(s[1]); // make s[0] LRU
        let out = c.fill(s[2], None);
        assert!(!out.evicted_unused_prefetch);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(cfg());
        c.fill(0x100, Some(prov(5)));
        let p = c.invalidate(0x100);
        assert_eq!(p.unwrap().pc, 5);
        assert!(!c.probe(0x100));
        assert_eq!(c.invalidate(0x100), None);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 2);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let out = c.fill(s[0], None);
        assert!(!out.evicted_unused_prefetch);
        assert!(c.probe(s[0]) && c.probe(s[1]));
    }

    #[test]
    fn dirty_lines_write_back_on_eviction() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        assert!(c.fill_dirty(s[0]).writeback.is_none());
        c.fill(s[1], None);
        let _ = c.access(s[1]); // keep s[0] as the LRU way
        let out = c.fill(s[2], None); // evicts s[0]
        assert_eq!(out.writeback, Some(s[0]));
    }

    #[test]
    fn clean_evictions_do_not_write_back() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill(s[0], None);
        c.fill(s[1], None);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn mark_dirty_hits_resident_lines_only() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0x100, 3);
        c.fill(s[0], None);
        assert!(c.mark_dirty(s[0]));
        assert!(!c.mark_dirty(s[0] + 0x8000));
        // The dirtied line writes back when evicted.
        c.fill(s[1], None);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, Some(s[0]));
    }

    #[test]
    fn refill_merges_dirty_state() {
        let mut c = Cache::new(cfg());
        let s = colliding(&c, 0, 3);
        c.fill_dirty(s[0]);
        // A racing clean refill must not lose the dirty bit.
        let out = c.fill(s[0], None);
        assert_eq!(out.writeback, None);
        c.fill(s[1], None);
        let _ = c.access(s[1]);
        let out = c.fill(s[2], None);
        assert_eq!(out.writeback, Some(s[0]));
    }

    #[test]
    fn occupancy_counts() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.valid_lines(), 0);
        c.fill(0x000, Some(prov(1)));
        c.fill(0x080, None);
        assert_eq!(c.valid_lines(), 2);
        assert_eq!(c.unconsumed_prefetched_lines(), 1);
    }
}
