//! Per-warp execution context.
//!
//! A warp is the smallest scheduled unit (§II-A): it owns a program
//! counter, a structured-loop stack, and an outstanding-load counter that
//! implements the long-latency dependence point ([`crate::isa::Op::WaitLoads`]).

use crate::types::{CtaCoord, CtaSlot, Cycle};

/// Scheduling state of a warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Slot holds no warp.
    Vacant,
    /// Can issue (possibly gated by an execution-latency timer).
    Ready,
    /// Descheduled at a `WaitLoads` with loads outstanding.
    WaitingMem,
    /// Parked at a CTA barrier.
    AtBarrier,
    /// Ran to completion.
    Finished,
}

/// One active loop nest level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopFrame {
    /// Index of the `LoopBegin` op.
    pub start: usize,
    /// Iterations still to run (including the current one).
    pub remaining: u32,
    /// Zero-based index of the current iteration (feeds `iter_stride`).
    pub iter: u32,
}

/// Execution context of one hardware warp slot.
#[derive(Debug, Clone)]
pub struct WarpCtx {
    /// Scheduling state.
    pub state: WarpState,
    /// CTA slot this warp belongs to.
    pub cta_slot: CtaSlot,
    /// Warp index within its CTA (0 = the natural leading warp).
    pub warp_in_cta: u32,
    /// Coordinates of the owning CTA.
    pub cta: CtaCoord,
    /// Next instruction index.
    pub pc: usize,
    /// Active loop nest.
    pub loop_stack: Vec<LoopFrame>,
    /// Line requests issued and not yet filled.
    pub outstanding_loads: u32,
    /// Warp cannot issue before this cycle (ALU latency chain).
    pub busy_until: Cycle,
    /// Marked as its CTA's leading warp (PAS priority bit, §V-A).
    pub leading: bool,
    /// Warp instructions issued (IPC numerator contribution).
    pub instructions: u64,
}

impl WarpCtx {
    /// An empty slot.
    pub fn vacant() -> Self {
        WarpCtx {
            state: WarpState::Vacant,
            cta_slot: 0,
            warp_in_cta: 0,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: 0,
            },
            pc: 0,
            loop_stack: Vec::new(),
            outstanding_loads: 0,
            busy_until: 0,
            leading: false,
            instructions: 0,
        }
    }

    /// (Re)initialize the slot for a newly launched warp.
    pub fn launch(&mut self, cta_slot: CtaSlot, warp_in_cta: u32, cta: CtaCoord, leading: bool) {
        self.state = WarpState::Ready;
        self.cta_slot = cta_slot;
        self.warp_in_cta = warp_in_cta;
        self.cta = cta;
        self.pc = 0;
        self.loop_stack.clear();
        self.outstanding_loads = 0;
        self.busy_until = 0;
        self.leading = leading;
        // `instructions` accumulates across warps for SM-lifetime IPC.
    }

    /// Innermost loop iteration index (0 outside loops) — the `iter`
    /// input of address patterns.
    #[inline]
    pub fn current_iter(&self) -> u32 {
        self.loop_stack.last().map_or(0, |f| f.iter)
    }

    /// `true` when the warp occupies its slot and has not finished.
    #[inline]
    pub fn is_active(&self) -> bool {
        !matches!(self.state, WarpState::Vacant | WarpState::Finished)
    }

    /// `true` when the scheduler may issue this warp at `now`.
    #[inline]
    pub fn can_issue(&self, now: Cycle) -> bool {
        self.state == WarpState::Ready && self.busy_until <= now
    }

    /// Future cycle at which this warp's execution-latency timer expires,
    /// if it is Ready but still gated (`busy_until > now`). Warps in any
    /// other state wake only through external events (fills, barriers),
    /// which the fast-forward probe tracks elsewhere.
    #[inline]
    pub fn wake_event(&self, now: Cycle) -> Option<Cycle> {
        (self.state == WarpState::Ready && self.busy_until > now).then_some(self.busy_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacant_slot_is_inactive() {
        let w = WarpCtx::vacant();
        assert!(!w.is_active());
        assert!(!w.can_issue(0));
    }

    #[test]
    fn launch_resets_context() {
        let mut w = WarpCtx::vacant();
        w.pc = 55;
        w.outstanding_loads = 3;
        w.loop_stack.push(LoopFrame {
            start: 1,
            remaining: 2,
            iter: 4,
        });
        w.launch(2, 1, CtaCoord::from_linear(9, 4), false);
        assert_eq!(w.pc, 0);
        assert_eq!(w.outstanding_loads, 0);
        assert!(w.loop_stack.is_empty());
        assert!(w.is_active());
        assert!(w.can_issue(0));
        assert_eq!(w.cta.linear, 9);
    }

    #[test]
    fn busy_gates_issue() {
        let mut w = WarpCtx::vacant();
        w.launch(0, 0, CtaCoord::from_linear(0, 1), true);
        w.busy_until = 10;
        assert!(!w.can_issue(9));
        assert!(w.can_issue(10));
    }

    #[test]
    fn wake_event_tracks_ready_busy_warps_only() {
        let mut w = WarpCtx::vacant();
        assert_eq!(w.wake_event(0), None, "vacant slot has no timer");
        w.launch(0, 0, CtaCoord::from_linear(0, 1), false);
        w.busy_until = 10;
        assert_eq!(w.wake_event(5), Some(10));
        assert_eq!(w.wake_event(10), None, "already issuable");
        w.state = WarpState::WaitingMem;
        assert_eq!(w.wake_event(5), None, "memory waits wake via fills");
    }

    #[test]
    fn current_iter_tracks_innermost() {
        let mut w = WarpCtx::vacant();
        w.launch(0, 0, CtaCoord::from_linear(0, 1), false);
        assert_eq!(w.current_iter(), 0);
        w.loop_stack.push(LoopFrame {
            start: 0,
            remaining: 9,
            iter: 3,
        });
        w.loop_stack.push(LoopFrame {
            start: 2,
            remaining: 2,
            iter: 7,
        });
        assert_eq!(w.current_iter(), 7);
    }
}
