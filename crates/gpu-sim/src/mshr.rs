//! Miss Status Holding Registers.
//!
//! MSHRs bound the number of distinct outstanding line misses per cache.
//! When they fill up — which is precisely the bursty-miss condition the
//! paper identifies — further memory instructions replay and the pipeline
//! backs up. Demand misses to a line already in flight merge into the
//! existing entry; prefetch-originated entries remember the warps bound to
//! them so fills can trigger the eager warp wake-up of §V-A.

use crate::linemap::LineMap;
use crate::types::{Addr, Cycle, Pc, WarpSlot};

/// A demand waiter registered on an in-flight line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Warp whose outstanding-load counter must drop when the fill
    /// arrives.
    pub warp: WarpSlot,
}

/// A prefetch target bound to an in-flight line (used for wake-up and
/// distance bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchTag {
    /// Warp the prefetched data is destined for (`None` for target-less
    /// prefetchers such as next-line).
    pub target_warp: Option<WarpSlot>,
    /// Load PC that generated the prefetch.
    pub pc: Pc,
    /// Cycle the prefetch was issued (distance measurement).
    pub issue_cycle: Cycle,
}

/// One in-flight line.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Line base address.
    pub line: Addr,
    /// Whether the entry was created by a prefetch (no demand yet when
    /// allocated).
    pub prefetch_origin: bool,
    /// Demand waiters merged into this entry.
    pub waiters: Vec<Waiter>,
    /// Prefetch metadata if a prefetch created or joined the entry.
    pub prefetch: Option<PrefetchTag>,
    /// Set when a demand merged into a prefetch-origin entry
    /// (a *late* prefetch: address right, timing short).
    pub demand_joined: bool,
}

/// Outcome of attempting to track a miss in the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; caller must send the request downstream.
    Allocated,
    /// Merged into an existing in-flight entry; no new request.
    Merged {
        /// The existing entry was created by a prefetch and this is the
        /// first demand to join it.
        hit_inflight_prefetch: bool,
    },
    /// No entry or merge slot available; the access must replay.
    ReservationFail,
}

/// Fixed-capacity MSHR file.
#[derive(Debug)]
pub struct MshrFile {
    entries: LineMap<MshrEntry>,
    capacity: usize,
    merge_capacity: usize,
    /// Recycled waiter lists, refilled via [`Self::recycle_waiters`] so
    /// the steady-state allocate/complete cycle performs no heap
    /// traffic.
    waiter_pool: Vec<Vec<Waiter>>,
}

impl MshrFile {
    /// `capacity` distinct lines, each merging up to `merge_capacity`
    /// requests (the first allocation counts as one).
    pub fn new(capacity: usize, merge_capacity: usize) -> Self {
        assert!(capacity > 0 && merge_capacity > 0);
        MshrFile {
            entries: LineMap::with_capacity(capacity),
            capacity,
            merge_capacity,
            waiter_pool: Vec::new(),
        }
    }

    /// Return a drained waiter list for reuse by a later allocation.
    #[inline]
    pub fn recycle_waiters(&mut self, waiters: Vec<Waiter>) {
        debug_assert!(waiters.is_empty(), "recycled list must be drained");
        self.waiter_pool.push(waiters);
    }

    /// A pooled (or fresh) waiter list.
    #[inline]
    fn take_waiters(&mut self) -> Vec<Waiter> {
        self.waiter_pool.pop().unwrap_or_default()
    }

    /// Entries currently in flight.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entry slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Whether `line` is already in flight.
    #[inline]
    pub fn contains(&self, line: Addr) -> bool {
        self.entries.contains(line)
    }

    /// Whether a demand miss to `line` would merge into an existing
    /// entry (the entry exists and has a free merge slot). Side-effect
    /// free twin of the merge arm of [`Self::demand_miss`], used by the
    /// fast-forward progress probe.
    #[inline]
    pub fn can_merge(&self, line: Addr) -> bool {
        self.entries
            .get(line)
            .is_some_and(|e| e.waiters.len() < self.merge_capacity)
    }

    /// Track a demand miss for `line`, registering `waiter`.
    pub fn demand_miss(&mut self, line: Addr, waiter: Waiter) -> MshrOutcome {
        if let Some(e) = self.entries.get_mut(line) {
            if e.waiters.len() >= self.merge_capacity {
                return MshrOutcome::ReservationFail;
            }
            let first_demand_on_prefetch = e.prefetch_origin && !e.demand_joined;
            e.waiters.push(waiter);
            e.demand_joined = true;
            return MshrOutcome::Merged {
                hit_inflight_prefetch: first_demand_on_prefetch,
            };
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::ReservationFail;
        }
        let mut waiters = self.take_waiters();
        waiters.push(waiter);
        self.entries.insert(
            line,
            MshrEntry {
                line,
                prefetch_origin: false,
                waiters,
                prefetch: None,
                demand_joined: true,
            },
        );
        MshrOutcome::Allocated
    }

    /// Track a prefetch miss for `line`. `reserve` entry slots are kept
    /// free for demand misses; a prefetch that cannot allocate is simply
    /// dropped by the caller (prefetches are best-effort).
    pub fn prefetch_miss(&mut self, line: Addr, tag: PrefetchTag, reserve: usize) -> MshrOutcome {
        if let Some(e) = self.entries.get_mut(line) {
            // A prefetch to a line already in flight adds nothing.
            if e.prefetch.is_none() {
                e.prefetch = Some(tag);
            }
            return MshrOutcome::Merged {
                hit_inflight_prefetch: false,
            };
        }
        if self.free() <= reserve {
            return MshrOutcome::ReservationFail;
        }
        let waiters = self.take_waiters();
        self.entries.insert(
            line,
            MshrEntry {
                line,
                prefetch_origin: true,
                waiters,
                prefetch: Some(tag),
                demand_joined: false,
            },
        );
        MshrOutcome::Allocated
    }

    /// Remove and return the entry for a filled line. Panics if the fill
    /// does not match an in-flight entry (protocol error).
    pub fn complete(&mut self, line: Addr) -> MshrEntry {
        self.entries
            .remove(line)
            .expect("fill for line with no MSHR entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> Waiter {
        Waiter { warp: i }
    }

    fn tag() -> PrefetchTag {
        PrefetchTag {
            target_warp: Some(3),
            pc: 8,
            issue_cycle: 100,
        }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(2, 4);
        assert_eq!(m.demand_miss(0x100, w(0)), MshrOutcome::Allocated);
        assert_eq!(
            m.demand_miss(0x100, w(1)),
            MshrOutcome::Merged {
                hit_inflight_prefetch: false
            }
        );
        assert_eq!(m.len(), 1);
        let e = m.complete(0x100);
        assert_eq!(e.waiters.len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_exhaustion_fails() {
        let mut m = MshrFile::new(2, 4);
        assert_eq!(m.demand_miss(0x100, w(0)), MshrOutcome::Allocated);
        assert_eq!(m.demand_miss(0x200, w(0)), MshrOutcome::Allocated);
        assert_eq!(m.demand_miss(0x300, w(0)), MshrOutcome::ReservationFail);
    }

    #[test]
    fn merge_capacity_exhaustion_fails() {
        let mut m = MshrFile::new(2, 2);
        assert_eq!(m.demand_miss(0x100, w(0)), MshrOutcome::Allocated);
        assert_eq!(
            m.demand_miss(0x100, w(1)),
            MshrOutcome::Merged {
                hit_inflight_prefetch: false
            }
        );
        assert_eq!(m.demand_miss(0x100, w(2)), MshrOutcome::ReservationFail);
    }

    #[test]
    fn demand_joining_prefetch_is_flagged_once() {
        let mut m = MshrFile::new(4, 4);
        assert_eq!(m.prefetch_miss(0x100, tag(), 0), MshrOutcome::Allocated);
        assert_eq!(
            m.demand_miss(0x100, w(0)),
            MshrOutcome::Merged {
                hit_inflight_prefetch: true
            }
        );
        assert_eq!(
            m.demand_miss(0x100, w(1)),
            MshrOutcome::Merged {
                hit_inflight_prefetch: false
            }
        );
        let e = m.complete(0x100);
        assert!(e.prefetch_origin);
        assert!(e.demand_joined);
        assert_eq!(e.prefetch.unwrap().target_warp, Some(3));
    }

    #[test]
    fn prefetch_respects_reserve() {
        let mut m = MshrFile::new(3, 4);
        assert_eq!(m.prefetch_miss(0x100, tag(), 2), MshrOutcome::Allocated);
        // free() == 2 now, equal to the reserve → refuse.
        assert_eq!(
            m.prefetch_miss(0x200, tag(), 2),
            MshrOutcome::ReservationFail
        );
        // Demand may still allocate.
        assert_eq!(m.demand_miss(0x200, w(0)), MshrOutcome::Allocated);
    }

    #[test]
    fn prefetch_merge_into_demand_entry_keeps_origin() {
        let mut m = MshrFile::new(4, 4);
        assert_eq!(m.demand_miss(0x100, w(0)), MshrOutcome::Allocated);
        assert_eq!(
            m.prefetch_miss(0x100, tag(), 0),
            MshrOutcome::Merged {
                hit_inflight_prefetch: false
            }
        );
        let e = m.complete(0x100);
        assert!(!e.prefetch_origin, "origin stays demand");
    }

    #[test]
    fn can_merge_mirrors_demand_miss_merge_arm() {
        let mut m = MshrFile::new(2, 2);
        assert!(!m.can_merge(0x100), "absent line never merges");
        assert_eq!(m.demand_miss(0x100, w(0)), MshrOutcome::Allocated);
        assert!(m.can_merge(0x100));
        assert_eq!(
            m.demand_miss(0x100, w(1)),
            MshrOutcome::Merged {
                hit_inflight_prefetch: false
            }
        );
        assert!(!m.can_merge(0x100), "merge capacity exhausted");
        assert_eq!(m.demand_miss(0x100, w(2)), MshrOutcome::ReservationFail);
    }

    #[test]
    #[should_panic(expected = "no MSHR entry")]
    fn completing_unknown_line_panics() {
        let mut m = MshrFile::new(2, 2);
        let _ = m.complete(0xdead);
    }
}
