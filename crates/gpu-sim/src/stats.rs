//! Simulation statistics.
//!
//! Every counter needed by the paper's evaluation figures is collected
//! here: IPC (Fig. 10/11), prefetch coverage/accuracy (Fig. 12), request
//! and DRAM read traffic (Fig. 13), early-prefetch ratio and
//! prefetch-to-demand distance (Fig. 14), and the activity counts the
//! energy model consumes (Fig. 15).

use crate::port::PortSnapshot;

/// Per-subsystem port/link occupancy and backpressure report for one
/// run: ring high-water marks, credit-stall counts, and growth-valve
/// activations, aggregated per subsystem by [`crate::gpu::Gpu::link_report`].
///
/// Deliberately **not** part of [`Stats`] and exempt from the
/// bit-identity contract: event-horizon fast-forward elides the cycles a
/// stalled producer would have spent retrying, so credit-stall counts
/// legitimately differ between the naive and fast engines even though
/// every architectural statistic matches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Demand request network (SM → partition crossbar links).
    pub req_net: PortSnapshot,
    /// Prefetch request network (low-priority virtual channel).
    pub pf_req_net: PortSnapshot,
    /// Demand reply network (partition → SM).
    pub reply_net: PortSnapshot,
    /// Prefetch reply network.
    pub pf_reply_net: PortSnapshot,
    /// All SM-side ports: memory queue, prefetch queue, outbound
    /// injection queues, L1 hit pipe.
    pub sm_ports: PortSnapshot,
    /// All partition-side ports: input queues, L2 hit pipe, reply
    /// queues, writeback queue.
    pub partition_ports: PortSnapshot,
    /// DRAM channel FR-FCFS request queues.
    pub dram_queues: PortSnapshot,
    /// Fused-injection staging rings (phase-1 → phase-2 hand-off).
    pub staging: PortSnapshot,
}

impl LinkReport {
    /// Fold every subsystem into one summary: max of high-water marks,
    /// sums of credit stalls and growth-valve activations.
    pub fn total(&self) -> PortSnapshot {
        let mut t = self.req_net;
        t.absorb(self.pf_req_net);
        t.absorb(self.reply_net);
        t.absorb(self.pf_reply_net);
        t.absorb(self.sm_ports);
        t.absorb(self.partition_ports);
        t.absorb(self.dram_queues);
        t.absorb(self.staging);
        t
    }
}

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Core cycles simulated until kernel completion.
    pub cycles: u64,
    /// Warp instructions issued (the IPC numerator, as in GPGPU-Sim).
    pub warp_instructions: u64,
    /// Cycles in which an SM had at least one resident warp but could
    /// issue nothing (all warps blocked on memory / latency).
    pub stall_cycles: u64,
    /// Cycles in which at least one warp waited on outstanding loads.
    pub mem_wait_cycles: u64,

    // --- L1 data cache ---
    /// Demand (load) line requests presented to L1D.
    pub l1d_demand_accesses: u64,
    /// Demand L1D hits.
    pub l1d_demand_hits: u64,
    /// Demand L1D misses.
    pub l1d_demand_misses: u64,
    /// Demand misses merged into an existing MSHR entry.
    pub l1d_mshr_merges: u64,
    /// Cycles a memory instruction was replayed because the MSHR or miss
    /// queue was full (the bursty-miss congestion the paper describes).
    pub l1d_reservation_fails: u64,
    /// Store line requests (write-through traffic).
    pub store_accesses: u64,

    // --- prefetch ---
    /// Prefetch line requests issued into L1D.
    pub prefetch_issued: u64,
    /// Prefetch requests dropped before issue (duplicate in cache/MSHR,
    /// queue overflow, or throttled).
    pub prefetch_dropped: u64,
    /// Prefetched lines later consumed by a demand access while still
    /// resident (useful prefetches; accuracy numerator).
    pub prefetch_useful: u64,
    /// Demand misses that merged into an in-flight prefetch (late but
    /// partially useful prefetches).
    pub prefetch_late: u64,
    /// Prefetched lines evicted before any demand touched them
    /// (early/useless prefetches; Fig. 14a numerator).
    pub prefetch_early_evicted: u64,
    /// Prefetched lines still resident but never consumed at kernel end.
    pub prefetch_unused_resident: u64,
    /// Sum of (demand cycle − prefetch issue cycle) over useful
    /// prefetches, for the Fig. 14b mean distance.
    pub prefetch_distance_sum: u64,
    /// Count of useful prefetches contributing to the distance sum.
    pub prefetch_distance_count: u64,
    /// Prefetcher metadata-table accesses (energy model input).
    pub prefetch_table_accesses: u64,
    /// Address verifications that disagreed with the demand address
    /// (CAP misprediction-counter increments).
    pub prefetch_mispredicts: u64,
    /// Eager warp wake-ups triggered by prefetch fills.
    pub prefetch_wakeups: u64,

    // --- interconnect / L2 / DRAM ---
    /// Requests sent from SMs to memory partitions (Fig. 13a).
    pub icnt_requests: u64,
    /// Replies sent from partitions back to SMs.
    pub icnt_replies: u64,
    /// Cycles a request stalled at injection because an interconnect
    /// queue was full.
    pub icnt_stalls: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (sent to DRAM).
    pub l2_misses: u64,
    /// Lines read from DRAM (Fig. 13b).
    pub dram_reads: u64,
    /// Lines written to DRAM.
    pub dram_writes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (activations).
    pub dram_row_misses: u64,
    /// Cycles an L2 miss waited because the FR-FCFS queue was full.
    pub dram_queue_stalls: u64,

    // --- CTA bookkeeping ---
    /// CTAs launched.
    pub ctas_launched: u64,
    /// CTAs completed.
    pub ctas_completed: u64,
}

impl Stats {
    /// Instructions per cycle across the whole GPU.
    #[inline]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// Prefetch coverage (paper §VI-C): issued prefetch requests over
    /// total demand fetch requests.
    #[inline]
    pub fn coverage(&self) -> f64 {
        if self.l1d_demand_accesses == 0 {
            0.0
        } else {
            self.prefetch_issued as f64 / self.l1d_demand_accesses as f64
        }
    }

    /// Prefetch accuracy (paper §VI-C): issued prefetches actually
    /// consumed by demand requests. Late merges count as consumed — the
    /// address was correct, only timing was short.
    #[inline]
    pub fn accuracy(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            (self.prefetch_useful + self.prefetch_late) as f64 / self.prefetch_issued as f64
        }
    }

    /// Fraction of prefetched data evicted before use (Fig. 14a).
    #[inline]
    pub fn early_prefetch_ratio(&self) -> f64 {
        let fills =
            self.prefetch_useful + self.prefetch_early_evicted + self.prefetch_unused_resident;
        if fills == 0 {
            0.0
        } else {
            self.prefetch_early_evicted as f64 / fills as f64
        }
    }

    /// Mean prefetch-to-demand distance in cycles over timely prefetches
    /// (Fig. 14b).
    #[inline]
    pub fn mean_prefetch_distance(&self) -> f64 {
        if self.prefetch_distance_count == 0 {
            0.0
        } else {
            self.prefetch_distance_sum as f64 / self.prefetch_distance_count as f64
        }
    }

    /// L1D demand miss rate.
    #[inline]
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_demand_accesses == 0 {
            0.0
        } else {
            self.l1d_demand_misses as f64 / self.l1d_demand_accesses as f64
        }
    }

    /// Fraction of cycles the GPU could not issue despite resident work.
    #[inline]
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Merge per-SM stats into a GPU total (cycle counters are maxed,
    /// event counters summed).
    pub fn absorb(&mut self, other: &Stats) {
        macro_rules! add {
            ($($f:ident),* $(,)?) => { $( self.$f += other.$f; )* };
        }
        add!(
            warp_instructions,
            stall_cycles,
            mem_wait_cycles,
            l1d_demand_accesses,
            l1d_demand_hits,
            l1d_demand_misses,
            l1d_mshr_merges,
            l1d_reservation_fails,
            store_accesses,
            prefetch_issued,
            prefetch_dropped,
            prefetch_useful,
            prefetch_late,
            prefetch_early_evicted,
            prefetch_unused_resident,
            prefetch_distance_sum,
            prefetch_distance_count,
            prefetch_table_accesses,
            prefetch_mispredicts,
            prefetch_wakeups,
            icnt_requests,
            icnt_replies,
            icnt_stalls,
            l2_accesses,
            l2_hits,
            l2_misses,
            dram_reads,
            dram_writes,
            dram_row_hits,
            dram_row_misses,
            dram_queue_stalls,
            ctas_launched,
            ctas_completed,
        );
        self.cycles = self.cycles.max(other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Stats::default().ipc(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let s = Stats {
            cycles: 1000,
            warp_instructions: 800,
            l1d_demand_accesses: 200,
            l1d_demand_misses: 50,
            prefetch_issued: 40,
            prefetch_useful: 30,
            prefetch_late: 5,
            prefetch_early_evicted: 2,
            prefetch_unused_resident: 3,
            prefetch_distance_sum: 3000,
            prefetch_distance_count: 30,
            stall_cycles: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.coverage() - 0.2).abs() < 1e-12);
        assert!((s.accuracy() - 35.0 / 40.0).abs() < 1e-12);
        assert!((s.early_prefetch_ratio() - 2.0 / 35.0).abs() < 1e-12);
        assert!((s.mean_prefetch_distance() - 100.0).abs() < 1e-12);
        assert!((s.l1d_miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_events_and_maxes_cycles() {
        let mut a = Stats {
            cycles: 100,
            warp_instructions: 10,
            ..Default::default()
        };
        let b = Stats {
            cycles: 80,
            warp_instructions: 20,
            dram_reads: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.warp_instructions, 30);
        assert_eq!(a.dram_reads, 5);
    }

    #[test]
    fn accuracy_counts_late_as_consumed() {
        let s = Stats {
            prefetch_issued: 10,
            prefetch_late: 10,
            ..Default::default()
        };
        assert!((s.accuracy() - 1.0).abs() < 1e-12);
    }
}
