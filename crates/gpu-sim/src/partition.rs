//! Memory partition: one L2 bank plus its binding to a DRAM channel.
//!
//! Requests arrive from the interconnect, look up the L2 bank, and on a
//! miss enter the partition's MSHRs and the (possibly shared) DRAM
//! channel's FR-FCFS queue. Fills flow back as per-SM replies. Stores are
//! write-through to DRAM (no reply), matching the simulator's L1
//! write-evict / no-allocate policy.
//!
//! Every queue in the partition is a [`Port`] from the unified port
//! layer, preallocated at construction from its architectural bound:
//! the input classes from the interconnect ejection depth, the hit pipe
//! from the L2 hit latency (≤ one hit enqueued per cycle, each resident
//! `hit_latency` cycles), and the reply queues from the MSHR capacity
//! (≤ `mshr_entries × mshr_merge` outstanding waiters plus a full hit
//! pipe draining on top). The write-back queue has no architectural
//! bound (eviction bursts under DRAM saturation) and rides the ring's
//! counted growth valve instead.

use crate::cache::{Cache, Lookup};
use crate::config::GpuConfig;
use crate::dram::{DramChannel, DramRequest};
use crate::interconnect::{MemReply, MemRequest};
use crate::linemap::LineMap;
use crate::mshr::{MshrFile, MshrOutcome, Waiter};
use crate::port::{Port, PortSnapshot};
use crate::types::{AccessKind, Cycle};

/// Per-partition statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct PartitionStats {
    /// L2 lookups (loads only).
    pub accesses: u64,
    /// L2 hits.
    pub hits: u64,
    /// L2 misses sent toward DRAM.
    pub misses: u64,
    /// Cycles the head request stalled on a full MSHR file or DRAM queue.
    pub dram_queue_stalls: u64,
}

/// An L2-side waiter: which SM asked for the line (one reply each).
#[derive(Debug, Clone, Copy)]
struct L2Waiter {
    sm: usize,
    is_prefetch: bool,
}

/// One memory partition.
#[derive(Debug)]
pub struct MemoryPartition {
    /// Partition index.
    pub id: usize,
    l2: Cache,
    mshr: MshrFile,
    /// Waiters per in-flight line, parallel to the MSHR (MSHR stores
    /// warp-level waiters for L1; at L2 we need SM-level reply routing,
    /// so we keep our own list keyed through the MSHR entry order).
    waiters: LineMap<Vec<L2Waiter>>,
    /// Recycled waiter lists: a fill returns its list here so the steady
    /// state allocates nothing.
    waiter_pool: Vec<Vec<L2Waiter>>,
    /// Demand/store requests accepted from the interconnect.
    in_demand: Port<MemRequest>,
    /// Prefetch requests accepted from the interconnect (serviced only
    /// when no demand is waiting — lower priority, §V).
    in_prefetch: Port<MemRequest>,
    /// Hit replies delayed by the L2 hit latency.
    hit_pipe: Port<(Cycle, MemReply)>,
    /// Demand replies ready to inject into the reply network.
    pub reply_out: Port<MemReply>,
    /// Prefetch replies (low-priority virtual channel).
    pub pf_reply_out: Port<MemReply>,
    /// Dirty lines evicted from L2, awaiting a DRAM write slot.
    wb_q: Port<u64>,
    /// Memoized stalled input head: `Some(line)` when the head load
    /// missed L2 and could neither merge nor allocate. While the O(1)
    /// unblock re-checks stay false, `step` skips the L2 lookup and MSHR
    /// probe the replay would repeat (a stalled retry mutates nothing)
    /// and only advances the per-cycle stall counter — bit-identical.
    /// Cleared by any DRAM fill for this partition (which frees MSHR and
    /// merge capacity and fills L2) and by any accepted request (which
    /// can change the head across priority classes).
    stall_memo: Option<u64>,
    /// Stats.
    pub stats: PartitionStats,
    l2_latency: u32,
}

impl MemoryPartition {
    /// Build partition `id` per `cfg`, preallocating every queue from
    /// its architectural bound (see module docs for the formulas).
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        let reply_bound = cfg.l2.mshr_entries as usize * cfg.l2.mshr_merge as usize
            + cfg.l2.hit_latency as usize
            + 1;
        MemoryPartition {
            id,
            l2: Cache::new(cfg.l2),
            mshr: MshrFile::new(cfg.l2.mshr_entries as usize, cfg.l2.mshr_merge as usize),
            waiters: LineMap::with_capacity(cfg.l2.mshr_entries as usize),
            waiter_pool: Vec::new(),
            in_demand: Port::new(cfg.icnt_queue_depth),
            in_prefetch: Port::new(cfg.icnt_queue_depth),
            hit_pipe: Port::new(cfg.l2.hit_latency as usize + 1),
            reply_out: Port::new(reply_bound),
            pf_reply_out: Port::new(reply_bound),
            // Dirty evictions are produced at fill rate but drain only
            // when FR-FCFS grants the write a slot, so read-heavy
            // phases can starve the queue well past the DRAM depth
            // (FFT reaches ~5x it); 16x headroom keeps steady state
            // allocation-free, the counted growth valve covers the rest.
            wb_q: Port::new(cfg.dram_queue_entries * 16),
            stall_memo: None,
            stats: PartitionStats::default(),
            l2_latency: cfg.l2.hit_latency,
        }
    }

    /// Whether the partition can accept a request of `kind` this cycle
    /// (a credit is free on that class's input port). The two priority
    /// classes have independent input ports so backed-up prefetches
    /// cannot block demand acceptance.
    #[inline]
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        if kind.is_prefetch() {
            self.in_prefetch.credits() > 0
        } else {
            self.in_demand.credits() > 0
        }
    }

    /// Hand a request to the partition (from the interconnect ejection).
    pub fn accept(&mut self, _now: Cycle, req: MemRequest) {
        debug_assert!(self.can_accept(req.kind));
        self.stall_memo = None;
        if req.kind.is_prefetch() {
            self.in_prefetch.push(req);
        } else {
            self.in_demand.push(req);
        }
    }

    /// Register an SM-level waiter on an in-flight line, recycling list
    /// storage from completed fills.
    fn push_waiter(&mut self, line: u64, w: L2Waiter) {
        if let Some(ws) = self.waiters.get_mut(line) {
            ws.push(w);
        } else {
            let mut ws = self.waiter_pool.pop().unwrap_or_default();
            ws.push(w);
            self.waiters.insert(line, ws);
        }
    }

    fn pop_input(&mut self, from_demand: bool) {
        let q = if from_demand {
            &mut self.in_demand
        } else {
            &mut self.in_prefetch
        };
        q.pop();
    }

    /// Whether every queue in the partition is empty (drain check).
    pub fn idle(&self) -> bool {
        self.in_demand.is_empty()
            && self.in_prefetch.is_empty()
            && self.hit_pipe.is_empty()
            && self.reply_out.is_empty()
            && self.pf_reply_out.is_empty()
            && self.mshr.is_empty()
            && self.wb_q.is_empty()
    }

    /// The input request `step` would service this cycle (demand class
    /// first, mirroring the bank-port arbitration).
    fn input_head(&self) -> Option<&MemRequest> {
        self.in_demand.peek().or_else(|| self.in_prefetch.peek())
    }

    /// Whether a [`Self::step`] at `now` would change partition state
    /// (beyond the per-cycle stall counter, which the clock skip accounts
    /// analytically). DRAM completions are covered by the *channel's*
    /// progress probe, not here. Side-effect free: uses `Cache::probe`
    /// and `MshrFile::can_merge` instead of their mutating twins.
    pub fn can_progress(&self, now: Cycle, dram: &DramChannel) -> bool {
        if !self.reply_out.is_empty() || !self.pf_reply_out.is_empty() {
            return true; // the GPU drains replies into the networks
        }
        if self.hit_pipe.peek().is_some_and(|&(t, _)| t <= now) {
            return true;
        }
        if !self.wb_q.is_empty() && dram.can_accept() {
            return true;
        }
        let Some(req) = self.input_head() else {
            return false;
        };
        match req.kind {
            AccessKind::Store => true,
            AccessKind::DemandLoad | AccessKind::Prefetch => {
                self.l2.probe(req.line)
                    || self.mshr.can_merge(req.line)
                    || (!self.mshr.contains(req.line)
                        && dram.can_accept()
                        && self.mshr.free() > 0)
            }
        }
    }

    /// Earliest strictly-future local event: the next L2 hit maturing.
    /// Every other way this partition un-stalls (DRAM completion, DRAM
    /// queue space, MSHR release) is driven by channel progress, which
    /// the channel's own `next_event` covers.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.hit_pipe.peek().map(|&(t, _)| t).filter(|&t| t > now)
    }

    /// Account for `delta` skipped quiescent cycles: a stalled input
    /// head would have retried (and recorded a stall) once per cycle.
    pub fn account_skipped(&mut self, delta: u64) {
        if let Some(req) = self.input_head() {
            debug_assert!(
                req.kind != AccessKind::Store,
                "a store head always progresses; skip window impossible"
            );
            self.stats.dram_queue_stalls += delta;
        }
    }

    /// Occupancy/stall counters aggregated over every port in this
    /// partition. Host-side reporting only — not part of the
    /// bit-identity contract.
    pub fn port_snapshot(&self) -> PortSnapshot {
        let mut s = self.in_demand.snapshot();
        s.absorb(self.in_prefetch.snapshot());
        s.absorb(self.hit_pipe.snapshot());
        s.absorb(self.reply_out.snapshot());
        s.absorb(self.pf_reply_out.snapshot());
        s.absorb(self.wb_q.snapshot());
        s
    }

    /// Service up to one input request, drain the hit pipe, and process
    /// DRAM completions destined for this partition.
    pub fn step(&mut self, now: Cycle, dram: &mut DramChannel, dram_done: &[DramRequest]) {
        // DRAM fills for this partition → L2 fill + replies.
        for req in dram_done.iter().filter(|r| r.partition == self.id) {
            debug_assert!(!req.is_write);
            self.stall_memo = None;
            let mut entry = self.mshr.complete(req.line);
            debug_assert!(entry.line == req.line);
            entry.waiters.clear();
            self.mshr.recycle_waiters(entry.waiters);
            let out = self.l2.fill(req.line, None);
            if let Some(victim) = out.writeback {
                self.wb_q.push(victim);
            }
            if let Some(mut ws) = self.waiters.remove(req.line) {
                for w in ws.drain(..) {
                    let reply = MemReply {
                        line: req.line,
                        sm: w.sm,
                        is_prefetch: w.is_prefetch,
                    };
                    if w.is_prefetch {
                        self.pf_reply_out.push(reply);
                    } else {
                        self.reply_out.push(reply);
                    }
                }
                self.waiter_pool.push(ws);
            }
        }

        // Drain pending write-backs opportunistically (lowest priority
        // at the DRAM queue, batched into row hits by FR-FCFS).
        while !self.wb_q.is_empty() && dram.can_accept() {
            let line = self.wb_q.pop().expect("checked non-empty");
            dram.push(DramRequest {
                line,
                is_write: true,
                is_prefetch: false,
                partition: self.id,
                arrival: now,
            });
        }

        // Matured L2 hits become replies.
        while let Some(&(t, r)) = self.hit_pipe.peek() {
            if t > now {
                break;
            }
            self.hit_pipe.pop();
            if r.is_prefetch {
                self.pf_reply_out.push(r);
            } else {
                self.reply_out.push(r);
            }
        }

        // One new request per cycle (L2 bank port); demands first.
        let from_demand = !self.in_demand.is_empty();
        let queue = if from_demand {
            &self.in_demand
        } else {
            &self.in_prefetch
        };
        let Some(&req) = queue.peek() else {
            return;
        };
        match req.kind {
            AccessKind::Store => {
                // Write-back, write-allocate L2: stores coalesce in the
                // bank; dirty lines reach DRAM only on eviction.
                self.pop_input(from_demand);
                if !self.l2.mark_dirty(req.line) {
                    let out = self.l2.fill_dirty(req.line);
                    if let Some(victim) = out.writeback {
                        self.wb_q.push(victim);
                    }
                }
            }
            AccessKind::DemandLoad | AccessKind::Prefetch => {
                // Memoized stall: the head already missed L2 (no fill
                // since — a fill clears the memo). It stays stalled while
                // its entry exists with a full merge list (merge room
                // frees only on a fill) or, unallocated, while the DRAM
                // queue or MSHR file stays full — all O(1) re-checks.
                if self.stall_memo == Some(req.line) {
                    if !dram.can_accept()
                        || self.mshr.free() == 0
                        || self.mshr.contains(req.line)
                    {
                        self.stats.dram_queue_stalls += 1;
                        return;
                    }
                    self.stall_memo = None;
                }
                match self.l2.access(req.line) {
                    Lookup::Hit { .. } => {
                        self.stats.accesses += 1;
                        self.stats.hits += 1;
                        self.pop_input(from_demand);
                        self.hit_pipe.push((
                            now + self.l2_latency as Cycle,
                            MemReply {
                                line: req.line,
                                sm: req.sm,
                                is_prefetch: req.kind.is_prefetch(),
                            },
                        ));
                    }
                    Lookup::Miss => {
                        // Merge or allocate; allocation also needs DRAM
                        // queue space or we stall the input head.
                        if self.mshr.contains(req.line) {
                            let out = self.mshr.demand_miss(req.line, Waiter { warp: 0 });
                            match out {
                                MshrOutcome::Merged { .. } => {
                                    self.stats.accesses += 1;
                                    self.stats.misses += 1;
                                    self.pop_input(from_demand);
                                    self.push_waiter(
                                        req.line,
                                        L2Waiter {
                                            sm: req.sm,
                                            is_prefetch: req.kind.is_prefetch(),
                                        },
                                    );
                                }
                                MshrOutcome::ReservationFail => {
                                    self.stats.dram_queue_stalls += 1;
                                    // Merge capacity exhausted: retry.
                                    self.stall_memo = Some(req.line);
                                }
                                MshrOutcome::Allocated => {
                                    unreachable!("contains() implies merge")
                                }
                            }
                        } else {
                            if !dram.can_accept() || self.mshr.free() == 0 {
                                self.stats.dram_queue_stalls += 1;
                                self.stall_memo = Some(req.line);
                                return;
                            }
                            let out = self.mshr.demand_miss(req.line, Waiter { warp: 0 });
                            debug_assert_eq!(out, MshrOutcome::Allocated);
                            self.stats.accesses += 1;
                            self.stats.misses += 1;
                            self.pop_input(from_demand);
                            self.push_waiter(
                                req.line,
                                L2Waiter {
                                    sm: req.sm,
                                    is_prefetch: req.kind.is_prefetch(),
                                },
                            );
                            dram.push(DramRequest {
                                line: req.line,
                                is_write: false,
                                is_prefetch: req.kind.is_prefetch(),
                                partition: self.id,
                                arrival: now,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryPartition, DramChannel) {
        let cfg = GpuConfig::fermi_gtx480();
        (MemoryPartition::new(0, &cfg), DramChannel::new(&cfg))
    }

    fn load(line: u64, sm: usize) -> MemRequest {
        MemRequest {
            line,
            kind: AccessKind::DemandLoad,
            sm,
        }
    }

    fn run(
        p: &mut MemoryPartition,
        d: &mut DramChannel,
        from: Cycle,
        cycles: u64,
    ) -> Vec<MemReply> {
        let mut replies = Vec::new();
        let mut done = Vec::new();
        for now in from..from + cycles {
            done.clear();
            d.step(now, &mut done);
            p.step(now, d, &done);
            replies.extend(p.reply_out.drain());
            replies.extend(p.pf_reply_out.drain());
        }
        replies
    }

    #[test]
    fn miss_goes_to_dram_and_replies_once() {
        let (mut p, mut d) = setup();
        p.accept(0, load(0x1000, 3));
        let replies = run(&mut p, &mut d, 0, 500);
        assert_eq!(replies.len(), 1);
        assert_eq!(
            replies[0],
            MemReply {
                line: 0x1000,
                sm: 3,
                is_prefetch: false
            }
        );
        assert_eq!(p.stats.misses, 1);
        assert_eq!(d.reads, 1);
        assert!(p.idle());
    }

    #[test]
    fn second_access_hits_in_l2() {
        let (mut p, mut d) = setup();
        p.accept(0, load(0x1000, 0));
        let _ = run(&mut p, &mut d, 0, 500);
        p.accept(500, load(0x1000, 1));
        let replies = run(&mut p, &mut d, 500, 100);
        assert_eq!(replies.len(), 1);
        assert_eq!(p.stats.hits, 1);
        assert_eq!(d.reads, 1, "no extra DRAM read on L2 hit");
    }

    #[test]
    fn concurrent_misses_to_same_line_merge() {
        let (mut p, mut d) = setup();
        p.accept(0, load(0x2000, 0));
        p.accept(0, load(0x2000, 1));
        let replies = run(&mut p, &mut d, 0, 500);
        assert_eq!(replies.len(), 2, "each SM gets its reply");
        assert_eq!(d.reads, 1, "one DRAM read services both");
    }

    #[test]
    fn store_allocates_dirty_without_reply_or_immediate_write() {
        let (mut p, mut d) = setup();
        p.accept(
            0,
            MemRequest {
                line: 0x3000,
                kind: AccessKind::Store,
                sm: 0,
            },
        );
        let replies = run(&mut p, &mut d, 0, 500);
        assert!(replies.is_empty());
        assert_eq!(d.writes, 0, "write-back: DRAM write deferred to eviction");
        // A subsequent load of the stored line hits in L2.
        p.accept(500, load(0x3000, 0));
        let replies = run(&mut p, &mut d, 500, 200);
        assert_eq!(replies.len(), 1);
        assert_eq!(p.stats.hits, 1);
    }

    #[test]
    fn dirty_eviction_reaches_dram() {
        let (mut p, mut d) = setup();
        // Dirty one line, then stream more distinct lines than the L2
        // holds (64 KiB / 128 B = 512 lines): the dirty victim must be
        // written back regardless of the hashed set mapping.
        p.accept(
            0,
            MemRequest {
                line: 0x0,
                kind: AccessKind::Store,
                sm: 0,
            },
        );
        let _ = run(&mut p, &mut d, 0, 50);
        let mut t = 50;
        for i in 1..=600u64 {
            p.accept(t, load(i * 128, 0));
            let _ = run(&mut p, &mut d, t, 300);
            t += 300;
        }
        assert!(d.writes >= 1, "evicted dirty line written to DRAM");
    }

    #[test]
    fn input_backpressure_is_visible() {
        let (mut p, _) = setup();
        let depth = GpuConfig::fermi_gtx480().icnt_queue_depth;
        for i in 0..depth {
            assert!(p.can_accept(AccessKind::DemandLoad));
            p.accept(0, load(i as u64 * 128, 0));
        }
        assert!(!p.can_accept(AccessKind::DemandLoad));
        // The prefetch class has its own queue: still accepting.
        assert!(p.can_accept(AccessKind::Prefetch));
    }

    #[test]
    fn dram_queue_full_stalls_head() {
        let (mut p, mut d) = setup();
        // Saturate the DRAM queue directly.
        for i in 0..16 {
            d.push(DramRequest {
                line: i * 4096,
                is_write: false,
                is_prefetch: false,
                partition: 9,
                arrival: 0,
            });
        }
        p.accept(0, load(0x8000, 0));
        // One step with a full queue: the head stalls and records it.
        p.step(0, &mut d, &[]);
        assert!(p.stats.dram_queue_stalls > 0);
        assert_eq!(p.stats.misses, 0);
    }
}
