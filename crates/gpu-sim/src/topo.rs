//! Host CPU topology discovery and worker pinning.
//!
//! The parallel cycle engine ([`crate::pool::ShardPool`]) wants to know
//! three things about the machine it landed on: how many logical CPUs
//! are usable, whether those CPUs share physical cores (SMT), and which
//! logical CPU a given worker should be pinned to so that shards stop
//! migrating between caches mid-simulation. Everything here is derived
//! from `/proc/cpuinfo` and `/sys/devices/system/cpu` with no external
//! crates, mirroring the cpu-detect idiom used by Linux scheduler
//! projects; on non-Linux (or non-x86_64) targets every operation
//! degrades to a harmless no-op so the simulator stays portable.
//!
//! Pinning is best-effort and opt-out: setting `GPU_SIM_NO_PIN` (to
//! anything but `0`/`off`) disables the `sched_setaffinity` calls while
//! leaving topology *detection* intact, so bench headers still record
//! the host shape.

use std::sync::OnceLock;

/// One logical CPU as seen in `/proc/cpuinfo` / sysfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalCpu {
    /// Logical CPU index (the `processor` field; what `sched_setaffinity`
    /// masks address).
    pub id: usize,
    /// Physical package (`physical id`), 0 when the kernel does not
    /// report one.
    pub package: usize,
    /// Core index within the package (`core id`), defaulting to the
    /// logical index so distinct CPUs never collapse spuriously.
    pub core: usize,
}

/// A snapshot of the host CPU layout, taken once per process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostTopology {
    /// Logical CPUs visible to this process, ascending by id.
    pub cpus: Vec<LogicalCpu>,
    /// Distinct physical cores across all packages.
    pub physical_cores: usize,
    /// Whether at least one physical core hosts two or more logical
    /// CPUs (hyper-threading / SMT active).
    pub smt: bool,
    /// The `model name` string from `/proc/cpuinfo`, empty when
    /// unavailable.
    pub model: String,
}

impl HostTopology {
    /// Number of logical CPUs.
    pub fn logical_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Whether running `workers` busy threads oversubscribes the host
    /// (more runnable spinners than logical CPUs).
    pub fn oversubscribed(&self, workers: usize) -> bool {
        workers > self.logical_cpus().max(1)
    }

    /// Whether `workers` busy threads exceed the *physical* core count,
    /// i.e. at least two of them must share an SMT pair even when the
    /// logical CPU count is sufficient.
    pub fn smt_sharing(&self, workers: usize) -> bool {
        workers > self.physical_cores.max(1)
    }

    /// Pick a logical CPU for worker `i`, spreading workers one per
    /// physical core first (lowest logical sibling of each core) and
    /// only then reusing SMT siblings. Deterministic for a given
    /// topology. Returns `None` when no CPUs were detected.
    pub fn pin_cpu_for(&self, i: usize) -> Option<usize> {
        if self.cpus.is_empty() {
            return None;
        }
        // Group logical CPUs by (package, core), keeping ascending id
        // order within each group; then lay them out breadth-first:
        // first sibling of every core, second sibling of every core, ...
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for cpu in &self.cpus {
            let key = (cpu.package, cpu.core);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(cpu.id),
                None => groups.push((key, vec![cpu.id])),
            }
        }
        let mut order = Vec::with_capacity(self.cpus.len());
        let mut depth = 0;
        while order.len() < self.cpus.len() {
            for (_, ids) in &groups {
                if let Some(&id) = ids.get(depth) {
                    order.push(id);
                }
            }
            depth += 1;
        }
        Some(order[i % order.len()])
    }
}

/// Parse the `/proc/cpuinfo` content in `text`; exposed (crate-private)
/// for unit tests with canned fixtures.
fn parse_cpuinfo(text: &str) -> (Vec<LogicalCpu>, String) {
    let mut cpus = Vec::new();
    let mut model = String::new();
    let mut cur: Option<LogicalCpu> = None;
    for line in text.lines() {
        let mut parts = line.splitn(2, ':');
        let key = parts.next().unwrap_or("").trim();
        let val = parts.next().unwrap_or("").trim();
        match key {
            "processor" => {
                if let Some(c) = cur.take() {
                    cpus.push(c);
                }
                if let Ok(id) = val.parse::<usize>() {
                    cur = Some(LogicalCpu {
                        id,
                        package: 0,
                        core: id,
                    });
                }
            }
            "physical id" => {
                if let (Some(c), Ok(v)) = (cur.as_mut(), val.parse::<usize>()) {
                    c.package = v;
                }
            }
            "core id" => {
                if let (Some(c), Ok(v)) = (cur.as_mut(), val.parse::<usize>()) {
                    c.core = v;
                }
            }
            "model name" if model.is_empty() => model = val.to_string(),
            _ => {}
        }
    }
    if let Some(c) = cur.take() {
        cpus.push(c);
    }
    cpus.sort_by_key(|c| c.id);
    (cpus, model)
}

/// Read `/sys/devices/system/cpu/cpuN/topology/{core_id,physical_package_id}`
/// to refine `cpus` in place; missing files leave the cpuinfo-derived
/// values untouched.
fn refine_from_sysfs(cpus: &mut [LogicalCpu]) {
    for cpu in cpus.iter_mut() {
        let base = format!("/sys/devices/system/cpu/cpu{}/topology", cpu.id);
        if let Some(core) = read_sys_usize(&format!("{base}/core_id")) {
            cpu.core = core;
        }
        if let Some(pkg) = read_sys_usize(&format!("{base}/physical_package_id")) {
            cpu.package = pkg;
        }
    }
}

fn read_sys_usize(path: &str) -> Option<usize> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

fn detect_topology() -> HostTopology {
    let text = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    let (mut cpus, model) = parse_cpuinfo(&text);
    if cpus.is_empty() {
        // Non-Linux or an empty procfs: synthesize a flat topology from
        // available_parallelism so callers always get something sane.
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cpus = (0..n)
            .map(|id| LogicalCpu {
                id,
                package: 0,
                core: id,
            })
            .collect();
    }
    refine_from_sysfs(&mut cpus);
    finish_topology(cpus, model)
}

/// Derive the summary fields from a CPU list (shared with tests).
fn finish_topology(cpus: Vec<LogicalCpu>, model: String) -> HostTopology {
    let mut cores: Vec<(usize, usize)> = cpus.iter().map(|c| (c.package, c.core)).collect();
    cores.sort_unstable();
    cores.dedup();
    let physical_cores = cores.len().max(1);
    let smt = cpus.len() > physical_cores;
    HostTopology {
        cpus,
        physical_cores,
        smt,
        model,
    }
}

/// The process-wide cached topology snapshot.
pub fn host_topology() -> &'static HostTopology {
    static TOPO: OnceLock<HostTopology> = OnceLock::new();
    TOPO.get_or_init(detect_topology)
}

/// Whether worker pinning is enabled for this process: true unless
/// `GPU_SIM_NO_PIN` is set to something other than `0`/`off`.
pub fn pinning_enabled() -> bool {
    match std::env::var("GPU_SIM_NO_PIN") {
        Ok(v) => matches!(v.as_str(), "" | "0" | "off"),
        Err(_) => true,
    }
}

/// Pin the *calling* thread to logical CPU `cpu`. Returns `true` when
/// the affinity call succeeded, `false` on failure or on targets
/// without an implementation. Never panics: pinning is purely a
/// performance hint and the simulator's results do not depend on it.
pub fn pin_current_thread(cpu: usize) -> bool {
    pin_impl(cpu)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_impl(cpu: usize) -> bool {
    // sched_setaffinity(0, sizeof(mask), &mask) via raw syscall: the
    // workspace carries no libc dependency and the calling convention
    // is stable kernel ABI. A 1024-bit mask covers every kernel config
    // in practice.
    const WORDS: usize = 16; // 16 * 64 = 1024 CPUs
    if cpu >= WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret, // __NR_sched_setaffinity
            in("rdi") 0i64,                 // pid 0 = calling thread
            in("rsi") (WORDS * 8) as i64,   // mask size in bytes
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_impl(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const XEON_2S_SMT: &str = "\
processor\t: 0\nphysical id\t: 0\ncore id\t: 0\nmodel name\t: Xeon X\n\n\
processor\t: 1\nphysical id\t: 0\ncore id\t: 1\nmodel name\t: Xeon X\n\n\
processor\t: 2\nphysical id\t: 0\ncore id\t: 0\nmodel name\t: Xeon X\n\n\
processor\t: 3\nphysical id\t: 0\ncore id\t: 1\nmodel name\t: Xeon X\n";

    #[test]
    fn parses_smt_pairs_and_model() {
        let (cpus, model) = parse_cpuinfo(XEON_2S_SMT);
        assert_eq!(model, "Xeon X");
        assert_eq!(cpus.len(), 4);
        let t = finish_topology(cpus, model);
        assert_eq!(t.physical_cores, 2);
        assert!(t.smt);
        assert!(!t.oversubscribed(4));
        assert!(t.oversubscribed(5));
        assert!(t.smt_sharing(3));
        assert!(!t.smt_sharing(2));
    }

    #[test]
    fn pin_order_spreads_cores_before_siblings() {
        let (cpus, model) = parse_cpuinfo(XEON_2S_SMT);
        let t = finish_topology(cpus, model);
        // Cores (0,0) -> cpus {0,2}, (0,1) -> cpus {1,3}; breadth-first
        // order is 0,1 (first siblings) then 2,3 (second siblings).
        assert_eq!(t.pin_cpu_for(0), Some(0));
        assert_eq!(t.pin_cpu_for(1), Some(1));
        assert_eq!(t.pin_cpu_for(2), Some(2));
        assert_eq!(t.pin_cpu_for(3), Some(3));
        assert_eq!(t.pin_cpu_for(4), Some(0)); // wraps
    }

    #[test]
    fn empty_cpuinfo_yields_flat_fallback() {
        let (cpus, model) = parse_cpuinfo("");
        assert!(cpus.is_empty());
        assert!(model.is_empty());
        // detect_topology's fallback path: synthesize and summarize.
        let t = finish_topology(
            (0..3)
                .map(|id| LogicalCpu {
                    id,
                    package: 0,
                    core: id,
                })
                .collect(),
            String::new(),
        );
        assert_eq!(t.physical_cores, 3);
        assert!(!t.smt);
        assert_eq!(t.pin_cpu_for(1), Some(1));
    }

    #[test]
    fn host_detection_is_sane_and_cached() {
        let t = host_topology();
        assert!(t.logical_cpus() >= 1);
        assert!(t.physical_cores >= 1);
        assert!(std::ptr::eq(t, host_topology()));
    }
}
