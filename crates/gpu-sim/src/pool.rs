//! A small persistent worker pool for deterministic intra-cycle
//! parallelism.
//!
//! The phase-split cycle engine ([`crate::gpu`]) runs two parallel
//! regions per simulated cycle, so pool dispatch must cost well under a
//! microsecond on the fast path. Threads are spawned once and jobs are
//! broadcast through an epoch counter: publishing a job is one release
//! store, and an idle worker picks it up with an acquire spin. Workers
//! that stay idle longer fall back from spinning to yielding to parking,
//! which keeps the pool correct (and non-pathological) on
//! oversubscribed or single-core hosts — there a yielded worker lets the
//! scheduler run whoever holds the next shard.
//!
//! Determinism is the caller's contract: a job is a pure function of the
//! worker index, each worker mutates only state it exclusively owns (its
//! *shard*), and [`ShardPool::run`] is a full barrier — it returns only
//! after every worker finished, with all their writes visible to the
//! caller (release/acquire on the completion counter).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased job pointer. Only valid for the duration of the
/// [`ShardPool::run`] call that published it (which blocks until every
/// worker is done with it).
type RawJob = *const (dyn Fn(usize) + Sync);

struct Shared {
    /// Total parties in a dispatch (helpers + the calling thread);
    /// the mid-phase barrier waits for exactly this many arrivals.
    width: usize,
    /// Spin iterations before falling back to yielding, and yields
    /// before parking. On a host with a hardware thread per worker,
    /// generous spinning keeps dispatch latency in the tens of
    /// nanoseconds; on an oversubscribed host a spinning worker only
    /// delays whoever holds the next shard, so both budgets collapse to
    /// near zero and the scheduler takes over immediately.
    spins: u32,
    yields: u32,
    /// Incremented (release) to publish the job in `job`.
    epoch: AtomicU64,
    /// The current job; written by `run` strictly before the epoch bump,
    /// read by workers strictly after observing it (acquire).
    job: UnsafeCell<Option<RawJob>>,
    /// Second-phase job for [`ShardPool::run2`]: `None` on a one-phase
    /// dispatch. Written/read under the same epoch protocol as `job`.
    job2: UnsafeCell<Option<RawJob>>,
    /// Workers that finished the current job.
    done: AtomicUsize,
    /// Sense-reversing mid-phase barrier for [`ShardPool::run2`]:
    /// arrivals on the count, generation flips to release waiters.
    barrier_count: AtomicUsize,
    barrier_gen: AtomicU64,
    /// Tells workers to exit.
    shutdown: AtomicBool,
    /// Number of workers currently parked on `sleep`.
    sleepers: AtomicUsize,
    /// Slow-path wakeup for parked workers.
    sleep: Mutex<()>,
    wake: Condvar,
}

// SAFETY: `job` is only written while no worker can read it (before the
// epoch release-store) and only read after the acquire-load of the new
// epoch; the raw pointer inside is valid for the whole `run` call.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// Default budgets when every worker can have its own hardware thread:
/// spinning covers back-to-back cycles (sub-µs gaps); yielding covers
/// transient scheduler noise; parking covers long serial stretches
/// (horizon jumps, end of run) without burning a core.
const SPINS: u32 = 4096;
const YIELDS: u32 = 64;

/// A persistent pool of `workers` helper threads plus the calling
/// thread. [`ShardPool::run`] executes one closure on every member
/// (worker indices `0..=workers`, index 0 being the caller) and returns
/// after all have finished.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Pool with `helpers` background threads (total parallelism
    /// `helpers + 1`: the thread calling [`Self::run`] participates as
    /// worker 0). No worker pinning and no topology probing — this
    /// constructor stays runnable under interpreters (miri) that cannot
    /// read procfs or issue affinity syscalls; the cycle engine uses
    /// [`Self::with_affinity`] instead.
    pub fn new(helpers: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let oversubscribed = helpers + 1 > cores;
        let (spins, yields) = if oversubscribed { (1, 2) } else { (SPINS, YIELDS) };
        Self::build(helpers, spins, yields, &[])
    }

    /// Pool with topology-refined spin budgets and optional worker
    /// pinning. Budgets come in three tiers from the detected host
    /// layout ([`crate::topo::host_topology`]): full spinning when every
    /// worker gets its own physical core, a reduced budget when workers
    /// must share SMT siblings (a spinning hyperthread steals issue
    /// slots from its sibling's real work), and near-zero when logical
    /// CPUs themselves are oversubscribed. When `pin` is true (and
    /// `GPU_SIM_NO_PIN` is not set), each *helper* thread is pinned to
    /// its own logical CPU, spread one per physical core before reusing
    /// SMT siblings; worker 0 is the calling thread and is never pinned
    /// (the caller may be a test harness thread with its own affinity).
    pub fn with_affinity(helpers: usize, pin: bool) -> Self {
        let topo = crate::topo::host_topology();
        let workers = helpers + 1;
        let (spins, yields) = if topo.oversubscribed(workers) {
            (1, 2)
        } else if topo.smt_sharing(workers) {
            (SPINS / 8, YIELDS / 4)
        } else {
            (SPINS, YIELDS)
        };
        let pin_cpus: Vec<Option<usize>> = (0..helpers)
            .map(|i| {
                if pin && crate::topo::pinning_enabled() {
                    // Worker index i+1; worker 0 (caller) stays unpinned
                    // but still owns slot 0 of the breadth-first layout,
                    // so helpers start at layout position 1.
                    topo.pin_cpu_for(i + 1)
                } else {
                    None
                }
            })
            .collect();
        Self::build(helpers, spins, yields, &pin_cpus)
    }

    fn build(helpers: usize, spins: u32, yields: u32, pin_cpus: &[Option<usize>]) -> Self {
        let shared = Arc::new(Shared {
            width: helpers + 1,
            spins,
            yields,
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            job2: UnsafeCell::new(None),
            done: AtomicUsize::new(0),
            barrier_count: AtomicUsize::new(0),
            barrier_gen: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let pin_cpu = pin_cpus.get(i).copied().flatten();
                std::thread::Builder::new()
                    .name(format!("gpu-sim-shard-{}", i + 1))
                    .spawn(move || {
                        if let Some(cpu) = pin_cpu {
                            // Best-effort: a failed affinity call only
                            // costs locality, never correctness.
                            let _ = crate::topo::pin_current_thread(cpu);
                        }
                        worker_loop(&shared, i + 1)
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Measure the round-trip cost of one empty two-phase dispatch
    /// (publish + mid-phase barrier + join), in nanoseconds, as a
    /// min-of-N to shed scheduler noise. The cycle engine compares this
    /// against measured sequential cycle cost to decide when paying the
    /// pool can possibly win. Zero-helper pools report ~0 (inline
    /// calls).
    pub fn measure_dispatch_ns(&self) -> u64 {
        let noop = |_w: usize| {};
        for _ in 0..8 {
            self.run2(&noop, &noop);
        }
        let mut best = u64::MAX;
        for _ in 0..32 {
            let t0 = std::time::Instant::now();
            self.run2(&noop, &noop);
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best.max(1)
    }

    /// Total parallelism (helper threads + the calling thread).
    pub fn width(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(w)` for every worker index `w` in `0..self.width()`,
    /// in parallel, and return once all have completed. `f(0)` runs on
    /// the calling thread. All worker writes are visible to the caller
    /// when this returns.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let helpers = self.handles.len();
        if helpers == 0 {
            f(0);
            return;
        }
        // SAFETY: no worker reads `job` until the epoch bump below, and
        // we blank it again only after all workers reported done. The
        // lifetime of `f` outlives this call, and this call outlives
        // every worker's use of the pointer (the `done` barrier).
        unsafe {
            *self.shared.job.get() = Some(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync),
            >(f as *const _));
            *self.shared.job2.get() = None;
        }
        self.publish_and_wait(|| f(0), helpers);
    }

    /// Run two phases back to back with ONE internal barrier between
    /// them: every worker executes `f1(w)`, waits at a sense-reversing
    /// barrier until all phase-1 work completed, then executes `f2(w)`.
    /// Returns after all workers finish `f2`. The mid-phase barrier
    /// gives `f2` a happens-before view of every `f1` write (each
    /// arrival is an `AcqRel` RMW on the same counter, so the release
    /// sequence carries all phase-1 writes to every waiter). Compared to
    /// two [`Self::run`] calls this halves the dispatch + join overhead:
    /// one epoch publication and one completion wait instead of two.
    pub fn run2(&self, f1: &(dyn Fn(usize) + Sync), f2: &(dyn Fn(usize) + Sync)) {
        let helpers = self.handles.len();
        if helpers == 0 {
            f1(0);
            f2(0);
            return;
        }
        // SAFETY: same protocol as `run` — both pointers are published
        // strictly before the epoch bump and outlive the `done` barrier.
        unsafe {
            *self.shared.job.get() = Some(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync),
            >(f1 as *const _));
            *self.shared.job2.get() = Some(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync),
            >(f2 as *const _));
        }
        self.publish_and_wait(
            || {
                f1(0);
                phase_barrier(&self.shared);
                f2(0);
            },
            helpers,
        );
    }

    /// Common dispatch tail: bump the epoch, wake sleepers, run the
    /// caller's share, then wait for every helper.
    fn publish_and_wait(&self, caller_share: impl FnOnce(), helpers: usize) {
        self.shared.done.store(0, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        if self.shared.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        caller_share();
        // Barrier: wait for every helper, yielding on oversubscription.
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) < helpers {
            spins += 1;
            if spins < self.shared.spins {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Sense-reversing barrier for the gap between `run2` phases. The last
/// arriver resets the count and release-bumps the generation; everyone
/// else acquire-spins on the generation. Arrivals are `AcqRel` RMWs on
/// one counter, so the release sequence hands every phase-1 write to
/// every phase-2 worker.
fn phase_barrier(shared: &Shared) {
    let gen = shared.barrier_gen.load(Ordering::Acquire);
    let arrived = shared.barrier_count.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == shared.width {
        shared.barrier_count.store(0, Ordering::Relaxed);
        shared.barrier_gen.fetch_add(1, Ordering::Release);
        return;
    }
    let mut spins = 0u32;
    while shared.barrier_gen.load(Ordering::Acquire) == gen {
        spins += 1;
        if spins < shared.spins {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: spin → yield → park.
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < shared.spins {
                std::hint::spin_loop();
            } else if spins < shared.spins + shared.yields {
                std::thread::yield_now();
            } else {
                shared.sleepers.fetch_add(1, Ordering::AcqRel);
                let mut g = shared.sleep.lock().unwrap();
                // Re-check under the lock: a publisher that bumped the
                // epoch before our sleeper registration notifies only
                // under this same lock, so we cannot miss it.
                while shared.epoch.load(Ordering::Acquire) == seen {
                    g = shared.wake.wait(g).unwrap();
                }
                drop(g);
                shared.sleepers.fetch_sub(1, Ordering::AcqRel);
                spins = 0;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch acquire above synchronises with the
        // publisher's release store, making the job pointer (written
        // before the bump) visible and valid until we report done.
        let job = unsafe { (*shared.job.get()).expect("published epoch carries a job") };
        let f = unsafe { &*job };
        f(index);
        // Two-phase dispatch: rendezvous, then run the second closure.
        // `job2` was written before the epoch bump, so the acquire above
        // covers this read too.
        if let Some(job2) = unsafe { *shared.job2.get() } {
            phase_barrier(shared);
            let g = unsafe { &*job2 };
            g(index);
        }
        shared.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_worker_exactly_once() {
        let pool = ShardPool::new(3);
        assert_eq!(pool.width(), 4);
        let hits: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 100, "worker {w}");
        }
    }

    #[test]
    fn barrier_makes_worker_writes_visible() {
        let pool = ShardPool::new(2);
        let mut data = vec![0u64; 3 * 1000];
        for round in 0..50u64 {
            let base = data.as_mut_ptr() as usize;
            pool.run(&move |w| {
                // Disjoint thirds per worker.
                let p = base as *mut u64;
                for i in (w * 1000)..((w + 1) * 1000) {
                    unsafe { *p.add(i) += round + w as u64 };
                }
            });
        }
        // sum over rounds of (round + w) per element
        let per_round: u64 = (0..50).sum();
        assert_eq!(data[0], per_round);
        assert_eq!(data[1500], per_round + 50);
        assert_eq!(data[2999], per_round + 2 * 50);
    }

    #[test]
    fn zero_helper_pool_runs_inline() {
        let pool = ShardPool::new(0);
        let x = AtomicU32::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            x.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(x.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run2_executes_both_phases_once_per_worker() {
        let pool = ShardPool::new(3);
        let p1: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let p2: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..200 {
            pool.run2(
                &|w| {
                    p1[w].fetch_add(1, Ordering::Relaxed);
                },
                &|w| {
                    p2[w].fetch_add(1, Ordering::Relaxed);
                },
            );
        }
        for w in 0..4 {
            assert_eq!(p1[w].load(Ordering::Relaxed), 200, "phase 1 worker {w}");
            assert_eq!(p2[w].load(Ordering::Relaxed), 200, "phase 2 worker {w}");
        }
    }

    #[test]
    fn run2_barrier_publishes_phase1_writes_to_phase2() {
        // Every phase-2 worker must see ALL phase-1 writes, not just its
        // own shard's — that is the whole point of the mid-phase barrier
        // (phase 3 reads every shard's staging ring).
        let pool = ShardPool::new(3);
        let width = pool.width();
        let mut staged = vec![0u64; width];
        let mut sums = vec![0u64; width];
        for round in 1..=100u64 {
            let staged_base = staged.as_mut_ptr() as usize;
            let sums_base = sums.as_mut_ptr() as usize;
            pool.run2(
                &move |w| {
                    let p = staged_base as *mut u64;
                    unsafe { *p.add(w) = round * (w as u64 + 1) };
                },
                &move |w| {
                    let p = staged_base as *const u64;
                    let total: u64 = (0..width).map(|i| unsafe { *p.add(i) }).sum();
                    let s = sums_base as *mut u64;
                    unsafe { *s.add(w) = total };
                },
            );
            let expect: u64 = (0..width as u64).map(|i| round * (i + 1)).sum();
            for (w, &s) in sums.iter().enumerate() {
                assert_eq!(s, expect, "worker {w} round {round}");
            }
        }
    }

    #[test]
    fn run2_zero_helper_pool_runs_phases_inline() {
        let pool = ShardPool::new(0);
        let order = std::sync::Mutex::new(Vec::new());
        pool.run2(
            &|w| order.lock().unwrap().push((1, w)),
            &|w| order.lock().unwrap().push((2, w)),
        );
        assert_eq!(*order.lock().unwrap(), vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn run_and_run2_interleave_cleanly() {
        // A one-phase dispatch must blank job2 so workers do not wait at
        // a barrier nobody else will reach.
        let pool = ShardPool::new(2);
        let count = AtomicU32::new(0);
        for i in 0..50 {
            if i % 2 == 0 {
                pool.run2(
                    &|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    },
                    &|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    },
                );
            } else {
                pool.run(&|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // 25 run2 dispatches × 3 workers × 2 phases + 25 run × 3.
        assert_eq!(count.load(Ordering::Relaxed), 25 * 3 * 2 + 25 * 3);
    }

    // Topology probing reads procfs/sysfs and pinning issues a raw
    // syscall; neither exists under miri, so these two stay native-only
    // (the miri CI job runs the rest of this module).
    #[test]
    #[cfg(not(miri))]
    fn with_affinity_pools_work_pinned_and_unpinned() {
        for pin in [false, true] {
            let pool = ShardPool::with_affinity(2, pin);
            assert_eq!(pool.width(), 3);
            let hits: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(0)).collect();
            for _ in 0..50 {
                pool.run2(
                    &|w| {
                        hits[w].fetch_add(1, Ordering::Relaxed);
                    },
                    &|w| {
                        hits[w].fetch_add(1, Ordering::Relaxed);
                    },
                );
            }
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 100, "pin={pin} worker {w}");
            }
        }
    }

    #[test]
    #[cfg(not(miri))]
    fn dispatch_cost_is_measurable() {
        let pool = ShardPool::with_affinity(1, false);
        let ns = pool.measure_dispatch_ns();
        assert!(ns >= 1);
        // An empty dispatch must stay far under a millisecond even on a
        // loaded single-core host.
        assert!(ns < 5_000_000, "dispatch measured at {ns}ns");
    }

    #[test]
    fn workers_survive_parking_between_bursts() {
        let pool = ShardPool::new(2);
        let count = AtomicU32::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        // Long enough for workers to park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }
}
