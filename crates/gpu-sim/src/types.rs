//! Fundamental identifier and address types shared by every simulator
//! component.
//!
//! The simulator uses plain integer newtype-free aliases where the meaning is
//! unambiguous (`Addr`, `Cycle`) and small structs where a value mixes
//! coordinate spaces (`CtaCoord`).

/// A byte address in the simulated global memory space.
pub type Addr = u64;

/// A simulated clock cycle count (core clock domain).
pub type Cycle = u64;

/// Program counter of a static instruction. The kernel IR gives every
/// memory instruction a distinct `Pc` so prefetch tables can be PC-indexed,
/// exactly as the hardware proposal indexes its tables by load PC.
pub type Pc = u32;

/// Index of an SM (streaming multiprocessor) within the GPU.
pub type SmId = usize;

/// Hardware warp slot index, local to one SM (0..max_warps_per_sm).
pub type WarpSlot = usize;

/// Hardware CTA slot index, local to one SM (0..max_ctas_per_sm).
pub type CtaSlot = usize;

/// Two-dimensional CTA coordinates within the kernel grid, plus the
/// flattened launch-order id. GPU kernels commonly derive load addresses
/// from `blockIdx.x`/`blockIdx.y`, which is why the base address of a CTA
/// is not a simple linear function of its launch id (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtaCoord {
    /// `blockIdx.x`
    pub x: u32,
    /// `blockIdx.y`
    pub y: u32,
    /// Flattened launch-order index: `y * grid_dim.x + x`.
    pub linear: u32,
}

impl CtaCoord {
    /// Builds the coordinate for flattened id `linear` in a grid that is
    /// `grid_x` CTAs wide.
    #[inline]
    pub fn from_linear(linear: u32, grid_x: u32) -> Self {
        debug_assert!(grid_x > 0);
        CtaCoord {
            x: linear % grid_x,
            y: linear / grid_x,
            linear,
        }
    }
}

/// Round an address down to the containing cache-line base.
#[inline]
pub fn line_base(addr: Addr, line_size: u32) -> Addr {
    debug_assert!(line_size.is_power_of_two());
    addr & !(line_size as Addr - 1)
}

/// Kinds of memory access arriving at a cache, used for priority and for
/// prefetch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load issued by a warp's load instruction.
    DemandLoad,
    /// A store (write-through, no-allocate at L1 in our Fermi-like model).
    Store,
    /// A prefetch request injected by a prefetch engine. Lower priority
    /// than demand accesses throughout the hierarchy.
    Prefetch,
}

impl AccessKind {
    /// `true` for the speculative prefetch class.
    #[inline]
    pub fn is_prefetch(self) -> bool {
        matches!(self, AccessKind::Prefetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cta_coord_from_linear_roundtrips() {
        let c = CtaCoord::from_linear(17, 5);
        assert_eq!(c.x, 2);
        assert_eq!(c.y, 3);
        assert_eq!(c.linear, 17);
    }

    #[test]
    fn cta_coord_first_row() {
        let c = CtaCoord::from_linear(4, 5);
        assert_eq!((c.x, c.y), (4, 0));
    }

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(line_base(0x1234, 128), 0x1200);
        assert_eq!(line_base(0x1280, 128), 0x1280);
        assert_eq!(line_base(127, 128), 0);
        assert_eq!(line_base(128, 128), 128);
    }

    #[test]
    fn access_kind_prefetch_class() {
        assert!(AccessKind::Prefetch.is_prefetch());
        assert!(!AccessKind::DemandLoad.is_prefetch());
        assert!(!AccessKind::Store.is_prefetch());
    }
}
