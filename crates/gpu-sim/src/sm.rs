//! Streaming multiprocessor: issue pipeline, LD/ST unit, L1D with MSHRs,
//! and the prefetch injection port.
//!
//! Per cycle an SM (a) matures L1 hit latencies, (b) lets the LD/ST unit
//! present one line request to the L1 port — demand first, prefetches
//! only on otherwise idle port cycles (lower priority, §V) — and (c)
//! issues one warp instruction chosen by the warp scheduler.

use crate::cache::{Cache, Lookup, PrefetchProvenance};
use crate::coalescer::coalesce;
use crate::config::GpuConfig;
use crate::cta::CtaState;
use crate::interconnect::MemRequest;
use crate::isa::Op;
use crate::kernel::Kernel;
use crate::linemap::LineMap;
use crate::mshr::{MshrFile, MshrOutcome, PrefetchTag, Waiter};
use crate::port::{Port, PortSnapshot};
use crate::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use crate::sched::WarpScheduler;
use crate::stats::Stats;
use crate::types::{AccessKind, Addr, CtaCoord, Cycle, SmId, WarpSlot};
use crate::warp::{LoopFrame, WarpCtx, WarpState};

/// An in-flight prefetch tracked outside the MSHR file (the prefetch
/// request generator has its own path to L1, Fig. 7 — prefetches must
/// not consume the demand MSHRs that bursty misses already saturate).
#[derive(Debug)]
struct PfInflight {
    tag: PrefetchTag,
    /// Demand waiters that merged into this in-flight prefetch (a *late*
    /// prefetch: correct address, short timing).
    waiters: Vec<WarpSlot>,
}

/// A coalesced warp memory instruction queued at the LD/ST unit.
#[derive(Debug)]
struct MemInst {
    warp: WarpSlot,
    is_store: bool,
    lines: Vec<Addr>,
    next: usize,
}

/// One streaming multiprocessor.
pub struct Sm {
    /// This SM's index.
    pub id: SmId,
    cfg: GpuConfig,
    warps: Vec<WarpCtx>,
    cta_slots: Vec<Option<CtaState>>,
    warps_per_cta: u32,
    resident_cta_cap: usize,
    scheduler: Box<dyn WarpScheduler>,
    prefetcher: Box<dyn Prefetcher>,
    l1d: Cache,
    mshr: MshrFile,
    /// LD/ST instruction queue; its credit count is the structural
    /// hazard the issue stage checks (`ldst_queue_depth`).
    mem_q: Port<MemInst>,
    /// (enqueue cycle, request) — aged out after `prefetch_max_age`;
    /// drop-oldest at the credit limit.
    pf_q: Port<(Cycle, PrefetchRequest)>,
    /// Prefetch lines currently in flight to memory.
    pf_inflight: LineMap<PfInflight>,
    /// Outbound demand/store requests, drained by the GPU at the
    /// interconnect injection bandwidth. Exhausted credits are the LD/ST
    /// unit's outbound backpressure.
    pub inject_q: Port<MemRequest>,
    /// Outbound prefetch requests — injected only when no demand request
    /// is waiting (lower priority, §V).
    pub pf_inject_q: Port<MemRequest>,
    hit_pipe: Port<(Cycle, WarpSlot)>,
    /// Per-SM statistics (merged by the GPU at the end of a run).
    pub stats: Stats,
    scratch_lines: Vec<Addr>,
    pf_scratch: Vec<PrefetchRequest>,
    /// Retired `MemInst` line buffers, reused so the steady-state issue
    /// path allocates nothing.
    line_pool: Vec<Vec<Addr>>,
    active_warps: usize,
    /// Warps currently in [`WarpState::WaitingMem`], kept incrementally
    /// so the per-cycle `mem_wait_cycles` check is O(1).
    waiting_mem: usize,
    /// Memoized stalled LD/ST head: `Some(line)` when the head load
    /// missed L1 and failed its MSHR reservation (or outbound
    /// backpressure). While the O(1) unblock re-checks stay false the
    /// replayed L1 lookup and MSHR probe are skipped (a stalled retry
    /// mutates nothing) and only the per-cycle reservation-fail counter
    /// advances — bit-identical. Cleared by any fill (which frees MSHR
    /// capacity and fills L1).
    stall_memo: Option<Addr>,
    /// Per-slot issue readiness, indexed by warp slot: `busy_until`
    /// while the warp is [`WarpState::Ready`], `Cycle::MAX` otherwise.
    /// A cache-dense mirror of the two [`WarpCtx`] fields the scheduler
    /// predicate reads — the pick scan runs every cycle over up to
    /// eight candidates, and the full `WarpCtx` array across 15 SMs
    /// does not fit in L1d. Updated at every state / `busy_until`
    /// transition; `debug_assert`ed against the source of truth in the
    /// issue predicate.
    issuable_at: Vec<Cycle>,
}

impl Sm {
    /// Build an SM bound to `kernel`'s geometry.
    pub fn new(
        id: SmId,
        cfg: &GpuConfig,
        kernel: &Kernel,
        scheduler: Box<dyn WarpScheduler>,
        prefetcher: Box<dyn Prefetcher>,
    ) -> Self {
        let wpc = kernel.warps_per_cta(cfg.simt_width);
        let by_warps = (cfg.max_warps_per_sm as u32 / wpc).max(1) as usize;
        let resident_cta_cap = cfg.max_ctas_per_sm.min(by_warps);
        Sm {
            id,
            cfg: cfg.clone(),
            warps: (0..cfg.max_warps_per_sm)
                .map(|_| WarpCtx::vacant())
                .collect(),
            cta_slots: vec![None; resident_cta_cap],
            warps_per_cta: wpc,
            resident_cta_cap,
            scheduler,
            prefetcher,
            l1d: Cache::new(cfg.l1d),
            mshr: MshrFile::new(cfg.l1d.mshr_entries as usize, cfg.l1d.mshr_merge as usize),
            mem_q: Port::new(cfg.ldst_queue_depth),
            pf_q: Port::new(cfg.prefetch_queue_depth),
            pf_inflight: LineMap::with_capacity(cfg.prefetch_queue_depth),
            inject_q: Port::new(cfg.ldst_queue_depth * 4),
            pf_inject_q: Port::new(cfg.ldst_queue_depth * 4),
            hit_pipe: Port::new(cfg.l1d.hit_latency as usize + 1),
            stats: Stats::default(),
            scratch_lines: Vec::with_capacity(32),
            pf_scratch: Vec::with_capacity(64),
            line_pool: Vec::new(),
            active_warps: 0,
            waiting_mem: 0,
            stall_memo: None,
            issuable_at: vec![Cycle::MAX; cfg.max_warps_per_sm],
        }
    }

    /// Maximum CTAs this SM can host for the bound kernel.
    #[inline]
    pub fn resident_cta_cap(&self) -> usize {
        self.resident_cta_cap
    }

    /// Re-bind the SM to a new kernel's geometry (applications launch
    /// several kernels, §II-A). The SM must be drained; caches and the
    /// prefetcher's PC-indexed state persist across kernels exactly as
    /// the hardware's would.
    pub fn rebind(&mut self, kernel: &Kernel) {
        assert!(self.is_idle(), "rebind requires a drained SM");
        let wpc = kernel.warps_per_cta(self.cfg.simt_width);
        let by_warps = (self.cfg.max_warps_per_sm as u32 / wpc).max(1) as usize;
        self.resident_cta_cap = self.cfg.max_ctas_per_sm.min(by_warps);
        self.warps_per_cta = wpc;
        self.cta_slots = vec![None; self.resident_cta_cap];
        self.pf_q.clear();
    }

    /// Whether a CTA slot is free.
    pub fn has_free_cta_slot(&self) -> bool {
        self.cta_slots.iter().any(Option::is_none)
    }

    /// Number of warps still executing.
    #[inline]
    pub fn active_warps(&self) -> usize {
        self.active_warps
    }

    /// Host-time cost estimate of stepping this SM one cycle, for the
    /// load-aware shard planner: a stepped SM walks its scheduler and
    /// pipeline roughly in proportion to its resident warps, with a
    /// constant floor for the fixed per-step bookkeeping. Host-side
    /// scheduling hint only — never feeds simulated state.
    #[inline]
    pub fn load_weight(&self) -> u64 {
        1 + self.active_warps as u64
    }

    /// Whether the SM has fully drained (no warps, queues, or misses).
    pub fn is_idle(&self) -> bool {
        self.active_warps == 0
            && self.mem_q.is_empty()
            && self.hit_pipe.is_empty()
            && self.inject_q.is_empty()
            && self.pf_inject_q.is_empty()
            && self.mshr.is_empty()
            && self.pf_inflight.is_empty()
    }

    /// Next outbound request for the interconnect; demands and stores
    /// strictly precede prefetches.
    pub fn pop_outbound(&mut self) -> Option<MemRequest> {
        self.inject_q.pop().or_else(|| self.pf_inject_q.pop())
    }

    /// Occupancy/stall counters aggregated over every port in this SM.
    /// Host-side reporting only — not part of the bit-identity contract.
    pub fn port_snapshot(&self) -> PortSnapshot {
        let mut s = self.mem_q.snapshot();
        s.absorb(self.pf_q.snapshot());
        s.absorb(self.inject_q.snapshot());
        s.absorb(self.pf_inject_q.snapshot());
        s.absorb(self.hit_pipe.snapshot());
        s
    }

    /// Launch a CTA into a free slot. Panics when no slot is free (the
    /// GPU checks [`Self::has_free_cta_slot`] first).
    pub fn launch_cta(&mut self, coord: CtaCoord) {
        let slot = self
            .cta_slots
            .iter()
            .position(Option::is_none)
            .expect("launch_cta without a free slot");
        let base_warp = slot * self.warps_per_cta as usize;
        self.cta_slots[slot] = Some(CtaState::new(coord, base_warp, self.warps_per_cta));
        for i in 0..self.warps_per_cta {
            let w = base_warp + i as usize;
            let leading = i == 0;
            self.warps[w].launch(slot, i, coord, leading);
            self.issuable_at[w] = 0;
            self.scheduler.on_launch(w, leading, (i % 2) as u8);
        }
        self.active_warps += self.warps_per_cta as usize;
        self.prefetcher.on_cta_launch(slot, coord);
        self.stats.ctas_launched += 1;
    }

    /// A fill returned from the memory hierarchy for `line`.
    pub fn on_fill(&mut self, now: Cycle, line: Addr) {
        self.stall_memo = None;
        // Prefetch fills are tracked outside the MSHR file.
        if let Some(pf) = self.pf_inflight.remove(line) {
            let untouched = pf.waiters.is_empty();
            let provenance = untouched.then_some(PrefetchProvenance {
                pc: pf.tag.pc,
                target_warp: pf.tag.target_warp,
                issue_cycle: pf.tag.issue_cycle,
            });
            let outcome = self.l1d.fill(line, provenance);
            if outcome.evicted_unused_prefetch {
                self.stats.prefetch_early_evicted += 1;
            }
            for w in pf.waiters {
                self.complete_load(w);
            }
            // Eager warp wake-up (§V-A): the fill carries the bound warp.
            if untouched {
                if let Some(target) = pf.tag.target_warp {
                    if self.warps[target].is_active() && self.scheduler.on_prefetch_fill(target) {
                        self.stats.prefetch_wakeups += 1;
                    }
                }
            }
            let _ = now;
            return;
        }
        let mut entry = self.mshr.complete(line);
        let outcome = self.l1d.fill(line, None);
        if outcome.evicted_unused_prefetch {
            self.stats.prefetch_early_evicted += 1;
        }
        for w in entry.waiters.drain(..) {
            self.complete_load(w.warp);
        }
        self.mshr.recycle_waiters(entry.waiters);
    }

    fn complete_load(&mut self, w: WarpSlot) {
        let warp = &mut self.warps[w];
        debug_assert!(warp.outstanding_loads > 0);
        warp.outstanding_loads -= 1;
        if warp.outstanding_loads == 0 && warp.state == WarpState::WaitingMem {
            warp.state = WarpState::Ready;
            self.issuable_at[w] = warp.busy_until;
            self.waiting_mem -= 1;
            self.scheduler.on_ready_again(w);
        }
    }

    /// Advance one cycle. Completed CTA coordinates are appended to
    /// `completed` so the GPU can refill slots demand-driven.
    pub fn step(&mut self, now: Cycle, kernel: &Kernel, completed: &mut Vec<CtaCoord>) {
        self.mature_hits(now);
        self.ldst_cycle(now);
        self.issue_cycle(now, kernel, completed);
        if self.waiting_mem > 0 {
            self.stats.mem_wait_cycles += 1;
        }
    }

    /// Whether a [`Self::step`] at `now` would change any architectural
    /// or statistics state — the SM leg of the fast-forward probe. Must
    /// stay in lockstep with the step path: every `true` arm corresponds
    /// to an action `step` would take this cycle, and `false` means the
    /// cycle is provably a no-op (given empty inject queues, which the
    /// GPU-level probe checks via the first arm).
    pub fn can_progress(&self, now: Cycle, kernel: &Kernel) -> bool {
        // A matured L1 hit completes a load.
        if self.hit_pipe.peek().is_some_and(|&(t, _)| t <= now) {
            return true;
        }
        // Outbound traffic: the GPU drains these into the request
        // networks every cycle, unconditionally.
        if !self.inject_q.is_empty() || !self.pf_inject_q.is_empty() {
            return true;
        }
        // Demand port. `inject_q` is empty here, so the outbound
        // backpressure arms cannot fire: a store head always advances,
        // and a load head advances unless its sole recourse is an MSHR
        // reservation that fails.
        if let Some(inst) = self.mem_q.peek() {
            if inst.is_store {
                return true;
            }
            let line = inst.lines[inst.next];
            if self.l1d.probe(line)
                || self.pf_inflight.contains(line)
                || self.mshr.can_merge(line)
                || (!self.mshr.contains(line) && self.mshr.free() > 0)
            {
                return true;
            }
        }
        // Prefetch port: the head ages out, drops as redundant, or
        // issues (`pf_inject_q` is empty here, so only the in-flight
        // cap can block it).
        if let Some(&(t, ref req)) = self.pf_q.peek() {
            if now.saturating_sub(t) > self.cfg.prefetch_max_age as Cycle
                || self.l1d.probe(req.line)
                || self.mshr.contains(req.line)
                || self.pf_inflight.contains(req.line)
                || self.pf_inflight.len() < self.cfg.prefetch_queue_depth
            {
                return true;
            }
        }
        // Issue stage: any schedulable warp. The closure is the same
        // predicate `issue_cycle` hands to `pick`.
        if self.active_warps > 0 {
            let mem_q_open = self.mem_q.credits() > 0;
            let warps = &self.warps;
            let issuable_at = &self.issuable_at;
            let program = &kernel.program;
            let mut can_issue = |w: WarpSlot| {
                issuable_at[w] <= now && (mem_q_open || !program.op_is_mem(warps[w].pc))
            };
            if self.scheduler.has_candidate(&mut can_issue) {
                return true;
            }
        }
        false
    }

    /// Earliest future cycle (strictly after `now`) at which this SM can
    /// make progress on its own — without any external fill. Returns
    /// `None` when the SM is purely waiting on the memory system.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let hit = self
            .hit_pipe
            .peek()
            .map(|&(t, _)| t)
            .filter(|&t| t > now);
        // Execution-latency timers on Ready warps (over-approximation:
        // a wake may still find nothing issuable, which is harmless).
        let wake = self.warps.iter().filter_map(|w| w.wake_event(now)).min();
        // The queued prefetch head ages out when `now' - t` first
        // exceeds `prefetch_max_age`.
        let pf_age = self
            .pf_q
            .peek()
            .map(|&(t, _)| t + self.cfg.prefetch_max_age as Cycle + 1);
        [hit, wake, pf_age].into_iter().flatten().min()
    }

    /// Replicate the statistics side effects of `delta` quiescent naive
    /// steps (cycles in which [`Self::can_progress`] is `false`).
    pub fn account_skipped(&mut self, delta: u64) {
        if self.active_warps > 0 {
            // `issue_cycle` finds no candidate every skipped cycle.
            self.stats.stall_cycles += delta;
        }
        if self.waiting_mem > 0 {
            self.stats.mem_wait_cycles += delta;
        }
        if !self.mem_q.is_empty() {
            // The LD/ST head is a load whose only path is a failing MSHR
            // reservation (all other head outcomes count as progress),
            // and it replays once per cycle.
            self.stats.l1d_reservation_fails += delta;
        }
    }

    fn mature_hits(&mut self, now: Cycle) {
        while let Some(&(t, w)) = self.hit_pipe.peek() {
            if t > now {
                break;
            }
            self.hit_pipe.pop();
            self.complete_load(w);
        }
    }

    /// LD/ST unit cycle. The demand port services the instruction queue;
    /// prefetches inject through their own (rate-limited) port — their
    /// lower priority is enforced by the MSHR reservation and by demand
    /// requests preceding them in the outbound queue.
    fn ldst_cycle(&mut self, now: Cycle) {
        if !self.mem_q.is_empty() {
            self.demand_port_cycle(now);
        }
        for _ in 0..self.cfg.prefetch_issue_per_cycle {
            if !self.prefetch_port_cycle(now) {
                break;
            }
        }
    }

    fn demand_port_cycle(&mut self, now: Cycle) {
        let Some(inst) = self.mem_q.peek_mut() else {
            return;
        };
        let line = inst.lines[inst.next];
        let warp = inst.warp;
        let is_store = inst.is_store;

        if is_store {
            if self.inject_q.credits() == 0 {
                self.inject_q.note_stall();
                return; // outbound backpressure; retry
            }
            // Write-evict, no-allocate: drop a stale copy.
            if self.l1d.invalidate(line).is_some() {
                self.stats.prefetch_early_evicted += 1;
            }
            self.stats.store_accesses += 1;
            self.push_request(line, AccessKind::Store);
            self.advance_mem_inst();
            return;
        }

        // Memoized stall: the head already missed L1 (no fill since — a
        // fill clears the memo). An in-flight prefetch for the line
        // would merge it forward; otherwise it stays stalled while its
        // MSHR entry exists with a full merge list (room frees only on
        // a fill) or, unallocated, while the outbound queue or MSHR
        // file stays full — all O(1) re-checks.
        if self.stall_memo == Some(line) {
            if !self.pf_inflight.contains(line)
                && (self.mshr.contains(line)
                    || self.inject_q.credits() == 0
                    || self.mshr.free() == 0)
            {
                self.stats.l1d_reservation_fails += 1;
                return;
            }
            self.stall_memo = None;
        }

        match self.l1d.access(line) {
            Lookup::Hit {
                first_use_of_prefetch,
            } => {
                self.stats.l1d_demand_accesses += 1;
                self.stats.l1d_demand_hits += 1;
                if let Some(p) = first_use_of_prefetch {
                    self.stats.prefetch_useful += 1;
                    self.stats.prefetch_distance_sum += now.saturating_sub(p.issue_cycle);
                    self.stats.prefetch_distance_count += 1;
                }
                self.hit_pipe
                    .push((now + self.cfg.l1d.hit_latency as Cycle, warp));
                self.advance_mem_inst();
            }
            Lookup::Miss => {
                // Demand to a line with an in-flight prefetch: merge into
                // it — a *late* prefetch still hides part of the latency.
                if let Some(pf) = self.pf_inflight.get_mut(line) {
                    self.stats.l1d_demand_accesses += 1;
                    self.stats.l1d_demand_misses += 1;
                    if pf.waiters.is_empty() {
                        self.stats.prefetch_late += 1;
                    }
                    pf.waiters.push(warp);
                    self.advance_mem_inst();
                    return;
                }
                let will_allocate = !self.mshr.contains(line);
                if will_allocate && self.inject_q.credits() == 0 {
                    self.inject_q.note_stall();
                    self.stats.l1d_reservation_fails += 1;
                    self.stall_memo = Some(line);
                    return;
                }
                match self.mshr.demand_miss(line, Waiter { warp }) {
                    MshrOutcome::Allocated => {
                        self.stats.l1d_demand_accesses += 1;
                        self.stats.l1d_demand_misses += 1;
                        self.push_request(line, AccessKind::DemandLoad);
                        let mut scratch = std::mem::take(&mut self.pf_scratch);
                        self.prefetcher.on_l1_miss(now, line, &mut scratch);
                        self.pf_scratch = scratch;
                        self.enqueue_prefetches(now);
                        self.advance_mem_inst();
                    }
                    MshrOutcome::Merged {
                        hit_inflight_prefetch,
                    } => {
                        self.stats.l1d_demand_accesses += 1;
                        self.stats.l1d_demand_misses += 1;
                        self.stats.l1d_mshr_merges += 1;
                        if hit_inflight_prefetch {
                            self.stats.prefetch_late += 1;
                        }
                        self.advance_mem_inst();
                    }
                    MshrOutcome::ReservationFail => {
                        self.stats.l1d_reservation_fails += 1;
                        // Head of queue replays next cycle.
                        self.stall_memo = Some(line);
                    }
                }
            }
        }
    }

    fn advance_mem_inst(&mut self) {
        let inst = self.mem_q.peek_mut().expect("advance on empty queue");
        inst.next += 1;
        if inst.next == inst.lines.len() {
            let inst = self.mem_q.pop().expect("checked non-empty");
            self.line_pool.push(inst.lines);
        }
    }

    /// A line buffer for a new [`MemInst`], holding a copy of
    /// `scratch_lines`: recycled from the pool when possible.
    fn take_lines(&mut self) -> Vec<Addr> {
        let mut lines = self.line_pool.pop().unwrap_or_default();
        lines.clear();
        lines.extend_from_slice(&self.scratch_lines);
        lines
    }

    /// Returns `false` when the prefetch queue is empty or blocked.
    fn prefetch_port_cycle(&mut self, now: Cycle) -> bool {
        // Age out stale requests: their demand window has passed and
        // issuing them would only pollute the cache.
        while let Some(&(t, _)) = self.pf_q.peek() {
            if now.saturating_sub(t) <= self.cfg.prefetch_max_age as Cycle {
                break;
            }
            self.pf_q.pop();
            self.stats.prefetch_dropped += 1;
        }
        let Some(&(_, req)) = self.pf_q.peek() else {
            return false;
        };
        // Redundant: already cached, already demanded (MSHR), or already
        // being prefetched.
        if self.l1d.probe(req.line)
            || self.mshr.contains(req.line)
            || self.pf_inflight.contains(req.line)
        {
            self.pf_q.pop();
            self.stats.prefetch_dropped += 1;
            return true;
        }
        if self.pf_inject_q.credits() == 0 {
            self.pf_inject_q.note_stall();
            return false; // backpressure; retry later
        }
        if self.pf_inflight.len() >= self.cfg.prefetch_queue_depth {
            return false; // in-flight cap; retry later
        }
        self.pf_q.pop();
        let tag = PrefetchTag {
            target_warp: req.target_warp,
            pc: req.pc,
            issue_cycle: now,
        };
        self.pf_inflight.insert(
            req.line,
            PfInflight {
                tag,
                waiters: Vec::new(),
            },
        );
        self.stats.prefetch_issued += 1;
        self.push_request(req.line, AccessKind::Prefetch);
        true
    }

    fn push_request(&mut self, line: Addr, kind: AccessKind) {
        self.stats.icnt_requests += 1;
        let req = MemRequest {
            line,
            kind,
            sm: self.id,
        };
        if kind.is_prefetch() {
            self.pf_inject_q.push(req);
        } else {
            self.inject_q.push(req);
        }
    }

    fn enqueue_prefetches(&mut self, now: Cycle) {
        for req in self.pf_scratch.drain(..) {
            if self.pf_q.iter().any(|(_, r)| r.line == req.line) {
                self.stats.prefetch_dropped += 1;
                continue;
            }
            if self.pf_q.credits() == 0 {
                // Drop the *oldest* queued request: newer predictions
                // have a live demand window, old ones are going stale.
                self.pf_q.pop();
                self.stats.prefetch_dropped += 1;
            }
            self.pf_q.push((now, req));
        }
    }

    fn issue_cycle(&mut self, now: Cycle, kernel: &Kernel, completed: &mut Vec<CtaCoord>) {
        if self.active_warps == 0 {
            return;
        }
        let mem_q_open = self.mem_q.credits() > 0;
        let warps = &self.warps;
        let issuable_at = &self.issuable_at;
        let program = &kernel.program;
        let mut can_issue = |w: WarpSlot| {
            debug_assert_eq!(
                issuable_at[w],
                if warps[w].state == WarpState::Ready {
                    warps[w].busy_until
                } else {
                    Cycle::MAX
                },
                "issuable_at mirror out of sync for slot {w}"
            );
            if issuable_at[w] > now {
                return false;
            }
            // Structural hazard: memory ops need LD/ST queue space.
            // `mem_q_open` first: when the queue has room (the common
            // case) the op table is never touched.
            if !mem_q_open && program.op_is_mem(warps[w].pc) {
                return false;
            }
            true
        };
        let Some(w) = self.scheduler.pick(now, &mut can_issue) else {
            self.stats.stall_cycles += 1;
            return;
        };
        self.execute(now, w, kernel, completed);
    }

    fn execute(&mut self, now: Cycle, w: WarpSlot, kernel: &Kernel, completed: &mut Vec<CtaCoord>) {
        let op = kernel.program.op(self.warps[w].pc);
        match op {
            Op::Alu { cycles } => {
                let warp = &mut self.warps[w];
                warp.busy_until = now + cycles as Cycle;
                self.issuable_at[w] = warp.busy_until;
                warp.pc += 1;
                self.stats.warp_instructions += 1;
            }
            Op::Ld {
                pc,
                pattern,
                active_lanes,
            } => {
                let (cta, wic, iter, cta_slot) = {
                    let warp = &self.warps[w];
                    (
                        warp.cta,
                        warp.warp_in_cta,
                        warp.current_iter(),
                        warp.cta_slot,
                    )
                };
                // The leading warp's first load registers its CTA's base
                // addresses; afterwards it loses its scheduling priority
                // (it would otherwise run ahead of its whole CTA).
                if self.warps[w].leading {
                    self.warps[w].leading = false;
                    self.scheduler.on_leading_done(w);
                }
                coalesce(
                    &pattern,
                    cta,
                    wic,
                    iter,
                    active_lanes,
                    self.cfg.l1d.line_size,
                    &mut self.scratch_lines,
                );
                let warp = &mut self.warps[w];
                warp.outstanding_loads += self.scratch_lines.len() as u32;
                warp.pc += 1;
                self.stats.warp_instructions += 1;
                let lines = self.take_lines();
                self.mem_q.push(MemInst {
                    warp: w,
                    is_store: false,
                    lines,
                    next: 0,
                });
                let obs = DemandObservation {
                    cycle: now,
                    pc,
                    cta_slot,
                    cta,
                    warp_in_cta: wic,
                    warp_slot: w,
                    warps_per_cta: self.warps_per_cta,
                    lines: &self.scratch_lines,
                    is_affine: pattern.is_affine(),
                    iter,
                };
                self.prefetcher.on_demand(&obs, &mut self.pf_scratch);
                self.enqueue_prefetches(now);
            }
            Op::St {
                pc: _,
                pattern,
                active_lanes,
            } => {
                let (cta, wic, iter) = {
                    let warp = &self.warps[w];
                    (warp.cta, warp.warp_in_cta, warp.current_iter())
                };
                coalesce(
                    &pattern,
                    cta,
                    wic,
                    iter,
                    active_lanes,
                    self.cfg.l1d.line_size,
                    &mut self.scratch_lines,
                );
                self.warps[w].pc += 1;
                self.stats.warp_instructions += 1;
                let lines = self.take_lines();
                self.mem_q.push(MemInst {
                    warp: w,
                    is_store: true,
                    lines,
                    next: 0,
                });
            }
            Op::WaitLoads => {
                let warp = &mut self.warps[w];
                warp.pc += 1;
                if warp.outstanding_loads > 0 {
                    warp.state = WarpState::WaitingMem;
                    self.issuable_at[w] = Cycle::MAX;
                    self.waiting_mem += 1;
                    self.scheduler.on_long_latency(w);
                }
            }
            Op::LoopBegin { iters, .. } => {
                let warp = &mut self.warps[w];
                let start = warp.pc;
                warp.loop_stack.push(LoopFrame {
                    start,
                    remaining: iters,
                    iter: 0,
                });
                warp.pc += 1;
                self.stats.warp_instructions += 1;
            }
            Op::LoopEnd { start } => {
                let warp = &mut self.warps[w];
                let frame = warp.loop_stack.last_mut().expect("LoopEnd without frame");
                debug_assert_eq!(frame.start, start);
                frame.remaining -= 1;
                if frame.remaining > 0 {
                    frame.iter += 1;
                    warp.pc = start + 1;
                } else {
                    warp.loop_stack.pop();
                    warp.pc += 1;
                }
                self.stats.warp_instructions += 1;
            }
            Op::SkipIf { modulo, len } => {
                let warp = &mut self.warps[w];
                let taken =
                    crate::isa::warp_predicate(warp.cta, warp.warp_in_cta, warp.current_iter(), modulo);
                warp.pc += if taken { 1 } else { len + 1 };
                self.stats.warp_instructions += 1; // the predicate/branch
            }
            Op::Barrier => {
                let slot = self.warps[w].cta_slot;
                self.warps[w].pc += 1;
                self.stats.warp_instructions += 1;
                let cta = self.cta_slots[slot]
                    .as_mut()
                    .expect("barrier in vacant CTA slot");
                if cta.arrive_barrier() {
                    // Release every warp of this CTA parked at the barrier.
                    let slots = cta.warp_slots();
                    for ws in slots {
                        if self.warps[ws].state == WarpState::AtBarrier {
                            self.warps[ws].state = WarpState::Ready;
                            self.issuable_at[ws] = self.warps[ws].busy_until;
                            self.scheduler.on_ready_again(ws);
                        }
                    }
                } else {
                    // Parked warps must not clog the ready queue: treat
                    // the barrier as a long-latency event (demote), or
                    // CTAs deadlock waiting for mates stuck in pending.
                    self.warps[w].state = WarpState::AtBarrier;
                    self.issuable_at[w] = Cycle::MAX;
                    self.scheduler.on_long_latency(w);
                }
            }
        }
        if self.warps[w].pc >= kernel.program.len() {
            self.finish_warp(w, completed);
        }
    }

    fn finish_warp(&mut self, w: WarpSlot, completed: &mut Vec<CtaCoord>) {
        let slot = self.warps[w].cta_slot;
        self.warps[w].state = WarpState::Finished;
        self.issuable_at[w] = Cycle::MAX;
        self.scheduler.on_finish(w);
        self.active_warps -= 1;
        let cta = self.cta_slots[slot]
            .as_mut()
            .expect("finish in vacant CTA slot");
        if cta.warp_finished() {
            let coord = cta.coord;
            self.cta_slots[slot] = None;
            self.prefetcher.on_cta_complete(slot);
            self.stats.ctas_completed += 1;
            completed.push(coord);
        }
    }

    /// Fold prefetcher-side counters into the stats (call once at end).
    pub fn finalize(&mut self) {
        self.stats.prefetch_table_accesses = self.prefetcher.table_accesses();
        self.stats.prefetch_mispredicts = self.prefetcher.mispredicts();
        self.stats.prefetch_unused_resident = self.l1d.unconsumed_prefetched_lines();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};
    use crate::prefetch::NullPrefetcher;
    use crate::sched::make_scheduler;

    fn dense(base: Addr) -> AddrPattern {
        AddrPattern::Affine(AffinePattern::dense(
            base,
            CtaTerm::Linear { pitch: 1 << 16 },
        ))
    }

    fn kernel(prog: crate::isa::Program) -> Kernel {
        Kernel::new("t", (4, 1), 64, prog)
    }

    fn sm(kernel: &Kernel) -> Sm {
        let cfg = GpuConfig::fermi_gtx480();
        Sm::new(
            0,
            &cfg,
            kernel,
            make_scheduler(&cfg),
            Box::new(NullPrefetcher),
        )
    }

    /// Drive the SM standalone, servicing its memory requests with a
    /// fixed-latency loopback memory.
    fn run_to_completion(sm: &mut Sm, kernel: &Kernel, mem_latency: Cycle) -> (Cycle, usize) {
        use std::collections::VecDeque;
        let mut completed = Vec::new();
        let mut inflight: VecDeque<(Cycle, Addr)> = VecDeque::new();
        let mut now = 0;
        while !sm.is_idle() {
            while let Some(&(t, line)) = inflight.front() {
                if t > now {
                    break;
                }
                inflight.pop_front();
                sm.on_fill(now, line);
            }
            sm.step(now, kernel, &mut completed);
            while let Some(req) = sm.inject_q.pop() {
                if req.kind != AccessKind::Store {
                    inflight.push_back((now + mem_latency, req.line));
                }
            }
            now += 1;
            assert!(now < 2_000_000, "SM test did not converge");
        }
        (now, completed.len())
    }

    #[test]
    fn single_cta_runs_to_completion() {
        let prog = ProgramBuilder::new()
            .alu(4)
            .ld(dense(0))
            .wait()
            .alu(4)
            .build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        assert_eq!(s.active_warps(), 2);
        let (_cycles, done) = run_to_completion(&mut s, &k, 200);
        assert_eq!(done, 1);
        assert_eq!(s.stats.ctas_completed, 1);
        assert!(s.has_free_cta_slot());
        assert_eq!(s.active_warps(), 0);
    }

    #[test]
    fn load_miss_then_hit_counted() {
        // Two warps load the same line: first misses, second hits or
        // merges.
        let prog = ProgramBuilder::new()
            .ld(AddrPattern::Affine(AffinePattern {
                base: 0,
                cta_term: CtaTerm::Linear { pitch: 0 },
                warp_stride: 0, // both warps, same line
                lane_stride: 4,
                iter_stride: 0,
            }))
            .wait()
            .build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let _ = run_to_completion(&mut s, &k, 100);
        assert_eq!(s.stats.l1d_demand_accesses, 2);
        assert_eq!(s.stats.l1d_demand_misses + s.stats.l1d_demand_hits, 2);
        assert!(s.stats.l1d_demand_misses >= 1);
    }

    #[test]
    fn wait_loads_demotes_and_wakes() {
        let prog = ProgramBuilder::new().ld(dense(0)).wait().alu(1).build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let (cycles, _) = run_to_completion(&mut s, &k, 300);
        // The warp must have waited for ~300-cycle memory.
        assert!(cycles >= 300, "finished too fast: {cycles}");
        assert!(s.stats.mem_wait_cycles > 0);
        assert!(s.stats.stall_cycles > 0);
    }

    #[test]
    fn instruction_count_matches_program_semantics() {
        // 2 warps × (alu + ld + loopbegin + (alu + loopend)×3) ;
        // WaitLoads is not counted.
        let prog = ProgramBuilder::new()
            .alu(1)
            .ld(dense(0))
            .wait()
            .begin_loop(3)
            .alu(1)
            .end_loop()
            .build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let _ = run_to_completion(&mut s, &k, 50);
        // per warp: alu(1) + ld(1) + loopbegin(1) + 3×(alu+loopend)
        let per_warp = 1 + 1 + 1 + 3 * 2;
        assert_eq!(s.stats.warp_instructions, 2 * per_warp);
    }

    #[test]
    fn barrier_synchronizes_cta() {
        let prog = ProgramBuilder::new().alu(8).barrier().alu(1).build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let (_, done) = run_to_completion(&mut s, &k, 50);
        assert_eq!(done, 1);
    }

    #[test]
    fn stores_generate_traffic_without_blocking() {
        let prog = ProgramBuilder::new().st(dense(0)).alu(1).build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let _ = run_to_completion(&mut s, &k, 100);
        assert_eq!(s.stats.store_accesses, 2);
        assert_eq!(s.stats.icnt_requests, 2);
    }

    #[test]
    fn divergent_load_occupies_ldst_longer() {
        let wide = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 1 << 20 },
            warp_stride: 1 << 16,
            lane_stride: 128, // one line per lane
            iter_stride: 0,
        });
        let prog = ProgramBuilder::new().ld(wide).wait().build();
        let k = kernel(prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let _ = run_to_completion(&mut s, &k, 100);
        // 2 warps × 32 lines each.
        assert_eq!(s.stats.l1d_demand_accesses, 64);
    }

    /// Scripted engine: prefetches `line + 128` of every demanded line,
    /// bound to the issuing warp.
    struct NextLineForWarp;

    impl Prefetcher for NextLineForWarp {
        fn name(&self) -> &'static str {
            "TEST"
        }
        fn on_demand(
            &mut self,
            obs: &DemandObservation<'_>,
            out: &mut Vec<crate::prefetch::PrefetchRequest>,
        ) {
            for &l in obs.lines {
                out.push(crate::prefetch::PrefetchRequest {
                    line: l + 128,
                    pc: obs.pc,
                    target_warp: Some(obs.warp_slot),
                });
            }
        }
    }

    fn run_with_prefetcher(s: &mut Sm, kernel: &Kernel, mem_latency: Cycle) -> (Cycle, usize) {
        use std::collections::VecDeque;
        let mut completed = Vec::new();
        let mut inflight: VecDeque<(Cycle, Addr)> = VecDeque::new();
        let mut now = 0;
        while !s.is_idle() {
            while let Some(&(t, line)) = inflight.front() {
                if t > now {
                    break;
                }
                inflight.pop_front();
                s.on_fill(now, line);
            }
            s.step(now, kernel, &mut completed);
            while let Some(req) = s.pop_outbound() {
                if req.kind != AccessKind::Store {
                    inflight.push_back((now + mem_latency, req.line));
                }
            }
            now += 1;
            assert!(now < 2_000_000, "SM test did not converge");
        }
        (now, completed.len())
    }

    #[test]
    fn prefetches_issue_fill_and_are_consumed_or_counted() {
        // Two loads per warp at +0 and +128: the scripted prefetcher's
        // next-line guesses for the first load match the second load.
        let prog = ProgramBuilder::new()
            .ld(dense(0))
            .wait()
            .alu(64)
            .ld(AddrPattern::Affine(AffinePattern {
                base: 128,
                cta_term: CtaTerm::Linear { pitch: 1 << 16 },
                warp_stride: 128,
                lane_stride: 4,
                iter_stride: 0,
            }))
            .wait()
            .build();
        let k = kernel(prog);
        let cfg = GpuConfig::fermi_gtx480();
        let mut s = Sm::new(0, &cfg, &k, make_scheduler(&cfg), Box::new(NextLineForWarp));
        s.launch_cta(k.cta_coord(0));
        let _ = run_with_prefetcher(&mut s, &k, 120);
        s.finalize();
        assert!(s.stats.prefetch_issued > 0, "prefetches must be issued");
        let accounted = s.stats.prefetch_useful
            + s.stats.prefetch_late
            + s.stats.prefetch_early_evicted
            + s.stats.prefetch_unused_resident;
        assert_eq!(accounted, s.stats.prefetch_issued, "every fill accounted");
        assert!(s.stats.prefetch_useful + s.stats.prefetch_late > 0);
    }

    #[test]
    fn duplicate_prefetches_are_dropped_not_issued() {
        // Both warps demand the same line; the second prefetch guess
        // duplicates the first and must be dropped.
        let prog = ProgramBuilder::new()
            .ld(AddrPattern::Affine(AffinePattern {
                base: 0,
                cta_term: CtaTerm::Linear { pitch: 0 },
                warp_stride: 0,
                lane_stride: 4,
                iter_stride: 0,
            }))
            .wait()
            .build();
        let k = kernel(prog);
        let cfg = GpuConfig::fermi_gtx480();
        let mut s = Sm::new(0, &cfg, &k, make_scheduler(&cfg), Box::new(NextLineForWarp));
        s.launch_cta(k.cta_coord(0));
        let _ = run_with_prefetcher(&mut s, &k, 80);
        s.finalize();
        assert_eq!(s.stats.prefetch_issued, 1, "one unique line");
        assert!(s.stats.prefetch_dropped >= 1, "the duplicate is dropped");
    }

    #[test]
    fn nested_loops_use_innermost_iteration_for_addresses() {
        // Outer loop 2×, inner loop 3×: the load's iter term follows the
        // *innermost* loop (documented semantics), so the same 3 lines
        // repeat in both outer iterations → exactly 3 unique misses.
        let pat = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 0 },
            warp_stride: 0,
            lane_stride: 4,
            iter_stride: 128,
        });
        let prog = ProgramBuilder::new()
            .begin_loop(2)
            .begin_loop(3)
            .ld(pat)
            .wait()
            .end_loop()
            .end_loop()
            .build();
        let k = Kernel::new("nested", (1, 1), 32, prog);
        let mut s = sm(&k);
        s.launch_cta(k.cta_coord(0));
        let _ = run_to_completion(&mut s, &k, 40);
        assert_eq!(s.stats.l1d_demand_accesses, 6, "2×3 loads");
        assert_eq!(s.stats.l1d_demand_misses, 3, "3 unique lines, reused by pass 2");
        assert_eq!(s.stats.l1d_demand_hits, 3);
    }

    #[test]
    fn skip_if_diverges_warps_deterministically() {
        // One warp in `modulo` executes the guarded load; totals follow
        // the predicate exactly.
        let prog = ProgramBuilder::new()
            .begin_skip(2)
            .ld(dense(0))
            .wait()
            .end_skip()
            .alu(1)
            .build();
        let k = Kernel::new("skip", (4, 1), 128, prog); // 4 CTAs × 4 warps
        let mut s = sm(&k);
        for c in 0..2 {
            s.launch_cta(k.cta_coord(c));
        }
        let _ = run_to_completion(&mut s, &k, 60);
        let expected: u64 = (0..2u32)
            .flat_map(|c| (0..4u32).map(move |w| (c, w)))
            .filter(|&(c, w)| crate::isa::warp_predicate(k.cta_coord(c), w, 0, 2))
            .count() as u64;
        assert_eq!(s.stats.l1d_demand_accesses, expected);
        assert!(expected < 8, "some warps must skip");
    }

    #[test]
    fn resident_cap_respects_warp_budget() {
        // 16 warps per CTA with 48 warp slots → at most 3 CTAs.
        let prog = ProgramBuilder::new().alu(1).build();
        let k = Kernel::new("t", (8, 1), 512, prog);
        let cfg = GpuConfig::fermi_gtx480();
        let s = Sm::new(0, &cfg, &k, make_scheduler(&cfg), Box::new(NullPrefetcher));
        assert_eq!(s.resident_cta_cap(), 3);
    }
}
