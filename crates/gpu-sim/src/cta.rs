//! Per-CTA residency state on an SM.

use crate::types::{CtaCoord, WarpSlot};

/// A CTA resident in one of an SM's CTA slots.
#[derive(Debug, Clone)]
pub struct CtaState {
    /// Grid coordinates of this CTA.
    pub coord: CtaCoord,
    /// First hardware warp slot assigned to the CTA (warps are
    /// contiguous: `base_warp .. base_warp + warps`).
    pub base_warp: WarpSlot,
    /// Warps in the CTA.
    pub warps: u32,
    /// Warps still running.
    pub running: u32,
    /// Warps parked at the current barrier.
    pub at_barrier: u32,
}

impl CtaState {
    /// Fresh residency record.
    pub fn new(coord: CtaCoord, base_warp: WarpSlot, warps: u32) -> Self {
        CtaState {
            coord,
            base_warp,
            warps,
            running: warps,
            at_barrier: 0,
        }
    }

    /// Hardware warp slots of this CTA.
    pub fn warp_slots(&self) -> std::ops::Range<WarpSlot> {
        self.base_warp..self.base_warp + self.warps as usize
    }

    /// Register a warp arriving at a barrier; returns `true` when every
    /// running warp has arrived and the barrier releases.
    pub fn arrive_barrier(&mut self) -> bool {
        self.at_barrier += 1;
        debug_assert!(self.at_barrier <= self.running);
        if self.at_barrier == self.running {
            self.at_barrier = 0;
            true
        } else {
            false
        }
    }

    /// Register a warp finishing; returns `true` when the CTA is done.
    pub fn warp_finished(&mut self) -> bool {
        debug_assert!(self.running > 0);
        self.running -= 1;
        self.running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> CtaState {
        CtaState::new(CtaCoord::from_linear(5, 4), 8, 4)
    }

    #[test]
    fn warp_slots_are_contiguous() {
        let c = cta();
        assert_eq!(c.warp_slots(), 8..12);
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut c = cta();
        assert!(!c.arrive_barrier());
        assert!(!c.arrive_barrier());
        assert!(!c.arrive_barrier());
        assert!(c.arrive_barrier());
        // Counter resets for the next barrier.
        assert!(!c.arrive_barrier());
    }

    #[test]
    fn barrier_accounts_for_finished_warps() {
        let mut c = cta();
        assert!(!c.warp_finished());
        assert!(!c.arrive_barrier());
        assert!(!c.arrive_barrier());
        assert!(c.arrive_barrier(), "3 running warps all arrived");
    }

    #[test]
    fn cta_completes_when_all_warps_finish() {
        let mut c = cta();
        assert!(!c.warp_finished());
        assert!(!c.warp_finished());
        assert!(!c.warp_finished());
        assert!(c.warp_finished());
    }
}
