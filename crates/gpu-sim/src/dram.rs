//! GDDR5 DRAM channel with an FR-FCFS scheduler.
//!
//! Table III: 924 MHz, 6 channels, FR-FCFS with 16 scheduler-queue
//! entries, GDDR5 timing (tCL=12, tRP=12, tRC=40, tRAS=28, tRCD=12,
//! tRRD=6, tCDLR=5, tWR=12 — DRAM clocks). Timing is pre-converted into
//! core cycles at construction so the whole simulator steps in one clock
//! domain.
//!
//! FR-FCFS (first-ready, first-come-first-served) prioritizes requests
//! that hit an open row buffer over older requests that would need an
//! activation — the policy that makes DRAM throughput sensitive to the
//! spatial order of the request stream, and therefore to prefetching.

use crate::config::{DramTiming, GpuConfig};
use crate::port::{Port, PortSnapshot, Ring};
use crate::types::{Addr, Cycle};

/// Effective row-buffer size per channel in bytes. A 32-bit GDDR5
/// channel built from ×4 devices opens eight 2 KB chip rows in lockstep,
/// so one activation exposes 16 KB of contiguous channel address space.
pub const ROW_BYTES: u64 = 16 * 1024;

/// A request queued at a DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line address being read or written.
    pub line: Addr,
    /// Write (store) vs. read (fill) — writes produce no reply.
    pub is_write: bool,
    /// Originated from a prefetch (lower scheduling priority).
    pub is_prefetch: bool,
    /// Memory partition the reply must return to.
    pub partition: usize,
    /// Arrival order stamp for FCFS tie-breaking.
    pub arrival: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// Pre-converted timing (core cycles).
#[derive(Debug, Clone, Copy)]
struct CoreTiming {
    row_hit: u32,
    row_miss: u32,
    row_closed: u32,
    burst: u32,
    write_recovery: u32,
}

impl CoreTiming {
    fn from(cfg: &GpuConfig, t: &DramTiming) -> Self {
        CoreTiming {
            // Open-row hit: CAS latency only.
            row_hit: cfg.dram_to_core(t.t_cl),
            // Row conflict: precharge + activate + CAS.
            row_miss: cfg.dram_to_core(t.t_rp + t.t_rcd + t.t_cl),
            // Closed bank: activate + CAS.
            row_closed: cfg.dram_to_core(t.t_rcd + t.t_cl),
            burst: cfg.dram_to_core(t.t_burst),
            write_recovery: cfg.dram_to_core(t.t_wr),
        }
    }
}

/// One GDDR5 channel: banks with row buffers, a bounded FR-FCFS queue,
/// and a shared data bus.
#[derive(Debug)]
pub struct DramChannel {
    /// FR-FCFS scheduler queue (bounded by `dram_queue_entries` credits;
    /// producers check [`Self::can_accept`] before pushing). Removal is
    /// order-preserving: the FCFS tie-break falls back to queue position
    /// for equal arrival stamps.
    queue: Port<DramRequest>,
    /// Bank index of each queued request, parallel to `queue`. Computed
    /// once at [`Self::push`] so the per-cycle FR-FCFS scan and the
    /// wake-time recompute never redo the row/bank arithmetic (the bank
    /// count is a runtime value, so `bank_of` costs a hardware divide).
    queue_bank: Ring<u8>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    in_flight: Vec<(Cycle, DramRequest)>,
    timing: CoreTiming,
    /// Earliest cycle at which [`Self::step`] can act (a completion
    /// matures or a queued request's bank turns ready), so steps before
    /// it early-out without scanning the queue. Exact: recomputed from
    /// queue, banks and in-flight set after every executed step; a
    /// [`Self::push`] lowers it to the new request's bank-ready time.
    wake_at: Cycle,
    /// Row-buffer hits serviced (stats).
    pub row_hits: u64,
    /// Row activations (misses + closed-bank opens).
    pub row_misses: u64,
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
}

impl DramChannel {
    /// Build a channel per `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        DramChannel {
            queue: Port::new(cfg.dram_queue_entries),
            queue_bank: Ring::with_capacity(cfg.dram_queue_entries),
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0
                };
                cfg.dram_banks
            ],
            bus_free_at: 0,
            in_flight: Vec::with_capacity(cfg.dram_queue_entries * 2),
            timing: CoreTiming::from(cfg, &cfg.dram_timing),
            wake_at: 0,
            row_hits: 0,
            row_misses: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Whether the scheduler queue can take another request (a credit is
    /// free on the queue port).
    #[inline]
    pub fn can_accept(&self) -> bool {
        self.queue.credits() > 0
    }

    /// Requests waiting or in service.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Enqueue a request; caller must have checked [`Self::can_accept`].
    pub fn push(&mut self, req: DramRequest) {
        debug_assert!(self.can_accept(), "DRAM queue overflow");
        let bank = self.bank_of(req.line);
        let ready = self.banks[bank].ready_at;
        if ready < self.wake_at {
            self.wake_at = ready;
        }
        self.queue_bank.push_back(bank as u8);
        self.queue.push(req);
    }

    /// Occupancy/stall counters for the scheduler queue. Host-side
    /// reporting only — not part of the bit-identity contract.
    pub fn port_snapshot(&self) -> PortSnapshot {
        self.queue.snapshot()
    }

    #[inline]
    fn bank_of(&self, line: Addr) -> usize {
        ((line / ROW_BYTES) as usize) % self.banks.len()
    }

    #[inline]
    fn row_of(line: Addr) -> u64 {
        line / ROW_BYTES
    }

    /// Whether a [`Self::step`] at `now` would change channel state:
    /// a completion matures, or some queued request's bank is ready so
    /// FR-FCFS issues a command. Side-effect-free twin of `step` used by
    /// the fast-forward probe.
    pub fn can_progress(&self, now: Cycle) -> bool {
        self.in_flight.iter().any(|&(t, _)| t <= now)
            || self
                .queue_bank
                .iter()
                .any(|&b| self.banks[b as usize].ready_at <= now)
    }

    /// Earliest future cycle at which this channel can make progress:
    /// the next completion, or the next bank-ready time among queued
    /// requests. `None` when the channel is empty. All returned cycles
    /// are strictly greater than `now` whenever `can_progress(now)` is
    /// false — the property the clock skip's liveness rests on.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let completion = self.in_flight.iter().map(|&(t, _)| t);
        let bank_ready = self
            .queue_bank
            .iter()
            .map(|&b| self.banks[b as usize].ready_at);
        completion.chain(bank_ready).filter(|&t| t > now).min()
    }

    /// Advance one core cycle: possibly start one request (FR-FCFS pick)
    /// and drain completions into `done`.
    pub fn step(&mut self, now: Cycle, done: &mut Vec<DramRequest>) {
        if now < self.wake_at {
            return;
        }
        self.step_inner(now, done);
        // Next cycle anything can happen: the earliest completion or
        // bank-ready time, clamped to the future (a bank ready now means
        // the next step may issue, so it must run at `now + 1`).
        let completion = self.in_flight.iter().map(|&(t, _)| t).min();
        let bank_ready = self
            .queue_bank
            .iter()
            .map(|&b| self.banks[b as usize].ready_at)
            .min();
        let earliest = completion
            .unwrap_or(Cycle::MAX)
            .min(bank_ready.unwrap_or(Cycle::MAX));
        self.wake_at = earliest.max(now + 1);
    }

    fn step_inner(&mut self, now: Cycle, done: &mut Vec<DramRequest>) {
        // Completions first so their banks free this cycle.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (_, req) = self.in_flight.swap_remove(i);
                if req.is_write {
                    self.writes += 1;
                } else {
                    self.reads += 1;
                    done.push(req);
                }
            } else {
                i += 1;
            }
        }

        if self.queue.is_empty() {
            return;
        }

        // FR-FCFS: among requests whose bank is ready, prefer row hits,
        // then demand over prefetch, then older arrivals. One command
        // issued per cycle.
        let mut best: Option<(bool, bool, Cycle, usize)> = None; // (hit, demand, arrival, idx)
        for (idx, (req, &bank)) in self.queue.iter().zip(self.queue_bank.iter()).enumerate() {
            let bank = bank as usize;
            if self.banks[bank].ready_at > now {
                continue;
            }
            let row_hit = self.banks[bank].open_row == Some(Self::row_of(req.line));
            let demand = !req.is_prefetch;
            let better = match best {
                None => true,
                Some((bh, bd, ba, _)) => {
                    (row_hit, demand, std::cmp::Reverse(req.arrival))
                        > (bh, bd, std::cmp::Reverse(ba))
                }
            };
            if better {
                best = Some((row_hit, demand, req.arrival, idx));
            }
        }

        let Some((row_hit, _, _, idx)) = best else {
            return;
        };
        // Order-preserving removal: FCFS tie-breaks fall to queue order.
        let req = self.queue.remove(idx);
        let bank_idx = self.queue_bank.remove(idx) as usize;
        let row = Self::row_of(req.line);

        let access = if row_hit {
            self.row_hits += 1;
            self.timing.row_hit
        } else if self.banks[bank_idx].open_row.is_some() {
            self.row_misses += 1;
            self.timing.row_miss
        } else {
            self.row_misses += 1;
            self.timing.row_closed
        };

        // The data burst occupies the shared bus at the tail of the
        // access; bank-level parallelism overlaps the access phases.
        let data_start = (now + access as Cycle).max(self.bus_free_at);
        let data_at = data_start + self.timing.burst as Cycle;
        self.bus_free_at = data_at;
        let recovery = if req.is_write {
            self.timing.write_recovery as Cycle
        } else {
            0
        };
        self.banks[bank_idx].ready_at = data_at + recovery;
        self.banks[bank_idx].open_row = Some(row);
        self.in_flight.push((data_at, req));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> DramChannel {
        DramChannel::new(&GpuConfig::fermi_gtx480())
    }

    fn rd(line: Addr, arrival: Cycle) -> DramRequest {
        DramRequest {
            line,
            is_write: false,
            is_prefetch: false,
            partition: 0,
            arrival,
        }
    }

    fn run_until_done(c: &mut DramChannel, mut now: Cycle, n: usize) -> Vec<(Cycle, DramRequest)> {
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        while got.len() < n {
            c.step(now, &mut scratch);
            for r in scratch.drain(..) {
                got.push((now, r));
            }
            now += 1;
            assert!(now < 1_000_000, "DRAM test did not converge");
        }
        got
    }

    #[test]
    fn single_read_completes_with_closed_bank_latency() {
        let mut c = chan();
        c.push(rd(0, 0));
        let done = run_until_done(&mut c, 0, 1);
        // tRCD+tCL = 24 DRAM ≈ 37 core, + burst 7 core = 44.
        let expect = GpuConfig::fermi_gtx480().dram_to_core(24) as u64
            + GpuConfig::fermi_gtx480().dram_to_core(4) as u64;
        assert_eq!(done[0].0, expect);
        assert_eq!(c.reads, 1);
        assert_eq!(c.row_misses, 1);
    }

    #[test]
    fn same_row_second_access_is_a_row_hit() {
        let mut c = chan();
        c.push(rd(0, 0));
        c.push(rd(128, 1));
        let _ = run_until_done(&mut c, 0, 2);
        assert_eq!(c.row_hits, 1);
        assert_eq!(c.row_misses, 1);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut c = chan();
        // Open row 0 on bank 0.
        c.push(rd(0, 0));
        let _ = run_until_done(&mut c, 0, 1);
        // Now: an older request that conflicts (row 8 on bank 0) and a
        // younger row hit (row 0). FR-FCFS must service the hit first.
        c.push(rd(8 * ROW_BYTES, 10)); // bank 0, different row
        c.push(rd(64, 11)); // bank 0, open row
        let done = run_until_done(&mut c, 100, 2);
        assert_eq!(done[0].1.line, 64, "row hit should be serviced first");
        assert_eq!(done[1].1.line, 8 * ROW_BYTES);
    }

    #[test]
    fn writes_complete_without_reply() {
        let mut c = chan();
        c.push(DramRequest {
            line: 0,
            is_write: true,
            is_prefetch: false,
            partition: 0,
            arrival: 0,
        });
        let mut done = Vec::new();
        for now in 0..2000 {
            c.step(now, &mut done);
        }
        assert!(done.is_empty());
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn queue_capacity_is_bounded() {
        let mut c = chan();
        for i in 0..16 {
            assert!(c.can_accept());
            c.push(rd(i * 4096, i));
        }
        assert!(!c.can_accept());
    }

    #[test]
    fn different_banks_interleave() {
        let mut c = chan();
        // Two requests on different banks: bank-level parallelism means
        // both finish sooner than strictly serialized access latencies.
        c.push(rd(0, 0));
        c.push(rd(ROW_BYTES, 1)); // next bank
        let done = run_until_done(&mut c, 0, 2);
        let cfg = GpuConfig::fermi_gtx480();
        let serial = 2 * (cfg.dram_to_core(24) as u64 + cfg.dram_to_core(4) as u64);
        assert!(
            done[1].0 < serial,
            "bank parallelism should beat serial: {} vs {serial}",
            done[1].0
        );
    }

    #[test]
    fn progress_probe_and_next_event_bracket_the_step() {
        let mut c = chan();
        assert!(!c.can_progress(0), "empty channel is quiescent");
        assert_eq!(c.next_event(0), None);
        c.push(rd(0, 0));
        assert!(c.can_progress(0), "fresh bank is ready");
        let mut done = Vec::new();
        c.step(0, &mut done); // command issued, completion scheduled
        assert!(done.is_empty());
        // In flight only: the probe is quiet until the data returns, and
        // next_event names exactly that cycle.
        assert!(!c.can_progress(1));
        let t = c.next_event(1).expect("one completion pending");
        assert!(t > 1);
        assert!(!c.can_progress(t - 1));
        assert!(c.can_progress(t));
        c.step(t, &mut done);
        assert_eq!(done.len(), 1);
        assert!(!c.can_progress(t + 1));
        assert_eq!(c.next_event(t + 1), None);
    }

    #[test]
    fn pending_tracks_queue_and_flight() {
        let mut c = chan();
        c.push(rd(0, 0));
        assert_eq!(c.pending(), 1);
        let mut d = Vec::new();
        c.step(0, &mut d);
        assert_eq!(c.pending(), 1); // moved to in-flight
        let _ = run_until_done(&mut c, 1, 1);
        assert_eq!(c.pending(), 0);
    }
}
