//! Whole-GPU simulation loop: SMs, two interconnect networks, memory
//! partitions, DRAM channels, and the CTA distributor.
//!
//! # The phase-split cycle engine
//!
//! A core cycle is executed as two parallel phases separated by a single
//! barrier, plus a short serial tail (see DESIGN.md §9c/§9d):
//!
//! 1. **SM-local phase** — per SM: drain that SM's reply links, deliver
//!    fills, advance the pipeline (fetch/issue/execute/L1/prefetch), and
//!    drain the SM's outbound queues into the worker's *staging ring* in
//!    `(sm_id, queue order)`. SMs interact only through the
//!    interconnect, so this phase is data parallel over SMs.
//! 2. **Memory-local phase** — per DRAM channel: first claim staged
//!    requests routed to the worker's channels (the fused injection —
//!    every worker scans the full staged sequence read-only, so the
//!    per-link send order is exactly the old serial phase's), then eject
//!    requests into the channel's partitions, advance the channel, and
//!    advance its partitions (L2/MSHR/FR-FCFS). Partitions sharing a
//!    channel form one shard, so this phase is data parallel over
//!    channels.
//! 3. **Serial tail** — drain partition reply queues into the reply
//!    networks in fixed partition order (the merge that keeps reply-link
//!    packet order identical to sequential stepping), refill CTA slots,
//!    merge the per-shard quiescence summaries, and clear the staging
//!    rings.
//!
//! With `sim_threads > 1` the two phases fan out over a persistent
//! [`ShardPool`] through [`ShardPool::run2`], which runs both phases in
//! one dispatch with one internal barrier; each worker owns a disjoint
//! set of SMs (resp. channels) *and their interconnect links and
//! quiescence-cache entries*, so no shared mutable state exists inside a
//! parallel phase — no locks, no atomics, and statistics live in
//! per-component counters merged once at the end of the run. Staging
//! rings are written by exactly one phase-1 worker and read (never
//! mutated) by phase-2 workers across the barrier. Because the parallel
//! engine runs the same phase bodies over the same disjoint state in the
//! same per-shard order, its output is bit-identical to the sequential
//! engine for every thread count (enforced by the differential suite).

use crate::config::GpuConfig;
use crate::cta_scheduler::CtaDistributor;
use crate::dram::{DramChannel, DramRequest};
use crate::interconnect::{Link, MemReply, MemRequest, Network};
use crate::kernel::Kernel;
use crate::partition::MemoryPartition;
use crate::pool::ShardPool;
use crate::port::{PortSnapshot, Ring};
use crate::prefetch::PrefetcherFactory;
use crate::sched::make_scheduler;
use crate::sm::Sm;
use crate::stats::{LinkReport, Stats};
use crate::types::{CtaCoord, Cycle};

/// Hard ceiling on simulated cycles; a run exceeding it returns what it
/// has (mirrors the paper's one-billion-instruction cap).
pub const DEFAULT_MAX_CYCLES: Cycle = 50_000_000;

/// A complete GPU bound to one kernel launch.
pub struct Gpu {
    cfg: GpuConfig,
    kernel: Kernel,
    sms: Vec<Sm>,
    req_net: Network<MemRequest>,
    /// Low-priority virtual channel for prefetch requests: backed-up
    /// prefetch traffic must never head-of-line block demands.
    pf_req_net: Network<MemRequest>,
    reply_net: Network<MemReply>,
    /// Low-priority virtual channel for prefetch fills.
    pf_reply_net: Network<MemReply>,
    partitions: Vec<MemoryPartition>,
    channels: Vec<DramChannel>,
    distributor: CtaDistributor,
    cycle: Cycle,
    /// Per-channel DRAM completion scratch (a channel's completions only
    /// ever target partitions mapped to it, so the scratch shards with
    /// the channel).
    dram_scratch: Vec<Vec<DramRequest>>,
    /// Per-worker completed-CTA scratch; contents are only tested for
    /// emptiness (the refill trigger), so per-shard collection needs no
    /// merge step.
    completed_shards: Vec<Vec<CtaCoord>>,
    /// Per-worker staging rings for the fused injection: phase-1 worker
    /// `w` drains its SMs' outbound queues here in `(sm_id, queue
    /// order)`; phase-2 workers read every ring (in shard order, which
    /// reconstructs the global serial order) and claim the requests
    /// routed to their channels. Cleared serially at the end of the
    /// cycle so a thread-count change can never resurrect stale entries.
    staging: Vec<Ring<MemRequest>>,
    /// Per-worker minimum of `sm_quiet_until` over the worker's shard,
    /// written unconditionally by every phase-1 worker and merged into
    /// [`Self::sm_quiet_min`] in the serial tail.
    sm_shard_min: Vec<Cycle>,
    /// Per-worker count of SMs skipped via the quiescence cache this
    /// cycle (feeds the gate-benefit sample and the active-SM estimate).
    sm_shard_skips: Vec<u64>,
    /// Lazily-maintained machine-wide minimum of `sm_quiet_until`:
    /// refreshed by the phase-1 merge each cycle and forced to 0 by every
    /// site that zeroes cache entries outside phase 1 (CTA launches,
    /// cache resets). Replaces the per-cycle full scan the horizon gate
    /// used to run in `advance_until_done`.
    sm_quiet_min: Cycle,
    /// SMs not skipped as quiescent last cycle — the previous-cycle
    /// activity estimate `plan_threads` consults instead of rescanning
    /// the quiescence cache (host-side only; both engine choices are
    /// bit-identical).
    sm_active_estimate: usize,
    /// Event-horizon fast-forward: when no component can make progress,
    /// jump the clock to the next event instead of stepping cycle by
    /// cycle. Statistics are bit-identical either way; disabled by the
    /// `GPU_SIM_NO_SKIP` environment variable (or [`Self::set_fast_forward`]).
    fast_forward: bool,
    /// Cycles covered by horizon jumps (host diagnostics, not `Stats`).
    skipped_cycles: u64,
    /// Number of horizon jumps taken.
    skip_events: u64,
    /// Per-SM quiescence cache: SM `i` provably cannot make progress
    /// before `sm_quiet_until[i]` unless an external event (a fill, a
    /// CTA launch, a rebind) touches it first — each of those resets the
    /// entry to 0. Lets the step loop replace a stalled SM's whole
    /// pipeline walk with O(1) analytic stat accounting. The machine-wide
    /// horizon gate aggregates these per-shard caches with a min scan.
    sm_quiet_until: Vec<Cycle>,
    /// Per-SM probe backoff: while an SM keeps answering "can progress",
    /// probing it again every cycle is pure overhead (the answer is
    /// almost always the same), so `sm_probe_at[i]` defers the next
    /// `can_progress` probe and the SM is stepped directly in between —
    /// exactly what naive stepping does, so this is bit-identical and
    /// only delays quiescence *detection* by at most the backoff.
    sm_probe_at: Vec<Cycle>,
    /// Consecutive "active" probe answers per SM, exponent of the
    /// backoff window (capped); reset by a "cannot progress" answer.
    sm_probe_streak: Vec<u8>,
    /// Per-partition twin of `sm_quiet_until`: reset whenever the
    /// partition accepts a request, receives a DRAM fill, or its channel
    /// steps (the only external ways a partition un-stalls).
    part_quiet_until: Vec<Cycle>,
    /// Per-partition probe backoff (twin of `sm_probe_at`): a partition
    /// whose channel is active is probed every cycle otherwise, and its
    /// `can_progress` walks the L2 tag store and MSHR file.
    part_probe_at: Vec<Cycle>,
    part_probe_streak: Vec<u8>,
    /// Per-channel probe backoff: `DramChannel::can_progress` scans the
    /// FR-FCFS queue, which a busy channel re-walks in `step` anyway.
    ch_probe_at: Vec<Cycle>,
    ch_probe_streak: Vec<u8>,
    /// Per-channel twin: a channel's timers move only under its own
    /// `step`, so the cache is reset only when a partition pushes a new
    /// request into it.
    ch_quiet_until: Vec<Cycle>,
    /// Adaptive minimum-profitable-jump threshold (see
    /// [`Self::MIN_PROFITABLE_SKIP_FLOOR`]): raised when probes keep
    /// failing or jumps come up short, lowered again after long jumps.
    min_profitable_skip: Cycle,
    /// Consecutive-ish count of unprofitable probe outcomes feeding the
    /// threshold backoff.
    probe_debt: u32,
    /// Skip-rate governor: while `true`, the fast-forward machinery
    /// (quiescence caches, probes, horizon gate) is live; while `false`,
    /// cycles step purely naively with zero fast-forward overhead.
    /// Sampling windows measure the realized benefit and close the gate
    /// for exponentially growing spans on workloads that never quiesce
    /// (see [`Self::gate_boundary`]). Both modes account identical
    /// statistics, so the governor cannot perturb results.
    ff_gate_open: bool,
    /// Cycle at which the current sampling window (gate open) or penalty
    /// span (gate closed) ends.
    gate_window_end: Cycle,
    /// Length of the next penalty span; doubles after each consecutive
    /// unprofitable sample up to [`Self::GATE_OFF_SPAN_CAP`].
    gate_off_span: Cycle,
    /// Benefit accumulated in the current sampling window, in units of
    /// avoided SM steps (quiet-SM cycles plus machine-wide jump cycles
    /// weighted by SM count).
    gate_benefit: u64,
    /// Requested intra-simulation worker count (1 = sequential engine).
    sim_threads: usize,
    /// Lazily-created persistent worker pool for the parallel phases.
    pool: Option<ShardPool>,
    /// Load-aware shard plan: `sm_plan[w]..sm_plan[w+1]` is worker `w`'s
    /// SM range (contiguous, ascending, covering `0..num_sms`), rebuilt
    /// from measured per-SM cost at rebalance boundaries. Contiguity in
    /// ascending SM order is what keeps the staged-request sequence —
    /// and therefore every per-link send order — identical to the
    /// sequential engine for *any* plan.
    sm_plan: Vec<usize>,
    /// Per-SM host-cost accumulator for the current rebalance window,
    /// written only by the phase-1 worker owning the SM (disjoint) and
    /// read/zeroed serially at rebalance boundaries.
    sm_cost: Vec<u64>,
    /// Cycle at which the shard plan is next rebuilt from `sm_cost`.
    next_rebalance: Cycle,
    /// Rebalance period in simulated cycles ([`Self::REBALANCE_WINDOW`]
    /// unless overridden for tests).
    rebalance_window: Cycle,
    /// Whether `ensure_workers` asks the pool to pin helper threads
    /// (subject to the `GPU_SIM_NO_PIN` escape hatch inside the pool).
    pin_workers: bool,
    /// Measured round-trip cost of one empty pool dispatch, sampled when
    /// the pool is (re)built; the adaptive controller's floor for when a
    /// parallel cycle can possibly beat a sequential one.
    pool_dispatch_ns: u64,
    /// Measured-cost engine selection: when `true`, windows alternate
    /// between the sequential and parallel engines based on observed
    /// ns/cycle (see [`Self::adapt_boundary`]); when `false`,
    /// `sim_threads` alone decides. Both engines are bit-identical, so
    /// the selector can never perturb results. Default from
    /// `GPU_SIM_ADAPT` (unset = on).
    adaptive: bool,
    /// The adaptive controller's current choice: `true` dispatches the
    /// parallel phases (when `sim_threads` allows), `false` runs
    /// sequentially. Starts `false` so the first window calibrates the
    /// sequential baseline.
    adapt_use_par: bool,
    /// End of the current adaptive measurement window.
    adapt_window_end: Cycle,
    /// EMA of host nanoseconds per simulated cycle under each engine;
    /// NaN until that engine has been measured.
    adapt_seq_ns: f64,
    adapt_par_ns: f64,
    /// Wall-clock instant and simulated cycle at the start of the
    /// current measurement window.
    adapt_mark: Option<(std::time::Instant, Cycle)>,
    /// Windows since the controller last switched engines; forces a
    /// periodic re-probe of the unused engine so a stale measurement
    /// cannot lock the choice forever.
    adapt_windows_in_mode: u32,
}

/// Cap on the per-SM probe-backoff exponent: an SM that keeps answering
/// "can progress" is re-probed at most every `2^5 = 32` cycles, bounding
/// both the probe overhead on compute-dense phases (~3%) and the delay
/// before a freshly stalled SM is detected as quiescent.
const MAX_PROBE_BACKOFF_LOG2: u8 = 5;

/// Shard `w` of `t` over `n` items: the contiguous range
/// `[w*n/t, (w+1)*n/t)`. Deterministic and independent of execution
/// order; empty when `w >= t`.
#[inline]
fn shard_range(w: usize, n: usize, t: usize) -> std::ops::Range<usize> {
    if w >= t {
        return 0..0;
    }
    (w * n / t)..((w + 1) * n / t)
}

/// Build a load-balanced shard plan (boundary list of `t + 1` ascending
/// cuts over `costs.len()` SMs) from per-SM cost samples: each SM gets
/// weight `cost + 1` (the `+1` keeps zero-cost SMs from collapsing into
/// one shard and makes the all-equal case reduce to the equal-count
/// plan), and shard `s`'s boundary is cut at the first prefix whose
/// weight reaches `s/t` of the total. Deterministic, contiguous, and
/// ascending — the properties the fused-injection order proof needs —
/// for every cost vector.
fn plan_from_costs(costs: &[u64], t: usize) -> Vec<usize> {
    let n = costs.len();
    let mut bounds = vec![0usize; t + 1];
    bounds[t] = n;
    let total: u64 = costs.iter().map(|&c| c + 1).sum();
    let mut acc = 0u64;
    let mut shard = 1;
    for (i, &c) in costs.iter().enumerate() {
        acc += c + 1;
        // At i == n-1, acc == total, so every remaining cut lands at n:
        // the plan is always fully populated.
        while shard < t && acc * (t as u64) >= total * (shard as u64) {
            bounds[shard] = i + 1;
            shard += 1;
        }
    }
    bounds
}

/// Raw-pointer view of the SM-local phase state. Each worker touches
/// only the SMs in its shard range plus exactly those SMs' reply links,
/// quiescence-cache entries, and its own staging/completed/summary
/// slots — disjoint by construction, which is what makes the `Sync`
/// impl sound.
struct SmPhase<'a> {
    sms: *mut Sm,
    reply: *mut Link<MemReply>,
    pf_reply: *mut Link<MemReply>,
    quiet: *mut Cycle,
    probe_at: *mut Cycle,
    probe_streak: *mut u8,
    completed: *mut Vec<CtaCoord>,
    /// Per-worker staging ring receiving the shard's outbound requests.
    staging: *mut Ring<MemRequest>,
    /// Per-worker quiescence-minimum slot (written unconditionally).
    shard_min: *mut Cycle,
    /// Per-worker quiet-skip count slot (written unconditionally).
    shard_skips: *mut u64,
    /// Shard-plan boundaries (`threads + 1` entries): worker `w` owns
    /// SMs `plan[w]..plan[w+1]`. Read-only during the phase.
    plan: *const usize,
    /// Per-SM cost accumulators for the load-aware planner; entry `i` is
    /// written only by the worker whose plan range contains `i`.
    cost: *mut u64,
    kernel: &'a Kernel,
    num_sms: usize,
    threads: usize,
    bw: u32,
    fast_forward: bool,
    now: Cycle,
}

// SAFETY: workers dereference disjoint indices (see `shard_range`); the
// shared `kernel` reference is read-only. All pointed-to types are Send.
unsafe impl Sync for SmPhase<'_> {}

impl SmPhase<'_> {
    /// Run the SM-local phase for shard `w`.
    ///
    /// # Safety
    /// At most one concurrent caller per distinct `w`; pointers must be
    /// valid for `num_sms` elements (`completed`, `staging`, `shard_min`
    /// and `shard_skips` for `threads`).
    unsafe fn run_shard(&self, w: usize) {
        let completed = &mut *self.completed.add(w);
        let stage = &mut *self.staging.add(w);
        let mut local_min = Cycle::MAX;
        let mut local_skips = 0u64;
        let range = if w < self.threads {
            *self.plan.add(w)..*self.plan.add(w + 1)
        } else {
            0..0
        };
        debug_assert!(range.end <= self.num_sms);
        for i in range {
            let sm = &mut *self.sms.add(i);
            let quiet = &mut *self.quiet.add(i);
            let link = &mut *self.reply.add(i);
            let pf_link = &mut *self.pf_reply.add(i);

            // 1a. Deliver fills: demand replies first, then the prefetch
            // virtual channel.
            link.step(self.now);
            pf_link.step(self.now);
            for _ in 0..self.bw {
                match link.pop_one() {
                    Some(reply) => {
                        sm.on_fill(self.now, reply.line);
                        *quiet = 0;
                    }
                    None => break,
                }
            }
            for _ in 0..self.bw {
                match pf_link.pop_one() {
                    Some(reply) => {
                        sm.on_fill(self.now, reply.line);
                        *quiet = 0;
                    }
                    None => break,
                }
            }

            // 1b. Pipeline. With fast-forward, an SM that provably cannot
            // progress this cycle is not stepped: its per-cycle counters
            // are accounted analytically and the verdict is cached until
            // its own next event (external events reset the cache to 0).
            // While probes keep answering "active", probing itself is the
            // overhead (compute-dense SMs answer yes for thousands of
            // cycles straight), so consecutive yes-answers back the next
            // probe off exponentially and the SM is stepped directly in
            // between — identical to naive stepping, so only quiescence
            // *detection* is delayed, never the simulated outcome.
            'pipeline: {
                if self.fast_forward {
                    if *quiet > self.now {
                        sm.account_skipped(1);
                        local_skips += 1;
                        break 'pipeline;
                    }
                    let probe_at = &mut *self.probe_at.add(i);
                    if self.now >= *probe_at {
                        if !sm.can_progress(self.now, self.kernel) {
                            *self.probe_streak.add(i) = 0;
                            sm.account_skipped(1);
                            *quiet = sm.next_event(self.now).unwrap_or(Cycle::MAX);
                            break 'pipeline;
                        }
                        let streak = &mut *self.probe_streak.add(i);
                        *probe_at = self.now + (1u64 << *streak);
                        *streak = (*streak + 1).min(MAX_PROBE_BACKOFF_LOG2);
                    }
                }
                sm.step(self.now, self.kernel, completed);
                // Load-aware planner sample: only stepped SMs cost real
                // host time (skipped ones are O(1) accounting), and only
                // the parallel engine consumes the plan, so the
                // sequential hot path pays nothing here.
                if self.threads > 1 {
                    *self.cost.add(i) += sm.load_weight();
                }
            }

            // 1c. Fused injection, producer half: drain the SM's
            // outbound queues into this worker's staging ring, exactly
            // as the old serial injection phase did — unconditionally,
            // for every SM (a quiescent SM's outbound queues are
            // provably empty, so the drain is a no-op there, but
            // draining regardless makes the equivalence unconditional).
            for _ in 0..self.bw {
                let Some(req) = sm.pop_outbound() else { break };
                stage.push_back(req);
            }
            local_min = local_min.min(*quiet);
        }
        *self.shard_min.add(w) = local_min;
        *self.shard_skips.add(w) = local_skips;
    }
}

/// Raw-pointer view of the memory-local phase state, sharded by DRAM
/// channel. A worker that owns channel `c` also owns every partition
/// with `p % num_channels == c`, those partitions' request links and
/// quiescence entries, and the channel's completion scratch — again
/// disjoint by construction. The staging rings are shared, but strictly
/// read-only in this phase (phase 1 finished writing them before the
/// barrier), and each staged request is claimed by exactly one worker
/// because its destination partition maps to exactly one channel.
struct MemPhase<'a> {
    partitions: *mut MemoryPartition,
    channels: *mut DramChannel,
    req: *mut Link<MemRequest>,
    pf_req: *mut Link<MemRequest>,
    part_quiet: *mut Cycle,
    part_probe_at: *mut Cycle,
    part_probe_streak: *mut u8,
    ch_quiet: *mut Cycle,
    ch_probe_at: *mut Cycle,
    ch_probe_streak: *mut u8,
    scratch: *mut Vec<DramRequest>,
    /// Phase-1 staging rings, read-only here (consumer half of the
    /// fused injection).
    staging: *const Ring<MemRequest>,
    /// Number of staging rings phase 1 wrote this cycle.
    num_sm_shards: usize,
    cfg: &'a GpuConfig,
    num_partitions: usize,
    num_channels: usize,
    threads: usize,
    bw: u32,
    /// Interconnect pipe latency, applied at injection.
    latency: Cycle,
    fast_forward: bool,
    now: Cycle,
}

// SAFETY: as for `SmPhase` — the channel-group decomposition gives each
// worker exclusive access to everything it dereferences mutably; the
// staging rings are read-shared and the `cfg` reference is read-only.
unsafe impl Sync for MemPhase<'_> {}

impl MemPhase<'_> {
    /// Run the memory-local phase for shard `w`.
    ///
    /// # Safety
    /// At most one concurrent caller per distinct `w`; pointers must be
    /// valid for their respective element counts; phase 1 must have
    /// finished writing every staging ring (the pool barrier).
    unsafe fn run_shard(&self, w: usize) {
        let range = shard_range(w, self.num_channels, self.threads);

        // Fused injection, consumer half (replaces the old serial
        // phase 2): walk the complete staged sequence — (shard, position)
        // order reconstructs the serial engine's (sm_id, queue order) —
        // and claim only the requests routed to this worker's channels.
        // Sends land `latency` cycles out, so they cannot interact with
        // this cycle's link stepping below, exactly like the old
        // pre-phase-3 serial injection.
        if !range.is_empty() {
            for s in 0..self.num_sm_shards {
                let stage = &*self.staging.add(s);
                for req in stage.iter() {
                    let dst = self.cfg.partition_of(req.line);
                    if !range.contains(&self.cfg.channel_of_partition(dst)) {
                        continue;
                    }
                    let link = if req.kind.is_prefetch() {
                        &mut *self.pf_req.add(dst)
                    } else {
                        &mut *self.req.add(dst)
                    };
                    link.send(self.now + self.latency, *req);
                }
            }
        }

        for c in range {
            let ch = &mut *self.channels.add(c);
            let ch_quiet = &mut *self.ch_quiet.add(c);
            let scratch = &mut *self.scratch.add(c);

            // 3a. Request networks → partitions (consumer-checked
            // ejection; demand channel first).
            let mut p = c;
            while p < self.num_partitions {
                let part = &mut *self.partitions.add(p);
                let quiet = &mut *self.part_quiet.add(p);
                for link in [&mut *self.req.add(p), &mut *self.pf_req.add(p)] {
                    link.step(self.now);
                    for _ in 0..self.bw {
                        let Some(req) = link.peek() else {
                            break;
                        };
                        if !part.can_accept(req.kind) {
                            break;
                        }
                        let req = link.pop_one().expect("peeked");
                        part.accept(self.now, req);
                        *quiet = 0;
                    }
                }
                p += self.num_channels;
            }

            // 3b. The DRAM channel advances; completions collect in the
            // per-channel scratch. A channel whose probe says "nothing
            // matures, no bank ready" would step as a pure no-op, so
            // under fast-forward it is skipped outright until its own
            // next timer — only a partition pushing a request can
            // unquiesce it earlier, and that push resets the cache below.
            scratch.clear();
            let mut ch_stepped = false;
            if self.fast_forward {
                if *ch_quiet > self.now {
                    // skip
                } else {
                    let probe_at = &mut *self.ch_probe_at.add(c);
                    let mut progress = true;
                    if self.now >= *probe_at {
                        let streak = &mut *self.ch_probe_streak.add(c);
                        if ch.can_progress(self.now) {
                            *probe_at = self.now + (1u64 << *streak);
                            *streak = (*streak + 1).min(MAX_PROBE_BACKOFF_LOG2);
                        } else {
                            *streak = 0;
                            *ch_quiet = ch.next_event(self.now).unwrap_or(Cycle::MAX);
                            progress = false;
                        }
                    }
                    if progress {
                        ch.step(self.now, scratch);
                        ch_stepped = true;
                    }
                }
            } else {
                ch.step(self.now, scratch);
                ch_stepped = true;
            }

            // 3c. Partitions service inputs and emit replies. Under
            // fast-forward a partition provably stalled until
            // `part_quiet_until[p]` only accounts its per-cycle stall
            // counter; the cache is reset on every event that can
            // unblock it (an accepted request above, a DRAM fill, or any
            // step of its channel — which can free queue space or MSHRs).
            let mut p = c;
            while p < self.num_partitions {
                let part = &mut *self.partitions.add(p);
                let quiet = &mut *self.part_quiet.add(p);
                if self.fast_forward {
                    if ch_stepped {
                        *quiet = 0;
                    }
                    let has_fill =
                        !scratch.is_empty() && scratch.iter().any(|r| r.partition == p);
                    if !has_fill {
                        if *quiet > self.now {
                            part.account_skipped(1);
                            p += self.num_channels;
                            continue;
                        }
                        // The `can_progress` probe walks L2 tags and the
                        // MSHR tables — comparable cost to the step it
                        // would save. After a successful probe, step
                        // blindly for a geometrically growing window
                        // (stepping a stalled partition is stats-identical
                        // to `account_skipped`, so this never changes
                        // results, only delays quiescence detection).
                        let probe_at = &mut *self.part_probe_at.add(p);
                        if self.now >= *probe_at {
                            if !part.can_progress(self.now, ch) {
                                *self.part_probe_streak.add(p) = 0;
                                part.account_skipped(1);
                                *quiet = part.next_event(self.now).unwrap_or(Cycle::MAX);
                                p += self.num_channels;
                                continue;
                            }
                            let streak = &mut *self.part_probe_streak.add(p);
                            *probe_at = self.now + (1u64 << *streak);
                            *streak = (*streak + 1).min(MAX_PROBE_BACKOFF_LOG2);
                        }
                    }
                }
                let pending_before = ch.pending();
                part.step(self.now, ch, scratch);
                if ch.pending() != pending_before {
                    *ch_quiet = 0;
                }
                p += self.num_channels;
            }
        }
    }
}

impl Gpu {
    /// Build a GPU running `kernel` with per-SM prefetchers from
    /// `prefetcher_factory`.
    pub fn new(cfg: GpuConfig, kernel: Kernel, prefetcher_factory: &PrefetcherFactory) -> Self {
        cfg.validate();
        kernel.validate().expect("invalid kernel");
        let sms = (0..cfg.num_sms)
            .map(|id| {
                Sm::new(
                    id,
                    &cfg,
                    &kernel,
                    make_scheduler(&cfg),
                    prefetcher_factory(id),
                )
            })
            .collect::<Vec<_>>();
        // Pipe rings are sized from the producers' aggregate in-flight
        // bounds so steady state never allocates (§9d): every SM's
        // demand misses are MSHR-bounded and its prefetches are bounded
        // by the in-flight cap, and in the worst case all of them target
        // one partition; replies to one SM are bounded by the same two
        // caps. Stores have no such bound — they are fire-and-forget
        // (no MSHR entry, no reply), so a store burst converging on one
        // backpressured partition can pile past the load bound (HST
        // reaches ~4x it); the demand pipe gets 4x headroom and the
        // ring's counted growth valve covers anything beyond.
        let demand_bound = cfg.l1d.mshr_entries as usize;
        let pf_bound = cfg.prefetch_queue_depth;
        let req_net = Network::new(
            cfg.num_partitions,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
            cfg.num_sms * demand_bound * 4,
        );
        let pf_req_net = Network::new(
            cfg.num_partitions,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
            cfg.num_sms * pf_bound,
        );
        let reply_net = Network::new(
            cfg.num_sms,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
            demand_bound + pf_bound,
        );
        let pf_reply_net = Network::new(
            cfg.num_sms,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
            demand_bound + pf_bound,
        );
        let partitions = (0..cfg.num_partitions)
            .map(|id| MemoryPartition::new(id, &cfg))
            .collect();
        let channels: Vec<DramChannel> = (0..cfg.num_dram_channels)
            .map(|_| DramChannel::new(&cfg))
            .collect();
        let distributor = CtaDistributor::new(kernel.num_ctas());
        let num_sms = cfg.num_sms;
        let num_partitions = cfg.num_partitions;
        let num_channels = cfg.num_dram_channels;
        Gpu {
            cfg,
            kernel,
            sms,
            req_net,
            pf_req_net,
            reply_net,
            pf_reply_net,
            partitions,
            channels,
            distributor,
            cycle: 0,
            dram_scratch: (0..num_channels).map(|_| Vec::new()).collect(),
            completed_shards: vec![Vec::new()],
            staging: Vec::new(),
            sm_shard_min: Vec::new(),
            sm_shard_skips: Vec::new(),
            sm_quiet_min: 0,
            sm_active_estimate: num_sms,
            fast_forward: std::env::var_os("GPU_SIM_NO_SKIP").is_none(),
            skipped_cycles: 0,
            skip_events: 0,
            sm_quiet_until: vec![0; num_sms],
            sm_probe_at: vec![0; num_sms],
            sm_probe_streak: vec![0; num_sms],
            part_quiet_until: vec![0; num_partitions],
            part_probe_at: vec![0; num_partitions],
            part_probe_streak: vec![0; num_partitions],
            ch_quiet_until: vec![0; num_channels],
            ch_probe_at: vec![0; num_channels],
            ch_probe_streak: vec![0; num_channels],
            min_profitable_skip: Self::MIN_PROFITABLE_SKIP_FLOOR,
            probe_debt: 0,
            ff_gate_open: true,
            gate_window_end: Self::GATE_WINDOW,
            gate_off_span: Self::GATE_WINDOW,
            gate_benefit: 0,
            sim_threads: threads_from_env(),
            pool: None,
            sm_plan: vec![0, num_sms],
            sm_cost: vec![0; num_sms],
            next_rebalance: Self::REBALANCE_WINDOW,
            rebalance_window: Self::REBALANCE_WINDOW,
            pin_workers: true,
            pool_dispatch_ns: 0,
            adaptive: adaptive_from_env(),
            adapt_use_par: false,
            adapt_window_end: 0,
            adapt_seq_ns: f64::NAN,
            adapt_par_ns: f64::NAN,
            adapt_mark: None,
            adapt_windows_in_mode: 0,
        }
    }

    /// Simulated cycles covered by horizon jumps and the number of
    /// jumps taken (host-side diagnostics; not part of [`Stats`]).
    pub fn skip_counters(&self) -> (u64, u64) {
        (self.skipped_cycles, self.skip_events)
    }

    /// Enable or disable event-horizon fast-forward in-process (tests
    /// use this to compare against naive stepping without touching the
    /// environment).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
        self.reset_quiescence_caches();
        self.min_profitable_skip = Self::MIN_PROFITABLE_SKIP_FLOOR;
        self.probe_debt = 0;
        self.ff_gate_open = true;
        self.gate_off_span = Self::GATE_WINDOW;
        self.gate_window_end = self.cycle + Self::GATE_WINDOW;
        self.gate_benefit = 0;
    }

    /// Zero every per-component quiescence cache and probe-backoff entry
    /// (required whenever they may have gone stale: a mode switch, a
    /// kernel rebind, or the skip-rate gate reopening after a span of
    /// naive stepping during which nothing maintained them).
    fn reset_quiescence_caches(&mut self) {
        self.sm_quiet_until.fill(0);
        self.sm_quiet_min = 0;
        self.sm_active_estimate = self.cfg.num_sms;
        self.sm_probe_at.fill(0);
        self.sm_probe_streak.fill(0);
        self.part_quiet_until.fill(0);
        self.part_probe_at.fill(0);
        self.part_probe_streak.fill(0);
        self.ch_quiet_until.fill(0);
        self.ch_probe_at.fill(0);
        self.ch_probe_streak.fill(0);
    }

    /// Set the intra-simulation worker count (1 = the sequential
    /// engine). Output is bit-identical for every value; `n` only
    /// changes host-side execution. Defaults to `GPU_SIM_THREADS`
    /// (forced to 1 by `GPU_SIM_SEQ=1`).
    pub fn set_sim_threads(&mut self, n: usize) {
        let n = n.max(1);
        if n != self.sim_threads {
            self.sim_threads = n;
            self.pool = None; // re-created at the right width on demand
        }
    }

    /// The configured intra-simulation worker count.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Enable or disable the measured-cost seq-vs-par engine selector.
    /// Host-side only: both engines are bit-identical, so this cannot
    /// change results — benches disable it to measure the pure parallel
    /// engine. Resets the controller's measurements.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
        self.adapt_use_par = false;
        self.adapt_window_end = self.cycle;
        self.adapt_seq_ns = f64::NAN;
        self.adapt_par_ns = f64::NAN;
        self.adapt_mark = None;
        self.adapt_windows_in_mode = 0;
    }

    /// Whether the adaptive engine selector is live.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// Enable or disable pinning of pool helper threads to CPUs (still
    /// subject to the `GPU_SIM_NO_PIN` escape hatch). Rebuilds the pool
    /// on the next parallel cycle so the change takes effect.
    pub fn set_pinning(&mut self, on: bool) {
        if self.pin_workers != on {
            self.pin_workers = on;
            self.pool = None;
        }
    }

    /// Override the shard-plan rebalance period (simulated cycles). The
    /// next rebalance is scheduled `window` cycles from now.
    pub fn set_shard_rebalance_window(&mut self, window: Cycle) {
        self.rebalance_window = window.max(1);
        self.next_rebalance = self.cycle + self.rebalance_window;
    }

    /// Install an explicit shard plan (boundary list, `len == t + 1`
    /// where `t = sim_threads.min(num_sms)`, starting at 0, ending at
    /// `num_sms`, non-decreasing). The plan persists until the next
    /// rebalance boundary replaces it with a measured one — differential
    /// tests use this to force skewed shard loads. Panics on malformed
    /// plans.
    pub fn set_shard_plan(&mut self, plan: Vec<usize>) {
        let t = self.sim_threads.min(self.cfg.num_sms).max(1);
        assert_eq!(plan.len(), t + 1, "plan must have one boundary per shard edge");
        assert_eq!(plan[0], 0, "plan must start at SM 0");
        assert_eq!(*plan.last().unwrap(), self.cfg.num_sms, "plan must cover every SM");
        assert!(
            plan.windows(2).all(|w| w[0] <= w[1]),
            "plan boundaries must be non-decreasing"
        );
        self.sm_plan = plan;
        self.sm_cost.fill(0);
    }

    /// Current simulated cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Run until the kernel drains or `max_cycles` elapse; returns the
    /// aggregated statistics.
    pub fn run(&mut self, max_cycles: Cycle) -> Stats {
        self.run_launches(1, max_cycles)
    }

    /// Run the kernel `launches` times back to back with persistent
    /// caches — GPU applications launch iterative kernels repeatedly
    /// (time steps, frontier sweeps, training epochs), so later launches
    /// find their data warm in L2. This mirrors whole-application
    /// simulation in GPGPU-Sim.
    pub fn run_launches(&mut self, launches: u32, max_cycles: Cycle) -> Stats {
        assert!(launches > 0);
        for _ in 0..launches {
            self.distributor = CtaDistributor::new(self.kernel.num_ctas());
            self.initial_fill();
            self.advance_until_done(max_cycles);
            if self.cycle >= max_cycles {
                break;
            }
        }
        self.collect_stats()
    }

    /// Run with the default cycle ceiling.
    pub fn run_to_completion(&mut self) -> Stats {
        self.run(DEFAULT_MAX_CYCLES)
    }

    /// Run a multi-kernel application (§II-A): the kernels execute back
    /// to back with persistent caches, like dependent passes of one
    /// program (e.g. the row and column passes of a separable
    /// convolution, or forward/backward layers of training).
    pub fn run_app(&mut self, kernels: &[Kernel], max_cycles: Cycle) -> Stats {
        assert!(!kernels.is_empty());
        for k in kernels {
            self.bind_kernel(k.clone());
            self.distributor = CtaDistributor::new(self.kernel.num_ctas());
            self.initial_fill();
            self.advance_until_done(max_cycles);
            if self.cycle >= max_cycles {
                break;
            }
        }
        self.collect_stats()
    }

    /// Drive the clock until the bound kernel drains or `max_cycles`
    /// elapse. With fast-forward enabled, cycles in which no component
    /// can make progress are skipped in one hop to the event horizon —
    /// the earliest future cycle at which anything can happen — with the
    /// per-cycle statistics those naive steps would have accumulated
    /// accounted analytically. The resulting [`Stats`] are bit-identical
    /// to naive stepping.
    fn advance_until_done(&mut self, max_cycles: Cycle) {
        while !self.done() && self.cycle < max_cycles {
            let now = self.cycle;
            // Machine-wide quiescence requires every SM quiescent, so the
            // cheap per-SM cache gates the full probe. The cached
            // machine-wide minimum `sm_quiet_min` — refreshed by the
            // phase-1 merge and forced to 0 by every out-of-phase cache
            // reset — replaces the full `sm_quiet_until` scan this loop
            // used to run every cycle: in busy phases the per-cycle gate
            // overhead is now O(1). The minimum is an upper bound on how
            // far a skip could jump (the horizon takes the min over
            // these and more). When that bound is under
            // `min_profitable_skip`, the `can_progress` probe plus the
            // `horizon` walk would cost more host time than the handful
            // of simulated cycles they could skip, so short gaps are
            // stepped naively. Both paths account identical statistics,
            // so neither the backoff nor its adaptation can perturb
            // results.
            if self.adaptive && self.sim_threads > 1 && now >= self.adapt_window_end {
                self.adapt_boundary(now);
            }
            if self.fast_forward {
                if now >= self.gate_window_end {
                    self.gate_boundary(now);
                }
                if self.ff_gate_open {
                    let min_quiet = self.sm_quiet_min;
                    if min_quiet > now && min_quiet - now >= self.min_profitable_skip {
                        if !self.can_progress(now) {
                            // Nothing can happen before the horizon. `None`
                            // means a deadlocked configuration: jump straight
                            // to the cap, exactly as the naive loop would
                            // spin to it.
                            let target = self.horizon(now).unwrap_or(max_cycles).min(max_cycles);
                            debug_assert!(target > now, "horizon must be in the future");
                            let delta = target - now;
                            self.skip_to(now, target);
                            self.tune_after_jump(delta);
                            self.gate_benefit +=
                                delta.saturating_mul(self.cfg.num_sms as u64);
                            continue;
                        }
                        // The cached bound over-promised: the probe found a
                        // progressing component, so its cost bought nothing.
                        self.tune_after_wasted_probe();
                    }
                }
            }
            self.step();
        }
    }

    /// Sampling window for the skip-rate governor, in simulated cycles.
    const GATE_WINDOW: Cycle = 1024;
    /// Longest span the gate stays closed before re-sampling. Bounds the
    /// skips forfeited when a closed-gate workload suddenly quiesces.
    const GATE_OFF_SPAN_CAP: Cycle = 8192;

    /// Close of a governor window at cycle `now`. After a sampling
    /// window, the gate stays open only if fast-forward actually avoided
    /// substantial work — at least a quarter of the window's SM steps
    /// (quiet-SM cycles plus jump cycles × SM count). The bar is set
    /// deliberately high: short quiet spells barely pay for the probe
    /// and horizon computation that discovered them (a stalled SM's
    /// naive step is itself cheap), so marginal quiescence is not worth
    /// the machinery — the big wins come from long stalls and
    /// machine-wide jumps, which clear a quarter easily. A workload
    /// that never quiesces substantially (e.g. a compute-dense matrix
    /// multiply under an effective prefetcher) fails the bar, and
    /// subsequent cycles run purely naive
    /// — no scans, no probes — for exponentially growing spans, so the
    /// steady-state overhead decays toward zero. After a penalty span
    /// the gate reopens for one sampling window with freshly zeroed
    /// quiescence caches (they went stale while nothing maintained them).
    fn gate_boundary(&mut self, now: Cycle) {
        if self.ff_gate_open {
            let threshold = (self.cfg.num_sms as u64) * Self::GATE_WINDOW / 4;
            if self.gate_benefit < threshold {
                self.ff_gate_open = false;
                self.gate_window_end = now + self.gate_off_span;
                self.gate_off_span = (self.gate_off_span * 2).min(Self::GATE_OFF_SPAN_CAP);
            } else {
                self.gate_off_span = Self::GATE_WINDOW;
                self.gate_window_end = now + Self::GATE_WINDOW;
            }
        } else {
            self.ff_gate_open = true;
            self.reset_quiescence_caches();
            self.gate_window_end = now + Self::GATE_WINDOW;
        }
        self.gate_benefit = 0;
    }

    /// Measurement window of the adaptive engine selector, in simulated
    /// cycles. Long enough that one pool dispatch per cycle amortises
    /// into a stable ns/cycle sample, short enough to catch phase
    /// changes (CTA waves, drain tails) within a few windows.
    const ADAPT_WINDOW: Cycle = 4096;
    /// Windows spent in one engine before the other is force-probed:
    /// workload phases change (a quiet drain tail follows a busy wave),
    /// so a measurement must not lock the choice forever.
    const ADAPT_REPROBE_WINDOWS: u32 = 16;

    /// Close of an adaptive measurement window at cycle `now`: fold the
    /// window's measured ns/cycle into the current engine's EMA, then
    /// choose the engine for the next window. Decision order: calibrate
    /// the sequential baseline first; stay sequential while the
    /// previous window's active-SM estimate says the machine is nearly
    /// idle (a barrier over one busy SM is pure loss) or while a whole
    /// sequential cycle costs less than the measured pool dispatch
    /// alone (the parallel engine cannot win even with free shards);
    /// otherwise probe, then pick the measured argmin with hysteresis.
    /// Purely host-time scheduling — both engines are bit-identical.
    fn adapt_boundary(&mut self, now: Cycle) {
        let t_now = std::time::Instant::now();
        if let Some((mark, start_cycle)) = self.adapt_mark {
            let cycles = now.saturating_sub(start_cycle).max(1);
            let ns = t_now.duration_since(mark).as_nanos() as f64 / cycles as f64;
            let slot = if self.adapt_use_par {
                &mut self.adapt_par_ns
            } else {
                &mut self.adapt_seq_ns
            };
            *slot = if slot.is_nan() { ns } else { 0.5 * *slot + 0.5 * ns };
        }
        self.adapt_windows_in_mode += 1;
        let seq = self.adapt_seq_ns;
        let par = self.adapt_par_ns;
        let dispatch_floor = self.pool_dispatch_ns as f64 * 1.25;
        let next_par = if seq.is_nan()
            || self.sm_active_estimate < 2
            || (self.pool_dispatch_ns > 0 && seq <= dispatch_floor)
        {
            false
        } else if par.is_nan() {
            true
        } else if self.adapt_windows_in_mode >= Self::ADAPT_REPROBE_WINDOWS {
            !self.adapt_use_par
        } else if self.adapt_use_par {
            // Hysteresis: hold the current engine unless the other is
            // clearly (>10%) cheaper, so noise cannot cause thrashing.
            seq >= par * 0.9
        } else {
            par < seq * 0.9
        };
        if next_par != self.adapt_use_par {
            self.adapt_windows_in_mode = 0;
        }
        self.adapt_use_par = next_par;
        self.adapt_mark = Some((t_now, now));
        self.adapt_window_end = now + Self::ADAPT_WINDOW;
    }

    /// Shard-plan rebalance period in simulated cycles. Plans are
    /// rebuilt only at these boundaries, in the serial tail, from cost
    /// counters each phase-1 worker accumulated over its own SMs — the
    /// rebuild is host-side scheduling and cannot perturb results.
    const REBALANCE_WINDOW: Cycle = 4096;

    /// Smallest estimated jump worth the fast-forward machinery, and the
    /// initial value of the adaptive threshold. Tuned on SCN
    /// (compute-bound, short quiescent gaps between execution timers),
    /// where probing every 1–3-cycle gap made fast-forward a net loss.
    const MIN_PROFITABLE_SKIP_FLOOR: Cycle = 8;
    /// Upper bound for the adaptive threshold: backing off further would
    /// forfeit genuinely long jumps.
    const MIN_PROFITABLE_SKIP_CEIL: Cycle = 256;
    /// Unprofitable probe outcomes tolerated before the threshold
    /// doubles.
    const PROBE_DEBT_LIMIT: u32 = 16;

    /// Adapt the skip threshold after a realized jump of `delta` cycles:
    /// long jumps pay for their probes (relax the threshold back toward
    /// the floor); short jumps barely break even (treat like a wasted
    /// probe). Purely a host-time heuristic — both stepping modes
    /// account identical statistics.
    fn tune_after_jump(&mut self, delta: Cycle) {
        if delta >= 4 * self.min_profitable_skip {
            self.min_profitable_skip =
                (self.min_profitable_skip / 2).max(Self::MIN_PROFITABLE_SKIP_FLOOR);
            self.probe_debt = self.probe_debt.saturating_sub(1);
        } else if delta < 2 * self.min_profitable_skip {
            self.bump_probe_debt();
        }
    }

    /// Adapt the skip threshold after a probe that found progress (the
    /// quiescence bound over-promised): enough of these in a row and the
    /// gate demands longer estimated jumps before probing again.
    fn tune_after_wasted_probe(&mut self) {
        self.bump_probe_debt();
    }

    fn bump_probe_debt(&mut self) {
        self.probe_debt += 1;
        if self.probe_debt >= Self::PROBE_DEBT_LIMIT {
            self.probe_debt = 0;
            self.min_profitable_skip =
                (self.min_profitable_skip * 2).min(Self::MIN_PROFITABLE_SKIP_CEIL);
        }
    }

    /// Whether a [`Self::step`] at `now` would change any state anywhere
    /// in the machine. Ordered cheapest-first; each arm mirrors one step
    /// phase. Over-approximation (a `true` for a no-op cycle) is safe —
    /// it merely steps naively; `false` must be exact.
    fn can_progress(&self, now: Cycle) -> bool {
        // DRAM: a completion matures or a bank can issue a command.
        if self
            .channels
            .iter()
            .zip(&self.ch_quiet_until)
            .any(|(c, &quiet)| quiet <= now && c.can_progress(now))
        {
            return true;
        }
        // Networks: an arrival can move into an ejection queue.
        if self.reply_net.can_deliver(now)
            || self.pf_reply_net.can_deliver(now)
            || self.req_net.can_deliver(now)
            || self.pf_req_net.can_deliver(now)
        {
            return true;
        }
        // Reply ejection queues drain unconditionally (SMs always take
        // fills).
        if self.reply_net.has_ejected() || self.pf_reply_net.has_ejected() {
            return true;
        }
        // Request ejection heads move only if their partition has input
        // space for them.
        for p in 0..self.cfg.num_partitions {
            if self
                .req_net
                .peek(p)
                .is_some_and(|r| self.partitions[p].can_accept(r.kind))
            {
                return true;
            }
            if self
                .pf_req_net
                .peek(p)
                .is_some_and(|r| self.partitions[p].can_accept(r.kind))
            {
                return true;
            }
        }
        if self
            .sms
            .iter()
            .zip(&self.sm_quiet_until)
            .any(|(sm, &quiet)| quiet <= now && sm.can_progress(now, &self.kernel))
        {
            return true;
        }
        self.partitions.iter().enumerate().any(|(p, part)| {
            self.part_quiet_until[p] <= now
                && part.can_progress(now, &self.channels[self.cfg.channel_of_partition(p)])
        })
    }

    /// Earliest future cycle (strictly after `now`) at which any
    /// component can act on its own: a network arrival, a DRAM timer, a
    /// maturing hit pipe, a warp execution-latency timer, or a prefetch
    /// age-out. Everything else in the machine moves only as a
    /// consequence of one of these.
    ///
    /// Networks contribute their *credit-aware* progress bound rather
    /// than the raw arrival bound: a pipe arrival into a link whose
    /// ejection queue is out of credits merely joins the blocked queue —
    /// nothing observable changes, because the queue's consumer is
    /// provably quiescent for the whole window (the skip gate required
    /// `!can_progress`, which includes `has_ejected` on the reply nets
    /// and consumer-checked request heads, and a frozen consumer frees
    /// no credits). Horizon jumps therefore extend straight across
    /// backpressured spans; the stall events naive stepping would have
    /// recorded inside them are reconstructed analytically by
    /// [`Network::account_skipped_window`] in [`Self::skip_to`].
    fn horizon(&self, now: Cycle) -> Option<Cycle> {
        let nets = [
            self.req_net.earliest_progress(now),
            self.pf_req_net.earliest_progress(now),
            self.reply_net.earliest_progress(now),
            self.pf_reply_net.earliest_progress(now),
        ];
        nets.into_iter()
            .chain(self.sms.iter().map(|sm| sm.next_event(now)))
            .chain(self.partitions.iter().map(|p| p.next_event(now)))
            .chain(self.channels.iter().map(|c| c.next_event(now)))
            .flatten()
            .min()
    }

    /// Jump the clock from `now` to `target`, replicating the statistics
    /// side effects of the `target - now` quiescent naive steps being
    /// skipped. No architectural state changes in a quiescent cycle, so
    /// only per-cycle counters need accounting.
    fn skip_to(&mut self, now: Cycle, target: Cycle) {
        let delta = target - now;
        for sm in &mut self.sms {
            sm.account_skipped(delta);
        }
        for p in &mut self.partitions {
            p.account_skipped(delta);
        }
        // Each creditless link records one stall event per cycle its
        // pipe head sits arrived-but-blocked. Credit-aware horizons can
        // extend a window past a head's *arrival* (the arrival is a
        // non-event behind a frozen consumer), so the per-link window
        // accounting clamps each head's stall span to its own arrival
        // cycle — exactly what naive stepping would have recorded.
        self.req_net.account_skipped_window(now, target);
        self.pf_req_net.account_skipped_window(now, target);
        self.reply_net.account_skipped_window(now, target);
        self.pf_reply_net.account_skipped_window(now, target);
        self.skipped_cycles += delta;
        self.skip_events += 1;
        self.cycle = target;
    }

    /// Replace the bound kernel (the GPU must be drained between
    /// kernels; callers normally use [`Self::run_app`]).
    pub fn bind_kernel(&mut self, kernel: Kernel) {
        kernel.validate().expect("invalid kernel");
        for sm in &mut self.sms {
            sm.rebind(&kernel);
        }
        self.reset_quiescence_caches();
        self.ff_gate_open = true;
        self.gate_off_span = Self::GATE_WINDOW;
        self.gate_window_end = self.cycle + Self::GATE_WINDOW;
        self.gate_benefit = 0;
        self.kernel = kernel;
    }

    fn initial_fill(&mut self) {
        // Round-robin initial assignment (§II-B): one CTA at a time per
        // SM until each reaches its residency cap.
        let cap = self.sms[0].resident_cta_cap();
        let plan = self.distributor.initial_fill(self.cfg.num_sms, cap);
        for (sm, cta) in plan {
            let coord = self.kernel.cta_coord(cta);
            self.sms[sm].launch_cta(coord);
            self.sm_quiet_until[sm] = 0;
        }
        // Cache entries were zeroed outside phase 1; the cached minimum
        // must see it.
        self.sm_quiet_min = 0;
        self.sm_active_estimate = self.cfg.num_sms;
    }

    fn done(&self) -> bool {
        self.distributor.remaining() == 0
            && self.sms.iter().all(Sm::is_idle)
            && self.partitions.iter().all(MemoryPartition::idle)
            && self.req_net.in_flight() == 0
            && self.pf_req_net.in_flight() == 0
            && self.reply_net.in_flight() == 0
            && self.pf_reply_net.in_flight() == 0
            && self.channels.iter().all(|c| c.pending() == 0)
    }

    /// Worker count for this cycle: the configured `sim_threads`,
    /// clamped to the SM count, with an automatic sequential fallback
    /// when so few SMs are active that a barrier synchronisation would
    /// cost more than the parallel phase saves. Uses the previous
    /// cycle's activity estimate (maintained by the phase-1 merge)
    /// instead of rescanning the quiescence cache — one cycle of lag in
    /// a host-side scheduling hint. Both engines are bit-identical, so
    /// the per-cycle choice cannot perturb results.
    fn plan_threads(&self) -> usize {
        let t = self.sim_threads.min(self.cfg.num_sms);
        if t < 2 {
            return 1;
        }
        // The adaptive controller's per-window verdict overrides the
        // static thread request (measured, not guessed).
        if self.adaptive && !self.adapt_use_par {
            return 1;
        }
        if self.ff_active() && self.sm_active_estimate < 2 {
            return 1;
        }
        t
    }

    /// Whether this cycle runs with the fast-forward machinery live:
    /// requires both the mode flag and an open skip-rate gate.
    #[inline]
    fn ff_active(&self) -> bool {
        self.fast_forward && self.ff_gate_open
    }

    fn ensure_workers(&mut self, t: usize) {
        if self.completed_shards.len() < t {
            self.completed_shards.resize_with(t, Vec::new);
        }
        if self.staging.len() < t {
            // A shard can stage at most `icnt_bandwidth` requests per SM
            // per cycle, so this bound keeps staging allocation-free even
            // if one worker ends up owning every SM.
            let cap = self.cfg.num_sms * self.cfg.icnt_bandwidth as usize;
            self.staging.resize_with(t, || Ring::with_capacity(cap));
        }
        if self.sm_shard_min.len() < t {
            self.sm_shard_min.resize(t, Cycle::MAX);
            self.sm_shard_skips.resize(t, 0);
        }
        if self.sm_plan.len() != t + 1 {
            // Width changed (including seq↔par flips): restart from the
            // equal plan; measured costs re-skew it at the next
            // rebalance boundary.
            self.sm_plan = (0..=t).map(|w| w * self.cfg.num_sms / t).collect();
            self.sm_cost.fill(0);
            self.next_rebalance = self.cycle + self.rebalance_window;
        }
        if t > 1 && self.pool.as_ref().map(ShardPool::width) != Some(t) {
            let pool = ShardPool::with_affinity(t - 1, self.pin_workers);
            // One-time calibration: the measured empty-dispatch cost is
            // the adaptive controller's floor for "can parallel win".
            self.pool_dispatch_ns = pool.measure_dispatch_ns();
            self.pool = Some(pool);
        }
    }

    /// Advance the whole GPU one core cycle: the two fused parallel
    /// phases (SM-local + staging, staged injection + memory-local)
    /// separated by at most one barrier, then the serial tail.
    pub fn step(&mut self) {
        let now = self.cycle;
        let t = self.plan_threads();
        self.ensure_workers(t);

        // Phases 1+2: SM-local (parallel over SMs, staging outbound
        // requests per shard) and memory-local (parallel over channel
        // groups, claiming staged requests for owned channels). One pool
        // dispatch, one internal barrier — the only serial
        // synchronisation point inside the cycle.
        {
            let staging = self.staging.as_mut_ptr();
            let sm_ctx = SmPhase {
                sms: self.sms.as_mut_ptr(),
                reply: self.reply_net.links_mut().as_mut_ptr(),
                pf_reply: self.pf_reply_net.links_mut().as_mut_ptr(),
                quiet: self.sm_quiet_until.as_mut_ptr(),
                probe_at: self.sm_probe_at.as_mut_ptr(),
                probe_streak: self.sm_probe_streak.as_mut_ptr(),
                completed: self.completed_shards.as_mut_ptr(),
                staging,
                shard_min: self.sm_shard_min.as_mut_ptr(),
                shard_skips: self.sm_shard_skips.as_mut_ptr(),
                plan: self.sm_plan.as_ptr(),
                cost: self.sm_cost.as_mut_ptr(),
                kernel: &self.kernel,
                num_sms: self.cfg.num_sms,
                threads: t,
                bw: self.cfg.icnt_bandwidth,
                fast_forward: self.ff_active(),
                now,
            };
            let mem_ctx = MemPhase {
                partitions: self.partitions.as_mut_ptr(),
                channels: self.channels.as_mut_ptr(),
                req: self.req_net.links_mut().as_mut_ptr(),
                pf_req: self.pf_req_net.links_mut().as_mut_ptr(),
                part_quiet: self.part_quiet_until.as_mut_ptr(),
                part_probe_at: self.part_probe_at.as_mut_ptr(),
                part_probe_streak: self.part_probe_streak.as_mut_ptr(),
                ch_quiet: self.ch_quiet_until.as_mut_ptr(),
                ch_probe_at: self.ch_probe_at.as_mut_ptr(),
                ch_probe_streak: self.ch_probe_streak.as_mut_ptr(),
                scratch: self.dram_scratch.as_mut_ptr(),
                staging: staging as *const _,
                num_sm_shards: t,
                cfg: &self.cfg,
                num_partitions: self.cfg.num_partitions,
                num_channels: self.cfg.num_dram_channels,
                threads: t.min(self.cfg.num_dram_channels),
                bw: self.cfg.icnt_bandwidth,
                latency: self.cfg.icnt_latency as Cycle,
                fast_forward: self.ff_active(),
                now,
            };
            if t > 1 {
                let pool = self.pool.as_ref().expect("pool ensured");
                // SAFETY: each worker index maps to a disjoint SM shard
                // in phase 1 and a disjoint channel group in phase 2
                // (idle workers get an empty group); the pool barrier
                // orders every phase-1 staging write before any phase-2
                // read.
                pool.run2(
                    &|w| unsafe { sm_ctx.run_shard(w) },
                    &|w| unsafe { mem_ctx.run_shard(w) },
                );
            } else {
                // SAFETY: single caller covers every shard, in phase
                // order.
                unsafe {
                    sm_ctx.run_shard(0);
                    mem_ctx.run_shard(0);
                }
            }
        }

        // Serial tail (a): merge the per-shard quiescence summaries into
        // the cached machine-wide minimum, the gate-benefit sample (each
        // quiet SM this cycle is one avoided pipeline walk), and the
        // next cycle's activity estimate. All host-side.
        let mut min_quiet = Cycle::MAX;
        let mut skips = 0u64;
        for w in 0..t {
            min_quiet = min_quiet.min(self.sm_shard_min[w]);
            skips += self.sm_shard_skips[w];
        }
        self.sm_quiet_min = min_quiet;
        self.sm_active_estimate = self.cfg.num_sms.saturating_sub(skips as usize);
        self.gate_benefit += skips;

        // Serial tail (b): partitions → reply networks, in fixed
        // partition order (the merge that keeps reply-link packet order
        // identical to sequential stepping), then demand-driven CTA
        // refill (Fig. 3): completed CTAs free slots; the distributor
        // hands out the next CTA ids.
        for p in 0..self.cfg.num_partitions {
            for _ in 0..self.cfg.icnt_bandwidth {
                let Some(reply) = self.partitions[p].reply_out.pop() else {
                    break;
                };
                self.reply_net.send(now, reply.sm, reply);
            }
            for _ in 0..self.cfg.icnt_bandwidth {
                let Some(reply) = self.partitions[p].pf_reply_out.pop() else {
                    break;
                };
                self.pf_reply_net.send(now, reply.sm, reply);
            }
        }
        if self.completed_shards.iter().any(|c| !c.is_empty()) {
            self.refill_ctas();
            for c in &mut self.completed_shards {
                c.clear();
            }
        }

        // Serial tail (c): every staged request was claimed by exactly
        // one phase-2 worker; clear the rings so next cycle (possibly
        // with a different worker count) starts from empty.
        for stage in &mut self.staging {
            stage.clear();
        }

        // Serial tail (d): at rebalance boundaries, rebuild the shard
        // plan from the window's measured per-SM cost. Serial, host-only
        // — the plan changes which worker steps which SM, never what any
        // SM computes, so bit-identity is untouched by construction.
        if t > 1 && now >= self.next_rebalance {
            self.sm_plan = plan_from_costs(&self.sm_cost, t);
            self.sm_cost.fill(0);
            self.next_rebalance = now + self.rebalance_window;
        }

        self.cycle += 1;
    }

    fn refill_ctas(&mut self) {
        let mut launched = false;
        for (i, sm) in self.sms.iter_mut().enumerate() {
            while sm.has_free_cta_slot() {
                match self.distributor.next_cta() {
                    Some(id) => {
                        let coord = self.kernel.cta_coord(id);
                        sm.launch_cta(coord);
                        self.sm_quiet_until[i] = 0;
                        launched = true;
                    }
                    None => break,
                }
            }
        }
        if launched {
            // A launch zeroed cache entries after the phase-1 merge ran;
            // keep the cached minimum consistent with the entries.
            self.sm_quiet_min = 0;
        }
    }

    /// Aggregate statistics across SMs, partitions, channels, networks.
    /// Per-shard counters (SM stats, partition stats, channel counters,
    /// per-lane network stalls) merge here in fixed component order —
    /// the only cross-shard statistics flow in the engine.
    pub fn collect_stats(&mut self) -> Stats {
        let mut total = Stats::default();
        for sm in &mut self.sms {
            sm.finalize();
            total.absorb(&sm.stats);
        }
        total.cycles = self.cycle;
        for p in &self.partitions {
            total.l2_accesses += p.stats.accesses;
            total.l2_hits += p.stats.hits;
            total.l2_misses += p.stats.misses;
            total.dram_queue_stalls += p.stats.dram_queue_stalls;
        }
        for c in &self.channels {
            total.dram_reads += c.reads;
            total.dram_writes += c.writes;
            total.dram_row_hits += c.row_hits;
            total.dram_row_misses += c.row_misses;
        }
        total.icnt_replies = self
            .partitions
            .iter()
            .map(|p| p.stats.accesses)
            .sum::<u64>()
            .min(total.icnt_requests);
        total.icnt_stalls = self.req_net.stall_events()
            + self.pf_req_net.stall_events()
            + self.reply_net.stall_events()
            + self.pf_reply_net.stall_events();
        total
    }

    /// Per-subsystem port/link occupancy and backpressure report:
    /// high-water marks, credit-stall counts, and growth-valve
    /// activations aggregated over every ring in the memory path.
    /// Host-side reporting only — fast-forward changes how often stalled
    /// producers retry, so these counters legitimately differ between
    /// engines and are *not* part of the bit-identity contract (unlike
    /// [`Stats`]).
    pub fn link_report(&self) -> LinkReport {
        let mut sm_ports = PortSnapshot::default();
        for sm in &self.sms {
            sm_ports.absorb(sm.port_snapshot());
        }
        let mut partition_ports = PortSnapshot::default();
        for p in &self.partitions {
            partition_ports.absorb(p.port_snapshot());
        }
        let mut dram_queues = PortSnapshot::default();
        for c in &self.channels {
            dram_queues.absorb(c.port_snapshot());
        }
        let mut staging = PortSnapshot::default();
        for s in &self.staging {
            staging.absorb(PortSnapshot {
                high_water: s.high_water(),
                credit_stalls: 0,
                grows: s.grows(),
            });
        }
        LinkReport {
            req_net: self.req_net.snapshot(),
            pf_req_net: self.pf_req_net.snapshot(),
            reply_net: self.reply_net.snapshot(),
            pf_reply_net: self.pf_reply_net.snapshot(),
            sm_ports,
            partition_ports,
            dram_queues,
            staging,
        }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The kernel bound to this GPU.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

/// Worker count from the environment: `GPU_SIM_SEQ=1` forces the
/// sequential engine; otherwise `GPU_SIM_THREADS=N` selects the
/// parallel engine with `N` workers (default 1).
fn threads_from_env() -> usize {
    if std::env::var_os("GPU_SIM_SEQ").is_some_and(|v| v != "0") {
        return 1;
    }
    std::env::var("GPU_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Adaptive engine selection from the environment: on unless
/// `GPU_SIM_ADAPT` is set to `0`/`off`/`false`.
fn adaptive_from_env() -> bool {
    match std::env::var("GPU_SIM_ADAPT") {
        Ok(v) => !matches!(v.as_str(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Compile-time guarantee that everything the phase contexts hand to
/// pool workers is safe to move across threads.
#[allow(dead_code)]
fn assert_shard_state_is_send() {
    fn ok<T: Send>() {}
    ok::<Sm>();
    ok::<MemoryPartition>();
    ok::<DramChannel>();
    ok::<Link<MemRequest>>();
    ok::<Link<MemReply>>();
    ok::<Ring<MemRequest>>();
    ok::<Vec<CtaCoord>>();
    ok::<Vec<DramRequest>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};
    use crate::prefetch::null_factory;

    fn stride_kernel(ctas: u32, warps_per_cta: u32) -> Kernel {
        let pat = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 1 << 16 },
            warp_stride: 128,
            lane_stride: 4,
            iter_stride: 0,
        });
        let prog = ProgramBuilder::new().alu(4).ld(pat).wait().alu(4).build();
        Kernel::new("stride", (ctas, 1), warps_per_cta * 32, prog)
    }

    #[test]
    fn small_kernel_completes() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory());
        let stats = gpu.run(1_000_000);
        assert_eq!(stats.ctas_launched, 8);
        assert_eq!(stats.ctas_completed, 8);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0);
        // 8 CTAs × 4 warps × 3 counted instructions (WaitLoads is free).
        assert_eq!(stats.warp_instructions, 8 * 4 * 3);
    }

    #[test]
    fn all_loads_reach_memory_once_per_line() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(4, 2), &*null_factory());
        let stats = gpu.run(1_000_000);
        // 4 CTAs × 2 warps, distinct lines → all miss, all read DRAM.
        assert_eq!(stats.l1d_demand_accesses, 8);
        assert_eq!(stats.l1d_demand_misses, 8);
        assert_eq!(stats.dram_reads, 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = GpuConfig::test_small();
        let s1 = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        let s2 = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        assert_eq!(s1, s2);
    }

    #[test]
    fn demand_driven_distribution_launches_all_ctas() {
        // More CTAs than resident capacity forces demand-driven refill.
        let cfg = GpuConfig::test_small();
        let kernel = stride_kernel(64, 4);
        let mut gpu = Gpu::new(cfg, kernel, &*null_factory());
        let stats = gpu.run(5_000_000);
        assert_eq!(stats.ctas_completed, 64);
    }

    #[test]
    fn cycle_cap_stops_runaway() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
        let stats = gpu.run(100);
        assert!(stats.cycles <= 100);
    }

    #[test]
    fn multi_kernel_app_runs_both_passes_with_shared_caches() {
        let cfg = GpuConfig::test_small();
        // Pass 1 writes nothing we model; pass 2 re-reads pass 1's data:
        // the second kernel must find it warm.
        let k1 = stride_kernel(8, 4);
        let k2 = {
            // Same addresses, different geometry (8 warps per CTA).
            let pat = AddrPattern::Affine(AffinePattern {
                base: 0,
                cta_term: CtaTerm::Linear { pitch: 1 << 15 },
                warp_stride: 128,
                lane_stride: 4,
                iter_stride: 0,
            });
            let prog = ProgramBuilder::new().ld(pat).wait().alu(2).build();
            Kernel::new("pass2", (4, 1), 256, prog)
        };
        let mut gpu = Gpu::new(cfg, k1.clone(), &*null_factory());
        let stats = gpu.run_app(&[k1.clone(), k2], 2_000_000);
        assert_eq!(stats.ctas_completed, 8 + 4);
        // Pass 1 reads 32 unique lines; pass 2's 4×8 warps re-read lines
        // inside the same footprint — DRAM reads must not double.
        let solo = Gpu::new(GpuConfig::test_small(), k1, &*null_factory()).run(1_000_000);
        assert!(
            stats.dram_reads < 2 * solo.dram_reads + 8,
            "second pass should hit caches: {} vs solo {}",
            stats.dram_reads,
            solo.dram_reads
        );
    }

    #[test]
    #[should_panic(expected = "rebind requires a drained SM")]
    fn rebind_rejects_a_busy_sm() {
        let cfg = GpuConfig::test_small();
        let k = stride_kernel(8, 4);
        let mut gpu = Gpu::new(cfg, k.clone(), &*null_factory());
        // Start but don't finish, then try to bind mid-flight.
        gpu.initial_fill();
        for _ in 0..10 {
            gpu.step();
        }
        gpu.bind_kernel(k);
    }

    #[test]
    fn relaunches_find_a_warm_l2() {
        // The whole-application model: the second launch re-reads the
        // same addresses and must be served by L2, not DRAM.
        let cfg = GpuConfig::test_small();
        let one = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        let two = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory()).run_launches(2, 1_000_000);
        assert_eq!(two.ctas_completed, 2 * one.ctas_completed);
        assert_eq!(
            two.dram_reads, one.dram_reads,
            "second launch must not re-read DRAM"
        );
        // The relaunch is served from cache (L1 or L2, depending on how
        // much the tiny test config retains).
        let cached_one = one.l1d_demand_hits + one.l2_hits;
        let cached_two = two.l1d_demand_hits + two.l2_hits;
        assert!(cached_two > cached_one, "{cached_two} vs {cached_one}");
    }

    #[test]
    fn fast_forward_is_bit_identical_to_naive_stepping() {
        let cfg = GpuConfig::test_small();
        let mut fast = Gpu::new(cfg.clone(), stride_kernel(16, 4), &*null_factory());
        fast.set_fast_forward(true);
        let mut naive = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory());
        naive.set_fast_forward(false);
        assert_eq!(fast.run(1_000_000), naive.run(1_000_000));
    }

    #[test]
    fn fast_forward_is_bit_identical_across_relaunches() {
        let cfg = GpuConfig::test_small();
        let mut fast = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory());
        fast.set_fast_forward(true);
        let mut naive = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory());
        naive.set_fast_forward(false);
        assert_eq!(
            fast.run_launches(3, 1_000_000),
            naive.run_launches(3, 1_000_000)
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_under_a_cycle_cap() {
        // The cap can land inside a skip window; the jump must clamp to
        // it and account the partial window exactly as naive spinning.
        for cap in [50, 137, 500] {
            let cfg = GpuConfig::test_small();
            let mut fast = Gpu::new(cfg.clone(), stride_kernel(64, 4), &*null_factory());
            fast.set_fast_forward(true);
            let mut naive = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
            naive.set_fast_forward(false);
            assert_eq!(fast.run(cap), naive.run(cap), "cap {cap}");
        }
    }

    #[test]
    fn relaunch_cycles_are_cheaper_when_warm() {
        let cfg = GpuConfig::test_small();
        let one = Gpu::new(cfg.clone(), stride_kernel(16, 4), &*null_factory()).run(1_000_000);
        let two = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory()).run_launches(2, 1_000_000);
        let second = two.cycles - one.cycles;
        assert!(
            second < one.cycles,
            "warm launch ({second}) should be faster than cold ({})",
            one.cycles
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_across_thread_counts() {
        // The real grid lives in the metrics differential suite; this is
        // the gpu-level smoke for both fast-forward settings.
        for ff in [true, false] {
            let mut reference: Option<Stats> = None;
            for threads in [1usize, 2, 3, 4] {
                let cfg = GpuConfig::test_small();
                let mut gpu = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
                gpu.set_fast_forward(ff);
                gpu.set_sim_threads(threads);
                gpu.set_adaptive(false); // force the parallel engine on
                let stats = gpu.run(1_000_000);
                match &reference {
                    None => reference = Some(stats),
                    Some(want) => {
                        assert_eq!(&stats, want, "threads={threads} ff={ff} diverged")
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_engine_matches_under_cycle_caps_and_relaunches() {
        for cap in [137, 5_000] {
            let cfg = GpuConfig::test_small();
            let mut seq = Gpu::new(cfg.clone(), stride_kernel(32, 4), &*null_factory());
            seq.set_sim_threads(1);
            let mut par = Gpu::new(cfg, stride_kernel(32, 4), &*null_factory());
            par.set_sim_threads(3);
            par.set_adaptive(false);
            assert_eq!(
                seq.run_launches(2, cap),
                par.run_launches(2, cap),
                "cap {cap}"
            );
        }
    }

    #[test]
    fn link_report_sees_traffic_and_steady_state_never_grows() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory());
        gpu.set_sim_threads(2);
        gpu.set_adaptive(false);
        let stats = gpu.run(1_000_000);
        assert_eq!(stats.ctas_completed, 16);
        let report = gpu.link_report();
        assert!(report.req_net.high_water > 0, "demand traffic flowed");
        assert!(report.reply_net.high_water > 0, "replies flowed");
        assert!(report.sm_ports.high_water > 0);
        assert!(report.partition_ports.high_water > 0);
        assert!(report.dram_queues.high_water > 0);
        assert!(report.staging.high_water > 0, "fused injection staged requests");
        // Every ring on the memory path is sized from its producers'
        // in-flight bounds, so a run must never hit the growth valve.
        assert_eq!(report.total().grows, 0, "steady state must not allocate");
    }

    #[test]
    fn plan_from_costs_balances_and_stays_contiguous() {
        // All-equal costs reduce to the equal-count plan.
        assert_eq!(plan_from_costs(&[0; 15], 4), vec![0, 4, 8, 12, 15]);
        // One hot SM pulls a whole shard to itself.
        let mut costs = vec![0u64; 8];
        costs[0] = 1_000;
        let plan = plan_from_costs(&costs, 4);
        assert_eq!(plan[0], 0);
        assert_eq!(plan[4], 8);
        assert_eq!(plan[1], 1, "the hot SM should own shard 0 alone");
        // Invariants for arbitrary-ish inputs: full coverage, ascending.
        for t in 1..=6 {
            for costs in [
                vec![0u64; 6],
                vec![5, 0, 0, 0, 0, 5],
                vec![1, 2, 3, 4, 5, 6],
                vec![100, 1, 100, 1, 100, 1],
            ] {
                let plan = plan_from_costs(&costs, t);
                assert_eq!(plan.len(), t + 1);
                assert_eq!(plan[0], 0);
                assert_eq!(plan[t], costs.len());
                assert!(plan.windows(2).all(|w| w[0] <= w[1]), "{plan:?}");
            }
        }
    }

    #[test]
    fn skewed_shard_plans_are_bit_identical() {
        // A deliberately terrible plan (one worker owns almost every SM)
        // must still produce identical stats — the contiguous-ascending
        // property, not balance, is what the equivalence proof uses.
        // test_small has only 2 SMs; widen it so the skew is real.
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 8;
        let n = cfg.num_sms;
        let mut seq = Gpu::new(cfg.clone(), stride_kernel(32, 4), &*null_factory());
        seq.set_sim_threads(1);
        let mut par = Gpu::new(cfg, stride_kernel(32, 4), &*null_factory());
        par.set_sim_threads(3);
        par.set_adaptive(false);
        // Disable fast-forward on both sides so the near-drain
        // sequential fallback can't swap the skewed plan out mid-run.
        seq.set_fast_forward(false);
        par.set_fast_forward(false);
        // Keep the skewed plan alive for the whole run.
        par.set_shard_rebalance_window(1_000_000);
        par.set_shard_plan(vec![0, 1, 2, n]);
        assert_eq!(seq.run(1_000_000), par.run(1_000_000));
    }

    #[test]
    fn frequent_rebalancing_is_bit_identical() {
        // Rebalance every few cycles so many different measured plans
        // are exercised inside one run.
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 8;
        let mut seq = Gpu::new(cfg.clone(), stride_kernel(32, 4), &*null_factory());
        seq.set_sim_threads(1);
        let mut par = Gpu::new(cfg, stride_kernel(32, 4), &*null_factory());
        par.set_sim_threads(4);
        par.set_adaptive(false);
        par.set_shard_rebalance_window(7);
        assert_eq!(seq.run(1_000_000), par.run(1_000_000));
    }

    #[test]
    fn adaptive_engine_selection_is_bit_identical() {
        // The controller may switch engines mid-run at window
        // boundaries; every mixture must match pure-sequential.
        let cfg = GpuConfig::test_small();
        let mut seq = Gpu::new(cfg.clone(), stride_kernel(64, 4), &*null_factory());
        seq.set_sim_threads(1);
        seq.set_adaptive(false);
        let mut adaptive = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
        adaptive.set_sim_threads(4);
        adaptive.set_adaptive(true);
        assert_eq!(seq.run(1_000_000), adaptive.run(1_000_000));
    }

    #[test]
    fn pinning_choice_is_bit_identical() {
        let cfg = GpuConfig::test_small();
        let mut reference: Option<Stats> = None;
        for pin in [false, true] {
            let mut gpu = Gpu::new(cfg.clone(), stride_kernel(32, 4), &*null_factory());
            gpu.set_sim_threads(2);
            gpu.set_adaptive(false);
            gpu.set_pinning(pin);
            let stats = gpu.run(1_000_000);
            match &reference {
                None => reference = Some(stats),
                Some(want) => assert_eq!(&stats, want, "pin={pin} diverged"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan must cover every SM")]
    fn malformed_shard_plan_is_rejected() {
        let cfg = GpuConfig::test_small(); // 2 SMs
        let mut gpu = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory());
        gpu.set_sim_threads(2);
        gpu.set_shard_plan(vec![0, 1, 1]);
    }

    #[test]
    fn sim_threads_can_change_between_runs() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg.clone(), stride_kernel(16, 4), &*null_factory());
        gpu.set_sim_threads(2);
        let a = gpu.run(1_000_000);
        let mut gpu2 = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory());
        gpu2.set_sim_threads(4);
        gpu2.set_sim_threads(1);
        assert_eq!(gpu2.sim_threads(), 1);
        let b = gpu2.run(1_000_000);
        assert_eq!(a, b);
    }
}
