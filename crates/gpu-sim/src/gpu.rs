//! Whole-GPU simulation loop: SMs, two interconnect networks, memory
//! partitions, DRAM channels, and the CTA distributor.

use crate::config::GpuConfig;
use crate::cta_scheduler::CtaDistributor;
use crate::dram::{DramChannel, DramRequest};
use crate::interconnect::{MemReply, MemRequest, Network};
use crate::kernel::Kernel;
use crate::partition::MemoryPartition;
use crate::prefetch::PrefetcherFactory;
use crate::sched::make_scheduler;
use crate::sm::Sm;
use crate::stats::Stats;
use crate::types::{CtaCoord, Cycle};

/// Hard ceiling on simulated cycles; a run exceeding it returns what it
/// has (mirrors the paper's one-billion-instruction cap).
pub const DEFAULT_MAX_CYCLES: Cycle = 50_000_000;

/// A complete GPU bound to one kernel launch.
pub struct Gpu {
    cfg: GpuConfig,
    kernel: Kernel,
    sms: Vec<Sm>,
    req_net: Network<MemRequest>,
    /// Low-priority virtual channel for prefetch requests: backed-up
    /// prefetch traffic must never head-of-line block demands.
    pf_req_net: Network<MemRequest>,
    reply_net: Network<MemReply>,
    /// Low-priority virtual channel for prefetch fills.
    pf_reply_net: Network<MemReply>,
    partitions: Vec<MemoryPartition>,
    channels: Vec<DramChannel>,
    distributor: CtaDistributor,
    cycle: Cycle,
    dram_done_scratch: Vec<DramRequest>,
    completed_scratch: Vec<CtaCoord>,
    /// Event-horizon fast-forward: when no component can make progress,
    /// jump the clock to the next event instead of stepping cycle by
    /// cycle. Statistics are bit-identical either way; disabled by the
    /// `GPU_SIM_NO_SKIP` environment variable (or [`Self::set_fast_forward`]).
    fast_forward: bool,
    /// Cycles covered by horizon jumps (host diagnostics, not `Stats`).
    skipped_cycles: u64,
    /// Number of horizon jumps taken.
    skip_events: u64,
    /// Per-SM quiescence cache: SM `i` provably cannot make progress
    /// before `sm_quiet_until[i]` unless an external event (a fill, a
    /// CTA launch, a rebind) touches it first — each of those resets the
    /// entry to 0. Lets the step loop replace a stalled SM's whole
    /// pipeline walk with O(1) analytic stat accounting.
    sm_quiet_until: Vec<Cycle>,
    /// Per-partition twin of `sm_quiet_until`: reset whenever the
    /// partition accepts a request, receives a DRAM fill, or its channel
    /// steps (the only external ways a partition un-stalls).
    part_quiet_until: Vec<Cycle>,
    /// Per-channel twin: a channel's timers move only under its own
    /// `step`, so the cache is reset only when a partition pushes a new
    /// request into it.
    ch_quiet_until: Vec<Cycle>,
}

impl Gpu {
    /// Build a GPU running `kernel` with per-SM prefetchers from
    /// `prefetcher_factory`.
    pub fn new(cfg: GpuConfig, kernel: Kernel, prefetcher_factory: &PrefetcherFactory) -> Self {
        cfg.validate();
        kernel.validate().expect("invalid kernel");
        let sms = (0..cfg.num_sms)
            .map(|id| {
                Sm::new(
                    id,
                    &cfg,
                    &kernel,
                    make_scheduler(&cfg),
                    prefetcher_factory(id),
                )
            })
            .collect::<Vec<_>>();
        let req_net = Network::new(
            cfg.num_partitions,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
        );
        let pf_req_net = Network::new(
            cfg.num_partitions,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
        );
        let reply_net = Network::new(
            cfg.num_sms,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
        );
        let pf_reply_net = Network::new(
            cfg.num_sms,
            cfg.icnt_latency,
            cfg.icnt_queue_depth,
            cfg.icnt_bandwidth,
        );
        let partitions = (0..cfg.num_partitions)
            .map(|id| MemoryPartition::new(id, &cfg))
            .collect();
        let channels = (0..cfg.num_dram_channels)
            .map(|_| DramChannel::new(&cfg))
            .collect();
        let distributor = CtaDistributor::new(kernel.num_ctas());
        let num_sms = cfg.num_sms;
        let num_partitions = cfg.num_partitions;
        let num_channels = cfg.num_dram_channels;
        Gpu {
            cfg,
            kernel,
            sms,
            req_net,
            pf_req_net,
            reply_net,
            pf_reply_net,
            partitions,
            channels,
            distributor,
            cycle: 0,
            dram_done_scratch: Vec::new(),
            completed_scratch: Vec::new(),
            fast_forward: std::env::var_os("GPU_SIM_NO_SKIP").is_none(),
            skipped_cycles: 0,
            skip_events: 0,
            sm_quiet_until: vec![0; num_sms],
            part_quiet_until: vec![0; num_partitions],
            ch_quiet_until: vec![0; num_channels],
        }
    }

    /// Simulated cycles covered by horizon jumps and the number of
    /// jumps taken (host-side diagnostics; not part of [`Stats`]).
    pub fn skip_counters(&self) -> (u64, u64) {
        (self.skipped_cycles, self.skip_events)
    }

    /// Enable or disable event-horizon fast-forward in-process (tests
    /// use this to compare against naive stepping without touching the
    /// environment).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
        self.sm_quiet_until.fill(0);
        self.part_quiet_until.fill(0);
        self.ch_quiet_until.fill(0);
    }

    /// Current simulated cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Run until the kernel drains or `max_cycles` elapse; returns the
    /// aggregated statistics.
    pub fn run(&mut self, max_cycles: Cycle) -> Stats {
        self.run_launches(1, max_cycles)
    }

    /// Run the kernel `launches` times back to back with persistent
    /// caches — GPU applications launch iterative kernels repeatedly
    /// (time steps, frontier sweeps, training epochs), so later launches
    /// find their data warm in L2. This mirrors whole-application
    /// simulation in GPGPU-Sim.
    pub fn run_launches(&mut self, launches: u32, max_cycles: Cycle) -> Stats {
        assert!(launches > 0);
        for _ in 0..launches {
            self.distributor = CtaDistributor::new(self.kernel.num_ctas());
            self.initial_fill();
            self.advance_until_done(max_cycles);
            if self.cycle >= max_cycles {
                break;
            }
        }
        self.collect_stats()
    }

    /// Run with the default cycle ceiling.
    pub fn run_to_completion(&mut self) -> Stats {
        self.run(DEFAULT_MAX_CYCLES)
    }

    /// Run a multi-kernel application (§II-A): the kernels execute back
    /// to back with persistent caches, like dependent passes of one
    /// program (e.g. the row and column passes of a separable
    /// convolution, or forward/backward layers of training).
    pub fn run_app(&mut self, kernels: &[Kernel], max_cycles: Cycle) -> Stats {
        assert!(!kernels.is_empty());
        for k in kernels {
            self.bind_kernel(k.clone());
            self.distributor = CtaDistributor::new(self.kernel.num_ctas());
            self.initial_fill();
            self.advance_until_done(max_cycles);
            if self.cycle >= max_cycles {
                break;
            }
        }
        self.collect_stats()
    }

    /// Drive the clock until the bound kernel drains or `max_cycles`
    /// elapse. With fast-forward enabled, cycles in which no component
    /// can make progress are skipped in one hop to the event horizon —
    /// the earliest future cycle at which anything can happen — with the
    /// per-cycle statistics those naive steps would have accumulated
    /// accounted analytically. The resulting [`Stats`] are bit-identical
    /// to naive stepping.
    fn advance_until_done(&mut self, max_cycles: Cycle) {
        while !self.done() && self.cycle < max_cycles {
            let now = self.cycle;
            // Machine-wide quiescence requires every SM quiescent, so the
            // cheap per-SM cache gates the full probe: in busy phases the
            // per-cycle overhead is one scan of `sm_quiet_until`. The
            // same scan yields the nearest cached SM event — an upper
            // bound on how far a skip could jump (the horizon takes the
            // min over these and more). When that bound is under
            // `MIN_PROFITABLE_SKIP`, the `can_progress` probe plus the
            // `horizon` walk would cost more host time than the handful
            // of simulated cycles they could skip, so short gaps are
            // stepped naively. Both paths account identical statistics,
            // so the backoff cannot perturb results.
            if self.fast_forward {
                let min_quiet = self.sm_quiet_until.iter().copied().min().unwrap_or(0);
                if min_quiet > now
                    && min_quiet - now >= Self::MIN_PROFITABLE_SKIP
                    && !self.can_progress(now)
                {
                    // Nothing can happen before the horizon. `None` means
                    // a deadlocked configuration: jump straight to the
                    // cap, exactly as the naive loop would spin to it.
                    let target = self.horizon(now).unwrap_or(max_cycles).min(max_cycles);
                    debug_assert!(target > now, "horizon must be in the future");
                    self.skip_to(now, target);
                    continue;
                }
            }
            self.step();
        }
    }

    /// Smallest estimated jump worth the fast-forward machinery. Tuned
    /// on SCN (compute-bound, short quiescent gaps between execution
    /// timers), where probing every 1–3-cycle gap made fast-forward a
    /// net loss.
    const MIN_PROFITABLE_SKIP: Cycle = 8;

    /// Whether a [`Self::step`] at `now` would change any state anywhere
    /// in the machine. Ordered cheapest-first; each arm mirrors one step
    /// phase. Over-approximation (a `true` for a no-op cycle) is safe —
    /// it merely steps naively; `false` must be exact.
    fn can_progress(&self, now: Cycle) -> bool {
        // DRAM: a completion matures or a bank can issue a command.
        if self
            .channels
            .iter()
            .zip(&self.ch_quiet_until)
            .any(|(c, &quiet)| quiet <= now && c.can_progress(now))
        {
            return true;
        }
        // Networks: an arrival can move into an ejection queue.
        if self.reply_net.can_deliver(now)
            || self.pf_reply_net.can_deliver(now)
            || self.req_net.can_deliver(now)
            || self.pf_req_net.can_deliver(now)
        {
            return true;
        }
        // Reply ejection queues drain unconditionally (SMs always take
        // fills).
        if self.reply_net.has_ejected() || self.pf_reply_net.has_ejected() {
            return true;
        }
        // Request ejection heads move only if their partition has input
        // space for them.
        for p in 0..self.cfg.num_partitions {
            if self
                .req_net
                .peek(p)
                .is_some_and(|r| self.partitions[p].can_accept(r.kind))
            {
                return true;
            }
            if self
                .pf_req_net
                .peek(p)
                .is_some_and(|r| self.partitions[p].can_accept(r.kind))
            {
                return true;
            }
        }
        if self
            .sms
            .iter()
            .zip(&self.sm_quiet_until)
            .any(|(sm, &quiet)| quiet <= now && sm.can_progress(now, &self.kernel))
        {
            return true;
        }
        self.partitions.iter().enumerate().any(|(p, part)| {
            self.part_quiet_until[p] <= now
                && part.can_progress(now, &self.channels[self.cfg.channel_of_partition(p)])
        })
    }

    /// Earliest future cycle (strictly after `now`) at which any
    /// component can act on its own: a network arrival, a DRAM timer, a
    /// maturing hit pipe, a warp execution-latency timer, or a prefetch
    /// age-out. Everything else in the machine moves only as a
    /// consequence of one of these.
    fn horizon(&self, now: Cycle) -> Option<Cycle> {
        let nets = [
            self.req_net.earliest_arrival(now),
            self.pf_req_net.earliest_arrival(now),
            self.reply_net.earliest_arrival(now),
            self.pf_reply_net.earliest_arrival(now),
        ];
        nets.into_iter()
            .chain(self.sms.iter().map(|sm| sm.next_event(now)))
            .chain(self.partitions.iter().map(|p| p.next_event(now)))
            .chain(self.channels.iter().map(|c| c.next_event(now)))
            .flatten()
            .min()
    }

    /// Jump the clock from `now` to `target`, replicating the statistics
    /// side effects of the `target - now` quiescent naive steps being
    /// skipped. No architectural state changes in a quiescent cycle, so
    /// only per-cycle counters need accounting.
    fn skip_to(&mut self, now: Cycle, target: Cycle) {
        let delta = target - now;
        for sm in &mut self.sms {
            sm.account_skipped(delta);
        }
        for p in &mut self.partitions {
            p.account_skipped(delta);
        }
        // Each network records one stall event per blocked ejection head
        // per cycle; the blocked set cannot change inside the window.
        let b = self.req_net.blocked_heads(now);
        self.req_net.stall_events += delta * b;
        let b = self.pf_req_net.blocked_heads(now);
        self.pf_req_net.stall_events += delta * b;
        let b = self.reply_net.blocked_heads(now);
        self.reply_net.stall_events += delta * b;
        let b = self.pf_reply_net.blocked_heads(now);
        self.pf_reply_net.stall_events += delta * b;
        self.skipped_cycles += delta;
        self.skip_events += 1;
        self.cycle = target;
    }

    /// Replace the bound kernel (the GPU must be drained between
    /// kernels; callers normally use [`Self::run_app`]).
    pub fn bind_kernel(&mut self, kernel: Kernel) {
        kernel.validate().expect("invalid kernel");
        for sm in &mut self.sms {
            sm.rebind(&kernel);
        }
        self.sm_quiet_until.fill(0);
        self.part_quiet_until.fill(0);
        self.ch_quiet_until.fill(0);
        self.kernel = kernel;
    }

    fn initial_fill(&mut self) {
        // Round-robin initial assignment (§II-B): one CTA at a time per
        // SM until each reaches its residency cap.
        let cap = self.sms[0].resident_cta_cap();
        let plan = self.distributor.initial_fill(self.cfg.num_sms, cap);
        for (sm, cta) in plan {
            let coord = self.kernel.cta_coord(cta);
            self.sms[sm].launch_cta(coord);
            self.sm_quiet_until[sm] = 0;
        }
    }

    fn done(&self) -> bool {
        self.distributor.remaining() == 0
            && self.sms.iter().all(Sm::is_idle)
            && self.partitions.iter().all(MemoryPartition::idle)
            && self.req_net.in_flight() == 0
            && self.pf_req_net.in_flight() == 0
            && self.reply_net.in_flight() == 0
            && self.pf_reply_net.in_flight() == 0
            && self.channels.iter().all(|c| c.pending() == 0)
    }

    /// Advance the whole GPU one core cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        let mut completed = std::mem::take(&mut self.completed_scratch);
        completed.clear();

        // 1. Deliver fills to SMs: demand replies first, then the
        // prefetch virtual channel.
        self.reply_net.step(now);
        self.pf_reply_net.step(now);
        if self.reply_net.has_ejected() || self.pf_reply_net.has_ejected() {
            for sm in 0..self.cfg.num_sms {
                for _ in 0..self.cfg.icnt_bandwidth {
                    match self.reply_net.pop_one(sm) {
                        Some(reply) => {
                            self.sms[sm].on_fill(now, reply.line);
                            self.sm_quiet_until[sm] = 0;
                        }
                        None => break,
                    }
                }
                for _ in 0..self.cfg.icnt_bandwidth {
                    match self.pf_reply_net.pop_one(sm) {
                        Some(reply) => {
                            self.sms[sm].on_fill(now, reply.line);
                            self.sm_quiet_until[sm] = 0;
                        }
                        None => break,
                    }
                }
            }
        }

        // 2. SM pipelines. With fast-forward, an SM that provably cannot
        // progress this cycle is not stepped: its per-cycle counters are
        // accounted analytically and the verdict is cached until its own
        // next event (external events reset the cache entry to 0).
        for i in 0..self.sms.len() {
            if self.fast_forward {
                if self.sm_quiet_until[i] > now {
                    self.sms[i].account_skipped(1);
                    continue;
                }
                if !self.sms[i].can_progress(now, &self.kernel) {
                    self.sms[i].account_skipped(1);
                    self.sm_quiet_until[i] =
                        self.sms[i].next_event(now).unwrap_or(Cycle::MAX);
                    continue;
                }
            }
            self.sms[i].step(now, &self.kernel, &mut completed);
        }

        // 3. SM → request networks (bounded per SM per cycle; demands
        // and stores ride the high-priority channel).
        for sm in &mut self.sms {
            for _ in 0..self.cfg.icnt_bandwidth {
                let Some(req) = sm.pop_outbound() else { break };
                let dst = self.cfg.partition_of(req.line);
                if req.kind.is_prefetch() {
                    self.pf_req_net.send(now, dst, req);
                } else {
                    self.req_net.send(now, dst, req);
                }
            }
        }

        // 4. Request networks → partitions (consumer-checked ejection;
        // demand channel first).
        self.req_net.step(now);
        self.pf_req_net.step(now);
        if self.req_net.has_ejected() || self.pf_req_net.has_ejected() {
            for p in 0..self.cfg.num_partitions {
                for _ in 0..self.cfg.icnt_bandwidth {
                    let Some(req) = self.req_net.peek(p) else {
                        break;
                    };
                    if !self.partitions[p].can_accept(req.kind) {
                        break;
                    }
                    let req = self.req_net.pop_one(p).expect("peeked");
                    self.partitions[p].accept(now, req);
                    self.part_quiet_until[p] = 0;
                }
                for _ in 0..self.cfg.icnt_bandwidth {
                    let Some(req) = self.pf_req_net.peek(p) else {
                        break;
                    };
                    if !self.partitions[p].can_accept(req.kind) {
                        break;
                    }
                    let req = self.pf_req_net.pop_one(p).expect("peeked");
                    self.partitions[p].accept(now, req);
                    self.part_quiet_until[p] = 0;
                }
            }
        }

        // 5. DRAM channels advance; completions dispatch per partition.
        // A channel whose probe says "nothing matures, no bank ready"
        // would step as a pure no-op (no state, no stats), so under
        // fast-forward it is skipped outright until its own next timer —
        // only a partition pushing a request can unquiesce it earlier,
        // and that push resets the cache below.
        self.dram_done_scratch.clear();
        let mut ch_stepped: u64 = 0;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if self.fast_forward {
                if self.ch_quiet_until[i] > now {
                    continue;
                }
                if !ch.can_progress(now) {
                    self.ch_quiet_until[i] = ch.next_event(now).unwrap_or(Cycle::MAX);
                    continue;
                }
            }
            ch.step(now, &mut self.dram_done_scratch);
            ch_stepped |= 1 << i;
        }

        // 6. Partitions service inputs and emit replies. Under
        // fast-forward a partition provably stalled until
        // `part_quiet_until[p]` only accounts its per-cycle stall
        // counter; the cache is reset on every event that can unblock it
        // (an accepted request in phase 4, a DRAM fill, or any step of
        // its channel — which can free queue space or MSHRs).
        for p in 0..self.cfg.num_partitions {
            let ch = self.cfg.channel_of_partition(p);
            if self.fast_forward {
                if ch_stepped & (1 << ch) != 0 {
                    self.part_quiet_until[p] = 0;
                }
                let has_fill = !self.dram_done_scratch.is_empty()
                    && self.dram_done_scratch.iter().any(|r| r.partition == p);
                if !has_fill {
                    if self.part_quiet_until[p] > now {
                        self.partitions[p].account_skipped(1);
                        continue;
                    }
                    if !self.partitions[p].can_progress(now, &self.channels[ch]) {
                        self.partitions[p].account_skipped(1);
                        self.part_quiet_until[p] =
                            self.partitions[p].next_event(now).unwrap_or(Cycle::MAX);
                        continue;
                    }
                }
            }
            let pending_before = self.channels[ch].pending();
            self.partitions[p].step(now, &mut self.channels[ch], &self.dram_done_scratch);
            if self.channels[ch].pending() != pending_before {
                self.ch_quiet_until[ch] = 0;
            }
            for _ in 0..self.cfg.icnt_bandwidth {
                let Some(reply) = self.partitions[p].reply_out.pop_front() else {
                    break;
                };
                self.reply_net.send(now, reply.sm, reply);
            }
            for _ in 0..self.cfg.icnt_bandwidth {
                let Some(reply) = self.partitions[p].pf_reply_out.pop_front() else {
                    break;
                };
                self.pf_reply_net.send(now, reply.sm, reply);
            }
        }

        // 7. Demand-driven CTA refill (Fig. 3): completed CTAs free
        // slots; the distributor hands out the next CTA ids.
        if !completed.is_empty() {
            self.refill_ctas();
        }
        self.completed_scratch = completed;

        self.cycle += 1;
    }

    fn refill_ctas(&mut self) {
        for (i, sm) in self.sms.iter_mut().enumerate() {
            while sm.has_free_cta_slot() {
                match self.distributor.next_cta() {
                    Some(id) => {
                        let coord = self.kernel.cta_coord(id);
                        sm.launch_cta(coord);
                        self.sm_quiet_until[i] = 0;
                    }
                    None => break,
                }
            }
        }
    }

    /// Aggregate statistics across SMs, partitions, channels, networks.
    pub fn collect_stats(&mut self) -> Stats {
        let mut total = Stats::default();
        for sm in &mut self.sms {
            sm.finalize();
            total.absorb(&sm.stats);
        }
        total.cycles = self.cycle;
        for p in &self.partitions {
            total.l2_accesses += p.stats.accesses;
            total.l2_hits += p.stats.hits;
            total.l2_misses += p.stats.misses;
            total.dram_queue_stalls += p.stats.dram_queue_stalls;
        }
        for c in &self.channels {
            total.dram_reads += c.reads;
            total.dram_writes += c.writes;
            total.dram_row_hits += c.row_hits;
            total.dram_row_misses += c.row_misses;
        }
        total.icnt_replies = self
            .partitions
            .iter()
            .map(|p| p.stats.accesses)
            .sum::<u64>()
            .min(total.icnt_requests);
        total.icnt_stalls = self.req_net.stall_events
            + self.pf_req_net.stall_events
            + self.reply_net.stall_events
            + self.pf_reply_net.stall_events;
        total
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The kernel bound to this GPU.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};
    use crate::prefetch::null_factory;

    fn stride_kernel(ctas: u32, warps_per_cta: u32) -> Kernel {
        let pat = AddrPattern::Affine(AffinePattern {
            base: 0,
            cta_term: CtaTerm::Linear { pitch: 1 << 16 },
            warp_stride: 128,
            lane_stride: 4,
            iter_stride: 0,
        });
        let prog = ProgramBuilder::new().alu(4).ld(pat).wait().alu(4).build();
        Kernel::new("stride", (ctas, 1), warps_per_cta * 32, prog)
    }

    #[test]
    fn small_kernel_completes() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory());
        let stats = gpu.run(1_000_000);
        assert_eq!(stats.ctas_launched, 8);
        assert_eq!(stats.ctas_completed, 8);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0);
        // 8 CTAs × 4 warps × 3 counted instructions (WaitLoads is free).
        assert_eq!(stats.warp_instructions, 8 * 4 * 3);
    }

    #[test]
    fn all_loads_reach_memory_once_per_line() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(4, 2), &*null_factory());
        let stats = gpu.run(1_000_000);
        // 4 CTAs × 2 warps, distinct lines → all miss, all read DRAM.
        assert_eq!(stats.l1d_demand_accesses, 8);
        assert_eq!(stats.l1d_demand_misses, 8);
        assert_eq!(stats.dram_reads, 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = GpuConfig::test_small();
        let s1 = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        let s2 = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        assert_eq!(s1, s2);
    }

    #[test]
    fn demand_driven_distribution_launches_all_ctas() {
        // More CTAs than resident capacity forces demand-driven refill.
        let cfg = GpuConfig::test_small();
        let kernel = stride_kernel(64, 4);
        let mut gpu = Gpu::new(cfg, kernel, &*null_factory());
        let stats = gpu.run(5_000_000);
        assert_eq!(stats.ctas_completed, 64);
    }

    #[test]
    fn cycle_cap_stops_runaway() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
        let stats = gpu.run(100);
        assert!(stats.cycles <= 100);
    }

    #[test]
    fn multi_kernel_app_runs_both_passes_with_shared_caches() {
        let cfg = GpuConfig::test_small();
        // Pass 1 writes nothing we model; pass 2 re-reads pass 1's data:
        // the second kernel must find it warm.
        let k1 = stride_kernel(8, 4);
        let k2 = {
            // Same addresses, different geometry (8 warps per CTA).
            let pat = AddrPattern::Affine(AffinePattern {
                base: 0,
                cta_term: CtaTerm::Linear { pitch: 1 << 15 },
                warp_stride: 128,
                lane_stride: 4,
                iter_stride: 0,
            });
            let prog = ProgramBuilder::new().ld(pat).wait().alu(2).build();
            Kernel::new("pass2", (4, 1), 256, prog)
        };
        let mut gpu = Gpu::new(cfg, k1.clone(), &*null_factory());
        let stats = gpu.run_app(&[k1.clone(), k2], 2_000_000);
        assert_eq!(stats.ctas_completed, 8 + 4);
        // Pass 1 reads 32 unique lines; pass 2's 4×8 warps re-read lines
        // inside the same footprint — DRAM reads must not double.
        let solo = Gpu::new(GpuConfig::test_small(), k1, &*null_factory()).run(1_000_000);
        assert!(
            stats.dram_reads < 2 * solo.dram_reads + 8,
            "second pass should hit caches: {} vs solo {}",
            stats.dram_reads,
            solo.dram_reads
        );
    }

    #[test]
    #[should_panic(expected = "rebind requires a drained SM")]
    fn rebind_rejects_a_busy_sm() {
        let cfg = GpuConfig::test_small();
        let k = stride_kernel(8, 4);
        let mut gpu = Gpu::new(cfg, k.clone(), &*null_factory());
        // Start but don't finish, then try to bind mid-flight.
        gpu.initial_fill();
        for _ in 0..10 {
            gpu.step();
        }
        gpu.bind_kernel(k);
    }

    #[test]
    fn relaunches_find_a_warm_l2() {
        // The whole-application model: the second launch re-reads the
        // same addresses and must be served by L2, not DRAM.
        let cfg = GpuConfig::test_small();
        let one = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory()).run(1_000_000);
        let two = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory()).run_launches(2, 1_000_000);
        assert_eq!(two.ctas_completed, 2 * one.ctas_completed);
        assert_eq!(
            two.dram_reads, one.dram_reads,
            "second launch must not re-read DRAM"
        );
        // The relaunch is served from cache (L1 or L2, depending on how
        // much the tiny test config retains).
        let cached_one = one.l1d_demand_hits + one.l2_hits;
        let cached_two = two.l1d_demand_hits + two.l2_hits;
        assert!(cached_two > cached_one, "{cached_two} vs {cached_one}");
    }

    #[test]
    fn fast_forward_is_bit_identical_to_naive_stepping() {
        let cfg = GpuConfig::test_small();
        let mut fast = Gpu::new(cfg.clone(), stride_kernel(16, 4), &*null_factory());
        fast.set_fast_forward(true);
        let mut naive = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory());
        naive.set_fast_forward(false);
        assert_eq!(fast.run(1_000_000), naive.run(1_000_000));
    }

    #[test]
    fn fast_forward_is_bit_identical_across_relaunches() {
        let cfg = GpuConfig::test_small();
        let mut fast = Gpu::new(cfg.clone(), stride_kernel(8, 4), &*null_factory());
        fast.set_fast_forward(true);
        let mut naive = Gpu::new(cfg, stride_kernel(8, 4), &*null_factory());
        naive.set_fast_forward(false);
        assert_eq!(
            fast.run_launches(3, 1_000_000),
            naive.run_launches(3, 1_000_000)
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_under_a_cycle_cap() {
        // The cap can land inside a skip window; the jump must clamp to
        // it and account the partial window exactly as naive spinning.
        for cap in [50, 137, 500] {
            let cfg = GpuConfig::test_small();
            let mut fast = Gpu::new(cfg.clone(), stride_kernel(64, 4), &*null_factory());
            fast.set_fast_forward(true);
            let mut naive = Gpu::new(cfg, stride_kernel(64, 4), &*null_factory());
            naive.set_fast_forward(false);
            assert_eq!(fast.run(cap), naive.run(cap), "cap {cap}");
        }
    }

    #[test]
    fn relaunch_cycles_are_cheaper_when_warm() {
        let cfg = GpuConfig::test_small();
        let one = Gpu::new(cfg.clone(), stride_kernel(16, 4), &*null_factory()).run(1_000_000);
        let two = Gpu::new(cfg, stride_kernel(16, 4), &*null_factory()).run_launches(2, 1_000_000);
        let second = two.cycles - one.cycles;
        assert!(
            second < one.cycles,
            "warm launch ({second}) should be faster than cold ({})",
            one.cycles
        );
    }
}
