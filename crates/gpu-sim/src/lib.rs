//! # caps-gpu-sim — a cycle-level SIMT GPU simulator
//!
//! A from-scratch Fermi-class GPU microarchitecture simulator built as the
//! substrate for reproducing *CTA-Aware Prefetching and Scheduling for
//! GPU* (Koo et al., IPDPS 2018). It models the parts of GPGPU-Sim the
//! paper's evaluation depends on:
//!
//! * SMs with in-order warp issue, warp schedulers (LRR, GTO, two-level,
//!   and the PAS/ORCH two-level variants), per-warp loop/dependence state;
//! * the CTA distributor (round-robin initial fill, demand-driven refill);
//! * a per-warp memory coalescer;
//! * L1D caches with MSHRs, prefetch provenance tracking, and a
//!   lower-priority prefetch injection port;
//! * request/reply crossbar networks with bounded queues;
//! * L2 cache banks in memory partitions;
//! * GDDR5 DRAM channels scheduled FR-FCFS (Table III timing).
//!
//! Kernels are expressed in a small IR ([`isa`]) whose address patterns
//! mirror the paper's §IV decomposition: CTA-dependent base `θ`, a
//! kernel-wide warp stride `Δ`, per-lane pitch, loop strides, and
//! stride-free indirect streams.
//!
//! ## Quick start
//!
//! ```
//! use caps_gpu_sim::prelude::*;
//!
//! // addr = θ(cta) + warp·128 + lane·4 — a dense coalesced kernel.
//! let pat = AddrPattern::Affine(AffinePattern::dense(
//!     0x1000_0000,
//!     CtaTerm::Linear { pitch: 1 << 16 },
//! ));
//! let program = ProgramBuilder::new().alu(8).ld(pat).wait().alu(8).build();
//! let kernel = Kernel::new("demo", (16, 1), 128, program);
//!
//! let cfg = GpuConfig::test_small();
//! let mut gpu = Gpu::new(cfg, kernel, &*null_factory());
//! let stats = gpu.run_to_completion();
//! assert_eq!(stats.ctas_completed, 16);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod coalescer;
pub mod config;
pub mod cta;
pub mod cta_scheduler;
pub mod digest;
pub mod dram;
pub mod gpu;
pub mod interconnect;
pub mod isa;
pub mod kernel;
pub mod linemap;
pub mod mshr;
pub mod partition;
pub mod pool;
pub mod port;
pub mod prefetch;
pub mod sched;
pub mod sm;
pub mod stats;
pub mod topo;
pub mod trace;
pub mod types;
pub mod warp;

/// Commonly used items re-exported in one place.
pub mod prelude {
    pub use crate::config::{CacheConfig, DramTiming, GpuConfig, SchedulerKind};
    pub use crate::digest::{fingerprint, Digest, Hashable};
    pub use crate::gpu::Gpu;
    pub use crate::isa::{
        AddrPattern, AffinePattern, CtaTerm, IndirectPattern, Op, Program, ProgramBuilder,
    };
    pub use crate::kernel::Kernel;
    pub use crate::prefetch::{
        null_factory, DemandObservation, NullPrefetcher, PrefetchRequest, Prefetcher,
        PrefetcherFactory,
    };
    pub use crate::sched::{make_scheduler, TwoLevelScheduler, WarpScheduler};
    pub use crate::stats::Stats;
    pub use crate::types::{line_base, AccessKind, Addr, CtaCoord, CtaSlot, Cycle, Pc, WarpSlot};
}
