//! Flat open-addressed hash table for cycle-critical lookups.
//!
//! The per-cycle hot path of the simulator is dominated by small
//! associative lookups: "is this line in the MSHR file?", "is a prefetch
//! to this line in flight?", "which SMs wait on this L2 fill?". A
//! general-purpose `HashMap` pays SipHash, branchy control flow and a
//! pointer-chasing bucket layout for every one of those probes. This
//! module provides the flat, index-addressed replacement used by the
//! MSHR file, the L2 waiter table, the SM prefetch-inflight table and
//! the CAP PerCTA/DIST index:
//!
//! - power-of-two slot array, linear probing, Fibonacci multiplicative
//!   hash — a probe is a multiply, a shift, and (almost always) one
//!   cache-line touch;
//! - backward-shift deletion, so there are no tombstones and probe
//!   sequences never degrade;
//! - generation-stamped occupancy, so `clear` is O(1): bumping the
//!   generation invalidates every slot at once (the CAP tables reset
//!   per CTA launch, far too often to pay an O(capacity) wipe).
//!
//! Keys are `u64` (line addresses or zero-extended PCs). Iteration order
//! is deterministic but *not* insertion order; simulation code must not
//! let it leak into architecturally visible ordering — every sim-side
//! user keys accesses individually (the differential proptests in
//! `tests/structures_differential.rs` pin this down against `HashMap`).

/// A flat open-addressed map from `u64` keys to `V`.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    keys: Vec<u64>,
    vals: Vec<Option<V>>,
    /// Slot `i` is occupied iff `gens[i] == gen`.
    gens: Vec<u32>,
    gen: u32,
    mask: usize,
    len: usize,
}

impl<V> Default for LineMap<V> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

/// Fibonacci multiplicative hash: spreads the (highly regular) line
/// address and PC streams across the table. The high bits of the product
/// are the best-mixed, so the home slot comes from the top.
#[inline(always)]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V> LineMap<V> {
    /// Map expecting up to `capacity` live entries. The slot array is
    /// sized to keep the load factor at or below 50% so probe chains
    /// stay short; inserting past `capacity` is legal (the table grows).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two().max(8);
        LineMap {
            keys: vec![0; slots],
            vals: (0..slots).map(|_| None).collect(),
            gens: vec![0; slots],
            gen: 1,
            mask: slots - 1,
            len: 0,
        }
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn home(&self, key: u64) -> usize {
        (spread(key) >> (64 - (self.mask + 1).trailing_zeros())) as usize
    }

    #[inline(always)]
    fn occupied(&self, slot: usize) -> bool {
        self.gens[slot] == self.gen
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            if !self.occupied(i) {
                return None;
            }
            if self.keys[i] == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Shared reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| self.vals[i].as_ref().expect("occupied"))
    }

    /// Mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.find(key) {
            Some(i) => Some(self.vals[i].as_mut().expect("occupied")),
            None => None,
        }
    }

    /// Insert `key → val`, returning the previous value if `key` was
    /// present.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        if (self.len + 1) * 2 > self.mask + 1 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            if !self.occupied(i) {
                self.keys[i] = key;
                self.vals[i] = Some(val);
                self.gens[i] = self.gen;
                self.len += 1;
                return None;
            }
            if self.keys[i] == key {
                return self.vals[i].replace(val);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove and return the value for `key`. Backward-shift deletion:
    /// later entries of the probe chain slide into the hole, so the
    /// table never accumulates tombstones.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let out = self.vals[hole].take();
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            if !self.occupied(i) {
                break;
            }
            // An entry may move into the hole iff the hole lies within
            // its probe chain (between its home slot and where it sits).
            let dist = i.wrapping_sub(self.home(self.keys[i])) & self.mask;
            let gap = i.wrapping_sub(hole) & self.mask;
            if dist >= gap {
                self.keys[hole] = self.keys[i];
                self.vals[hole] = self.vals[i].take();
                hole = i;
            }
        }
        self.gens[hole] = self.gen.wrapping_sub(1);
        out
    }

    /// Drop every entry in O(1) by invalidating the generation stamp.
    /// Stale values are physically dropped lazily (on overwrite, grow,
    /// or map drop) — acceptable for the small pooled values stored here.
    pub fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // One wrap every 2^32 clears: pay a full wipe to keep the
            // "occupied iff stamp matches" invariant exact.
            self.gens.fill(0);
            self.gen = 1;
            for v in &mut self.vals {
                *v = None;
            }
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_slots = (self.mask + 1) * 2;
        let mut next = LineMap::<V> {
            keys: vec![0; new_slots],
            vals: (0..new_slots).map(|_| None).collect(),
            gens: vec![0; new_slots],
            gen: 1,
            mask: new_slots - 1,
            len: 0,
        };
        for i in 0..=self.mask {
            if self.occupied(i) {
                if let Some(v) = self.vals[i].take() {
                    next.insert(self.keys[i], v);
                }
            }
        }
        *self = next;
    }

    /// Iterate live `(key, &value)` pairs in slot order (deterministic,
    /// NOT insertion order — diagnostics and tests only; simulation code
    /// must not let this order become architecturally visible).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.gens
            .iter()
            .enumerate()
            .filter(move |&(_, &g)| g == self.gen)
            .map(move |(i, _)| (self.keys[i], self.vals[i].as_ref().expect("occupied")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = LineMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(0x1000, "a"), None);
        assert_eq!(m.insert(0x2000, "b"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0x1000), Some(&"a"));
        assert!(m.contains(0x2000));
        assert!(!m.contains(0x3000));
        assert_eq!(m.insert(0x1000, "a2"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(0x1000), Some("a2"));
        assert_eq!(m.remove(0x1000), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_declared_capacity() {
        let mut m = LineMap::with_capacity(2);
        for k in 0..1000u64 {
            m.insert(k * 128, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 128), Some(&k), "key {k}");
        }
    }

    #[test]
    fn backward_shift_keeps_chains_reachable() {
        // Force collisions: with an 8-slot table, insert enough keys that
        // chains form, then delete from the middle of a chain.
        let mut m = LineMap::with_capacity(3);
        let keys: Vec<u64> = (0..4).map(|k| k * 0x40).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        m.remove(keys[1]);
        for &k in [keys[0], keys[2], keys[3]].iter() {
            assert_eq!(m.get(k), Some(&k), "key {k:#x} lost after delete");
        }
    }

    #[test]
    fn clear_is_total_and_reusable() {
        let mut m = LineMap::with_capacity(8);
        for k in 0..8u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        for k in 0..8u64 {
            assert!(!m.contains(k));
        }
        m.insert(3, 33);
        assert_eq!(m.get(3), Some(&33));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn many_clear_cycles_stay_consistent() {
        let mut m = LineMap::with_capacity(4);
        for round in 0..10_000u64 {
            m.insert(round % 7, round);
            assert_eq!(m.get(round % 7), Some(&round));
            m.clear();
            assert!(!m.contains(round % 7));
        }
    }

    #[test]
    fn backward_shift_delete_across_the_wraparound_boundary() {
        // An 8-slot table; find three distinct keys homed at the LAST
        // slot so their probe chain wraps: slot 7, then 0, then 1. The
        // masked-distance arithmetic in `remove` (`dist >= gap` with
        // wrapping subtraction) is only exercised when hole and candidate
        // sit on opposite sides of the wrap.
        let mut m = LineMap::with_capacity(3);
        assert_eq!(m.mask, 7);
        let mut keys = Vec::new();
        let mut k = 1u64;
        while keys.len() < 3 {
            if m.home(k) == 7 {
                keys.push(k);
            }
            k += 1;
        }
        for &k in &keys {
            m.insert(k, k);
        }
        assert!(m.occupied(7) && m.occupied(0) && m.occupied(1), "chain must wrap");

        // Delete the chain head at slot 7: both wrapped entries must
        // slide back across the boundary, staying reachable and leaving
        // no hole inside the chain.
        assert_eq!(m.remove(keys[0]), Some(keys[0]));
        assert_eq!(m.get(keys[1]), Some(&keys[1]));
        assert_eq!(m.get(keys[2]), Some(&keys[2]));
        assert!(m.occupied(7) && m.occupied(0) && !m.occupied(1));

        // Delete the (now wrapped-back) middle entry too: the tail must
        // wrap back once more.
        assert_eq!(m.remove(keys[1]), Some(keys[1]));
        assert_eq!(m.get(keys[2]), Some(&keys[2]));
        assert!(m.occupied(7) && !m.occupied(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn backward_shift_never_moves_an_entry_before_its_home() {
        // Mixed-home chain across the boundary: an entry homed at slot 0
        // must NOT be shifted into slot 7 when a hole opens there — that
        // would put it before its home and make it unreachable.
        let mut m = LineMap::with_capacity(3);
        assert_eq!(m.mask, 7);
        let (mut at7, mut at0) = (None, None);
        let mut k = 1u64;
        while at7.is_none() || at0.is_none() {
            match m.home(k) {
                7 if at7.is_none() => at7 = Some(k),
                0 if at0.is_none() => at0 = Some(k),
                _ => {}
            }
            k += 1;
        }
        let (k7, k0) = (at7.unwrap(), at0.unwrap());
        m.insert(k7, k7); // slot 7
        m.insert(k0, k0); // its home, slot 0
        m.remove(k7);
        // Slot 7 must stay empty; k0 must still be found at its home.
        assert!(!m.occupied(7), "entry homed at 0 must not wrap backwards");
        assert!(m.occupied(0));
        assert_eq!(m.get(k0), Some(&k0));
    }

    #[test]
    fn generation_clear_survives_u32_wraparound() {
        let mut m = LineMap::with_capacity(4);
        // Fast-forward the generation counter to the wrap boundary, as
        // if 2^32 - 2 clears had happened.
        m.gen = u32::MAX;
        m.insert(42, 1u64);
        m.insert(43, 2u64);
        assert!(m.contains(42));

        // This clear wraps the counter: the table must take the full-
        // wipe path, because leaving stale stamps behind would let a
        // slot stamped in an ancient generation alias a future one.
        m.clear();
        assert_eq!(m.gen, 1, "wrap resets the generation");
        assert!(m.is_empty());
        assert!(!m.contains(42) && !m.contains(43));
        assert!(m.gens.iter().all(|&g| g == 0), "all stamps wiped");
        assert!(
            m.vals.iter().all(Option::is_none),
            "wrap clear drops stale values eagerly"
        );

        // The table stays fully functional on the other side of the wrap.
        m.insert(42, 10);
        assert_eq!(m.get(42), Some(&10));
        m.clear();
        assert_eq!(m.gen, 2);
        assert!(!m.contains(42));
        m.insert(7, 70);
        assert_eq!(m.remove(7), Some(70));
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut m = LineMap::with_capacity(16);
        for k in 0..10u64 {
            m.insert(k * 128, k);
        }
        m.remove(3 * 128);
        let mut got: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..10u64).filter(|&k| k != 3).map(|k| k * 128).collect();
        assert_eq!(got, want);
    }
}
