//! GPU configuration — the simulator's equivalent of the paper's Table III.
//!
//! The default configuration [`GpuConfig::fermi_gtx480`] mirrors the
//! GPGPU-Sim v3.2.2 setup the paper evaluates on: a Fermi-class GPU with
//! 15 SMs, 48 concurrent warps and 8 concurrent CTAs per SM, a 16 KB
//! 4-way L1D with 32 MSHRs, 12 L2 partitions of 64 KB each, and 6 GDDR5
//! channels scheduled FR-FCFS.

/// Warp scheduler selection for an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Loose round-robin over all ready warps.
    Lrr,
    /// Greedy-then-oldest: stick with one warp until it stalls.
    Gto,
    /// GTO with PAS leading-warp priority (§V-A's GTO adaptation).
    PasGto,
    /// Two-level scheduler with a fixed-size ready queue (the paper's
    /// baseline, 8 ready warps).
    TwoLevel,
    /// The paper's Prefetch-Aware Scheduler: two-level with leading warps
    /// hoisted to the queue front and eager prefetch wake-up.
    Pas,
    /// PAS with the eager wake-up disabled (Fig. 14a ablation:
    /// "CAPS w/o Wakeup").
    PasNoWakeup,
    /// ORCH-style grouped two-level scheduling: consecutive warps are
    /// placed in different scheduling groups (Jog et al., ISCA'13).
    OrchGrouped,
}

impl SchedulerKind {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Lrr => "LRR",
            SchedulerKind::Gto => "GTO",
            SchedulerKind::PasGto => "PA-GTO",
            SchedulerKind::TwoLevel => "TLV",
            SchedulerKind::Pas => "PA-TLV",
            SchedulerKind::PasNoWakeup => "PA-TLV-NW",
            SchedulerKind::OrchGrouped => "ORCH-TLV",
        }
    }
}

/// Cache geometry and timing for one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (128 B for Fermi).
    pub line_size: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Number of MSHR entries (outstanding distinct line misses).
    pub mshr_entries: u32,
    /// Maximum merged requests per MSHR entry.
    pub mshr_merge: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    #[inline]
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_size * self.assoc)
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> u32 {
        self.size_bytes / self.line_size
    }
}

/// GDDR5 timing parameters in *DRAM* clock cycles (Table III, bottom row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency.
    pub t_cl: u32,
    /// Row precharge.
    pub t_rp: u32,
    /// Row cycle.
    pub t_rc: u32,
    /// Row active time.
    pub t_ras: u32,
    /// RAS-to-CAS delay.
    pub t_rcd: u32,
    /// Row-to-row activation delay.
    pub t_rrd: u32,
    /// Last-read-to-write delay (tCDLR).
    pub t_cdlr: u32,
    /// Write recovery.
    pub t_wr: u32,
    /// Data burst occupancy of one 128 B line on the channel.
    pub t_burst: u32,
}

impl DramTiming {
    /// GDDR5 timing from Table III.
    pub fn gddr5() -> Self {
        DramTiming {
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_rcd: 12,
            t_rrd: 6,
            t_cdlr: 5,
            t_wr: 12,
            // 128 B line over a x4-organized 32-bit GDDR5 interface:
            // 4 DRAM-clock burst (DDR, 8n prefetch).
            t_burst: 4,
        }
    }
}

/// Full GPU configuration (Table III plus modelling knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of SMs ("15 cores" in Table III).
    pub num_sms: usize,
    /// SIMT width (threads per warp).
    pub simt_width: u32,
    /// Maximum resident warps per SM (Fermi: 48).
    pub max_warps_per_sm: usize,
    /// Maximum resident CTAs per SM (Fermi: 8). Figure 11 sweeps this.
    pub max_ctas_per_sm: usize,
    /// Warp scheduler.
    pub scheduler: SchedulerKind,
    /// Ready-queue size for the two-level scheduler family.
    pub ready_queue_size: usize,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L2 cache bank configuration (per partition).
    pub l2: CacheConfig,
    /// Number of L2/memory partitions (12 in Table III).
    pub num_partitions: usize,
    /// Number of DRAM channels (6 in Table III); partitions are mapped
    /// to channels round-robin.
    pub num_dram_channels: usize,
    /// DRAM banks per channel.
    pub dram_banks: usize,
    /// FR-FCFS scheduler queue entries per channel (16 in Table III).
    pub dram_queue_entries: usize,
    /// GDDR5 timing.
    pub dram_timing: DramTiming,
    /// Core clock in MHz (1400).
    pub core_clock_mhz: u32,
    /// DRAM clock in MHz (924).
    pub dram_clock_mhz: u32,
    /// One-way interconnect latency in core cycles.
    pub icnt_latency: u32,
    /// Requests accepted per partition per cycle on the request network
    /// (and replies per SM per cycle on the reply network).
    pub icnt_bandwidth: u32,
    /// Depth of each interconnect injection/ejection queue.
    pub icnt_queue_depth: usize,
    /// Instructions an SM may issue per cycle (Fermi: dual issue; we
    /// model 1 to keep the in-order pipeline simple — IPC is reported
    /// normalized so only ratios matter).
    pub issue_width: u32,
    /// LD/ST unit queue depth (pending coalesced line requests).
    pub ldst_queue_depth: usize,
    /// Maximum in-flight prefetch line requests per SM; requests beyond
    /// this are dropped (models the low-priority prefetch queue).
    pub prefetch_queue_depth: usize,
    /// Prefetch requests injected into L1 per cycle when the port is free.
    pub prefetch_issue_per_cycle: u32,
    /// Queued prefetch requests older than this many cycles are dropped
    /// unissued (stale: the demand window has passed).
    pub prefetch_max_age: u32,
}

impl GpuConfig {
    /// The paper's baseline: Fermi GTX480-like configuration (Table III).
    pub fn fermi_gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            simt_width: 32,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            scheduler: SchedulerKind::TwoLevel,
            ready_queue_size: 8,
            l1d: CacheConfig {
                size_bytes: 16 * 1024,
                line_size: 128,
                assoc: 4,
                mshr_entries: 32,
                mshr_merge: 8,
                hit_latency: 24,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                line_size: 128,
                assoc: 8,
                mshr_entries: 32,
                mshr_merge: 8,
                hit_latency: 32,
            },
            num_partitions: 12,
            num_dram_channels: 6,
            dram_banks: 16,
            dram_queue_entries: 16,
            dram_timing: DramTiming::gddr5(),
            core_clock_mhz: 1400,
            dram_clock_mhz: 924,
            icnt_latency: 35,
            icnt_bandwidth: 1,
            icnt_queue_depth: 8,
            issue_width: 1,
            ldst_queue_depth: 8,
            prefetch_queue_depth: 64,
            prefetch_issue_per_cycle: 1,
            prefetch_max_age: 512,
        }
    }

    /// A Kepler-class extrapolation (the paper's §VI-B outlook: newer
    /// architectures run more concurrent CTAs, making CTA-aware
    /// prefetching "even more critical"): 64 resident warps and 16
    /// resident CTAs per SM, with the Fermi memory system retained so
    /// the per-warp cache budget shrinks exactly as the paper argues.
    pub fn kepler_like() -> Self {
        let mut c = Self::fermi_gtx480();
        c.max_warps_per_sm = 64;
        c.max_ctas_per_sm = 16;
        c
    }

    /// A scaled-down configuration for fast unit/property tests: 2 SMs,
    /// smaller caches, identical mechanisms.
    pub fn test_small() -> Self {
        let mut c = Self::fermi_gtx480();
        c.num_sms = 2;
        c.num_partitions = 4;
        c.num_dram_channels = 2;
        c.l1d.size_bytes = 4 * 1024;
        c.l2.size_bytes = 16 * 1024;
        c
    }

    /// Core cycles per DRAM cycle (≈1.515 for 1400/924 MHz).
    #[inline]
    pub fn dram_clock_ratio(&self) -> f64 {
        self.core_clock_mhz as f64 / self.dram_clock_mhz as f64
    }

    /// Convert a DRAM-clock cycle count into core cycles (rounded up).
    #[inline]
    pub fn dram_to_core(&self, dram_cycles: u32) -> u32 {
        (dram_cycles as f64 * self.dram_clock_ratio()).ceil() as u32
    }

    /// Which partition services `line_addr`. 1 KiB interleaving across
    /// partitions: coarse enough that a warp-sequential stream keeps a
    /// DRAM row open (row locality), fine enough to spread CTAs across
    /// all partitions.
    #[inline]
    pub fn partition_of(&self, line_addr: u64) -> usize {
        ((line_addr >> 10) % self.num_partitions as u64) as usize
    }

    /// Which DRAM channel backs a partition.
    #[inline]
    pub fn channel_of_partition(&self, partition: usize) -> usize {
        partition % self.num_dram_channels
    }

    /// Validates internal consistency; panics with a clear message when a
    /// hand-edited configuration is impossible.
    pub fn validate(&self) {
        assert!(self.num_sms > 0, "need at least one SM");
        assert!(
            self.simt_width.is_power_of_two(),
            "SIMT width must be a power of two"
        );
        assert!(
            self.max_warps_per_sm >= self.max_ctas_per_sm,
            "cannot host more CTAs than warps"
        );
        assert!(
            self.l1d.line_size == self.l2.line_size,
            "L1/L2 line sizes must match"
        );
        assert!(
            self.l1d.sets().is_power_of_two(),
            "L1 set count must be a power of two"
        );
        assert!(
            self.l2.sets().is_power_of_two(),
            "L2 set count must be a power of two"
        );
        assert!(
            self.num_partitions >= self.num_dram_channels,
            "partitions map onto channels"
        );
        assert!(
            self.ready_queue_size > 0,
            "two-level ready queue cannot be empty"
        );
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::fermi_gtx480()
    }
}

// --- content hashing (sweep-farm result cache keys) -------------------
//
// Every field that can change a run's statistics is streamed, in
// declaration order, with enum variants tagged. The digest property
// suite in `caps-metrics` flips each field one at a time and asserts the
// key moves; extend these impls (and that test) together with the
// struct.

use crate::digest::{Digest, Hashable};

impl Hashable for SchedulerKind {
    fn digest_into(&self, d: &mut Digest) {
        d.write_tag(match self {
            SchedulerKind::Lrr => 0,
            SchedulerKind::Gto => 1,
            SchedulerKind::PasGto => 2,
            SchedulerKind::TwoLevel => 3,
            SchedulerKind::Pas => 4,
            SchedulerKind::PasNoWakeup => 5,
            SchedulerKind::OrchGrouped => 6,
        });
    }
}

impl Hashable for CacheConfig {
    fn digest_into(&self, d: &mut Digest) {
        d.write_u32(self.size_bytes);
        d.write_u32(self.line_size);
        d.write_u32(self.assoc);
        d.write_u32(self.mshr_entries);
        d.write_u32(self.mshr_merge);
        d.write_u32(self.hit_latency);
    }
}

impl Hashable for DramTiming {
    fn digest_into(&self, d: &mut Digest) {
        for v in [
            self.t_cl,
            self.t_rp,
            self.t_rc,
            self.t_ras,
            self.t_rcd,
            self.t_rrd,
            self.t_cdlr,
            self.t_wr,
            self.t_burst,
        ] {
            d.write_u32(v);
        }
    }
}

impl Hashable for GpuConfig {
    fn digest_into(&self, d: &mut Digest) {
        d.write_usize(self.num_sms);
        d.write_u32(self.simt_width);
        d.write_usize(self.max_warps_per_sm);
        d.write_usize(self.max_ctas_per_sm);
        self.scheduler.digest_into(d);
        d.write_usize(self.ready_queue_size);
        self.l1d.digest_into(d);
        self.l2.digest_into(d);
        d.write_usize(self.num_partitions);
        d.write_usize(self.num_dram_channels);
        d.write_usize(self.dram_banks);
        d.write_usize(self.dram_queue_entries);
        self.dram_timing.digest_into(d);
        d.write_u32(self.core_clock_mhz);
        d.write_u32(self.dram_clock_mhz);
        d.write_u32(self.icnt_latency);
        d.write_u32(self.icnt_bandwidth);
        d.write_usize(self.icnt_queue_depth);
        d.write_u32(self.issue_width);
        d.write_usize(self.ldst_queue_depth);
        d.write_usize(self.prefetch_queue_depth);
        d.write_u32(self.prefetch_issue_per_cycle);
        d.write_u32(self.prefetch_max_age);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_geometry() {
        let c = GpuConfig::fermi_gtx480();
        c.validate();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.simt_width, 32);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.max_ctas_per_sm, 8);
        assert_eq!(c.ready_queue_size, 8);
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.line_size, 128);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l1d.mshr_entries, 32);
        assert_eq!(c.l2.size_bytes, 64 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.num_partitions, 12);
        assert_eq!(c.num_dram_channels, 6);
        assert_eq!(c.dram_queue_entries, 16);
        assert_eq!(c.core_clock_mhz, 1400);
        assert_eq!(c.dram_clock_mhz, 924);
    }

    #[test]
    fn gddr5_timing_matches_table_iii() {
        let t = DramTiming::gddr5();
        assert_eq!(t.t_cl, 12);
        assert_eq!(t.t_rp, 12);
        assert_eq!(t.t_rc, 40);
        assert_eq!(t.t_ras, 28);
        assert_eq!(t.t_rcd, 12);
        assert_eq!(t.t_rrd, 6);
        assert_eq!(t.t_cdlr, 5);
        assert_eq!(t.t_wr, 12);
    }

    #[test]
    fn l1_geometry_derives() {
        let c = GpuConfig::fermi_gtx480();
        assert_eq!(c.l1d.sets(), 32);
        assert_eq!(c.l1d.lines(), 128);
        assert_eq!(c.l2.sets(), 64);
    }

    #[test]
    fn dram_clock_conversion() {
        let c = GpuConfig::fermi_gtx480();
        assert!((c.dram_clock_ratio() - 1.515).abs() < 0.01);
        assert_eq!(c.dram_to_core(12), 19); // tCL = 12 DRAM cycles ≈ 19 core
    }

    #[test]
    fn partition_mapping_covers_all_partitions() {
        let c = GpuConfig::fermi_gtx480();
        let mut seen = vec![false; c.num_partitions];
        for i in 0..(c.num_partitions as u64 * 4) {
            seen[c.partition_of(i * 1024)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adjacent_lines_share_partition_in_kib_stripes() {
        let c = GpuConfig::fermi_gtx480();
        // 1 KiB interleave ⇒ eight 128 B lines per partition stripe.
        assert_eq!(c.partition_of(0), c.partition_of(128));
        assert_eq!(c.partition_of(0), c.partition_of(896));
        assert_ne!(c.partition_of(0), c.partition_of(1024));
    }

    #[test]
    #[should_panic(expected = "cannot host more CTAs than warps")]
    fn validate_rejects_impossible_cta_count() {
        let mut c = GpuConfig::fermi_gtx480();
        c.max_ctas_per_sm = 100;
        c.validate();
    }

    #[test]
    fn config_digest_is_stable_and_field_sensitive() {
        use crate::digest::fingerprint;
        let base = GpuConfig::fermi_gtx480();
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
        let mut c = base.clone();
        c.dram_timing.t_burst += 1;
        assert_ne!(fingerprint(&base), fingerprint(&c), "nested timing field");
        let mut c = base.clone();
        c.scheduler = SchedulerKind::Gto;
        assert_ne!(fingerprint(&base), fingerprint(&c), "scheduler variant");
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SchedulerKind::TwoLevel.name(), "TLV");
        assert_eq!(SchedulerKind::Pas.name(), "PA-TLV");
        assert_eq!(SchedulerKind::Lrr.name(), "LRR");
        assert_eq!(SchedulerKind::PasGto.name(), "PA-GTO");
    }

    #[test]
    fn kepler_extrapolation_scales_residency_only() {
        let k = GpuConfig::kepler_like();
        k.validate();
        assert_eq!(k.max_warps_per_sm, 64);
        assert_eq!(k.max_ctas_per_sm, 16);
        assert_eq!(
            k.l1d,
            GpuConfig::fermi_gtx480().l1d,
            "cache budget unchanged"
        );
    }
}
