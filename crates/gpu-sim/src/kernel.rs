//! Kernel launch descriptors: a [`Program`] plus grid/CTA geometry
//! (Fig. 2b — kernels split into CTAs, CTAs into warps).

use crate::isa::Program;
use crate::types::CtaCoord;

/// A kernel launch: the program and its thread geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Human-readable name (benchmark abbreviation).
    pub name: String,
    /// Grid dimensions in CTAs.
    pub grid_dim: (u32, u32),
    /// Threads per CTA (multiple of the SIMT width).
    pub threads_per_cta: u32,
    /// The program every thread executes.
    pub program: Program,
}

impl Kernel {
    /// Construct and validate a kernel.
    pub fn new(
        name: impl Into<String>,
        grid_dim: (u32, u32),
        threads_per_cta: u32,
        program: Program,
    ) -> Self {
        let k = Kernel {
            name: name.into(),
            grid_dim,
            threads_per_cta,
            program,
        };
        k.validate().expect("invalid kernel");
        k
    }

    /// Total CTAs in the grid.
    #[inline]
    pub fn num_ctas(&self) -> u32 {
        self.grid_dim.0 * self.grid_dim.1
    }

    /// Warps per CTA for a given SIMT width.
    #[inline]
    pub fn warps_per_cta(&self, simt_width: u32) -> u32 {
        self.threads_per_cta.div_ceil(simt_width)
    }

    /// Total warps launched by the kernel.
    #[inline]
    pub fn total_warps(&self, simt_width: u32) -> u64 {
        self.num_ctas() as u64 * self.warps_per_cta(simt_width) as u64
    }

    /// Coordinates of CTA number `linear` in launch order.
    #[inline]
    pub fn cta_coord(&self, linear: u32) -> CtaCoord {
        CtaCoord::from_linear(linear, self.grid_dim.0)
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_dim.0 == 0 || self.grid_dim.1 == 0 {
            return Err("empty grid".into());
        }
        if self.threads_per_cta == 0 {
            return Err("zero threads per CTA".into());
        }
        if !self.threads_per_cta.is_multiple_of(32) {
            return Err(format!(
                "threads_per_cta {} is not a multiple of the warp size",
                self.threads_per_cta
            ));
        }
        if self.program.is_empty() {
            return Err("empty program".into());
        }
        self.program.validate(32)
    }
}

// --- content hashing (sweep-farm result cache keys) -------------------

use crate::digest::{Digest, Hashable};

impl Hashable for Kernel {
    fn digest_into(&self, d: &mut Digest) {
        d.write_str(&self.name);
        d.write_u32(self.grid_dim.0);
        d.write_u32(self.grid_dim.1);
        d.write_u32(self.threads_per_cta);
        self.program.digest_into(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};

    fn prog() -> Program {
        ProgramBuilder::new()
            .ld(AddrPattern::Affine(AffinePattern::dense(
                0,
                CtaTerm::Linear { pitch: 4096 },
            )))
            .wait()
            .build()
    }

    #[test]
    fn geometry_helpers() {
        let k = Kernel::new("t", (8, 4), 128, prog());
        assert_eq!(k.num_ctas(), 32);
        assert_eq!(k.warps_per_cta(32), 4);
        assert_eq!(k.total_warps(32), 128);
        let c = k.cta_coord(9);
        assert_eq!((c.x, c.y), (1, 1));
    }

    #[test]
    fn kernel_digest_sees_geometry_and_ir() {
        use crate::digest::fingerprint;
        let k = Kernel::new("t", (8, 4), 128, prog());
        assert_eq!(fingerprint(&k), fingerprint(&k.clone()));
        let mut g = k.clone();
        g.grid_dim = (4, 8); // same CTA count, different shape
        assert_ne!(fingerprint(&k), fingerprint(&g));
        let with_alu = Kernel::new(
            "t",
            (8, 4),
            128,
            ProgramBuilder::new()
                .alu(1)
                .ld(AddrPattern::Affine(AffinePattern::dense(
                    0,
                    CtaTerm::Linear { pitch: 4096 },
                )))
                .wait()
                .build(),
        );
        assert_ne!(fingerprint(&k), fingerprint(&with_alu));
    }

    #[test]
    #[should_panic(expected = "invalid kernel")]
    fn rejects_non_warp_multiple() {
        let _ = Kernel::new("t", (1, 1), 100, prog());
    }

    #[test]
    #[should_panic(expected = "invalid kernel")]
    fn rejects_empty_grid() {
        let _ = Kernel::new("t", (0, 1), 128, prog());
    }
}
