//! Canonical content hashing for run identity.
//!
//! The sweep-farm result cache (crate `caps-metrics`) keys whole
//! simulations by a digest of *everything that determines their
//! statistics*: the full [`GpuConfig`](crate::config::GpuConfig), the
//! engine selection, the workload's kernel IR, the scale, and the cycle
//! ceiling. This module provides the two halves of that contract:
//!
//! * [`Digest`] — a dependency-free, endian-stable, 128-bit streaming
//!   hash (two independent FNV-1a-style lanes with a SplitMix64
//!   finalizer). It is **not** cryptographic; it only needs to make
//!   accidental collisions between distinct run specifications
//!   negligible (~2⁻⁶⁴ per pair at 128 bits).
//! * [`Hashable`] — the structural traversal. Implementations write
//!   every semantically meaningful field, framing variable-length data
//!   with length prefixes and enum variants with discriminant tags so
//!   that distinct values can never serialize to the same byte stream.
//!
//! The rule for implementors: *if changing a field can change a run's
//! [`Stats`](crate::stats::Stats), the field must be written.* The
//! digest property tests in `caps-metrics` enforce this by flipping
//! configuration fields and kernel-IR instructions one at a time and
//! asserting the key moves.

/// 128-bit streaming content hash.
///
/// Two 64-bit multiply-xor lanes are fed the same byte stream with
/// different initial states and different odd multipliers, then each is
/// passed through a SplitMix64 finalizer. Output is stable across
/// platforms, endianness, and Rust versions (no `std::hash` involved).
#[derive(Debug, Clone)]
pub struct Digest {
    a: u64,
    b: u64,
}

const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a 64 offset basis
const OFFSET_B: u64 = 0x8422_2325_cbf2_9ce4; // word-swapped basis
const PRIME_A: u64 = 0x0000_0100_0000_01b3; // FNV-1a 64 prime
const PRIME_B: u64 = 0x9e37_79b9_7f4a_7c15; // odd golden-ratio constant

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Fresh digest with the standard initial state.
    pub fn new() -> Self {
        Digest {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    /// Fresh digest pre-salted with an arbitrary context string (cache
    /// schema versions, build fingerprints).
    pub fn with_salt(salt: &str) -> Self {
        let mut d = Self::new();
        d.write_str(salt);
        d
    }

    /// Absorb raw bytes. All typed writers funnel through here.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ x as u64).wrapping_mul(PRIME_A);
            self.b = (self.b ^ x as u64).wrapping_mul(PRIME_B);
        }
    }

    /// Absorb a one-byte enum-discriminant / framing tag.
    #[inline]
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Absorb a `bool`.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_tag(v as u8);
    }

    /// Absorb a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `i64` (little-endian two's complement).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to 64 bits so 32- and 64-bit hosts agree.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by exact bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so concatenations cannot collide.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finalize into the 128-bit key. The digest may keep absorbing
    /// afterwards; `finish` is a pure read.
    pub fn finish(&self) -> u128 {
        ((splitmix64(self.a) as u128) << 64) | splitmix64(self.b) as u128
    }

    /// The key as fixed-width lowercase hex (cache file stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.finish())
    }
}

/// Types whose full semantic content can be streamed into a [`Digest`].
///
/// Contract: two values compare equal under the type's own notion of
/// behavioural equality **iff** they write identical byte streams.
pub trait Hashable {
    /// Stream every semantically meaningful field into `d`.
    fn digest_into(&self, d: &mut Digest);
}

/// One-shot convenience: digest a single value with a fresh state.
pub fn fingerprint<T: Hashable + ?Sized>(value: &T) -> u128 {
    let mut d = Digest::new();
    value.digest_into(&mut d);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Digest::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Digest::new();
        b.write_u32(1);
        b.write_u32(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.write_u32(2);
        c.write_u32(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn salt_changes_every_key() {
        let mut a = Digest::with_salt("v1");
        let mut b = Digest::with_salt("v2");
        a.write_u64(42);
        b.write_u64(42);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn finish_is_a_pure_read() {
        let mut d = Digest::new();
        d.write_u64(7);
        let first = d.finish();
        assert_eq!(first, d.finish());
        d.write_u64(8);
        assert_ne!(first, d.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut d = Digest::new();
        d.write_tag(0);
        assert_eq!(d.hex().len(), 32);
        assert_eq!(d.hex(), format!("{:032x}", d.finish()));
    }

    #[test]
    fn single_bit_flips_move_both_lanes() {
        // Not a statistical test — just a guard that the second lane is
        // actually wired up and not mirroring the first.
        let mut base = Digest::new();
        base.write_u64(0);
        let mut flip = Digest::new();
        flip.write_u64(1);
        let (b, f) = (base.finish(), flip.finish());
        assert_ne!(b as u64, f as u64, "low lane must move");
        assert_ne!((b >> 64) as u64, (f >> 64) as u64, "high lane must move");
    }
}
