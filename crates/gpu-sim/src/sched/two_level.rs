//! Two-level warp scheduler, with the PAS and ORCH policy extensions.
//!
//! Baseline behaviour (Narasiman et al.): a bounded *ready queue* holds
//! the warps considered for issue; all other warps sit in a *pending
//! queue*. When a ready warp hits a long-latency load dependence it is
//! demoted to pending and an eligible pending warp is promoted.
//!
//! PAS (§V-A) changes exactly two things:
//! 1. warps carrying the one-bit *leading warp marker* are kept at the
//!    front of the ready queue (and displace a trailing ready warp when
//!    the queue is full), so every CTA's base address is discovered as
//!    early as possible (Fig. 8b);
//! 2. when prefetched data bound to a pending warp arrives, that warp is
//!    *eagerly woken*: one ready warp is forcibly pushed to pending and
//!    the target warp takes its place, so the data is consumed before L1
//!    evicts it.
//!
//! ORCH grouping (Jog et al.) instead interleaves promotion across
//! scheduling groups so consecutive warps run in different groups.

use super::slotlist::SlotList;
use super::WarpScheduler;
use crate::types::{Cycle, WarpSlot};

/// Per-warp bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct WarpInfo {
    resident: bool,
    in_ready: bool,
    /// May be promoted (not blocked on memory).
    eligible: bool,
    leading: bool,
    group: u8,
    /// Prefetched data arrived while the warp was memory-blocked; wake
    /// it eagerly the moment it becomes eligible.
    wake_armed: bool,
}

/// Two-level scheduler; `pas` and `grouped` select the policy extensions.
///
/// Both queues are intrusive [`SlotList`]s: demote, wake-up, and finish
/// events mutate them in O(1) through per-warp index arrays (the seed's
/// `VecDeque`s paid an O(n) `position`/`retain`/`contains` scan per
/// event), while FIFO iteration order — and therefore the PAS
/// leading-segment and promotion semantics — is preserved exactly.
#[derive(Debug)]
pub struct TwoLevelScheduler {
    capacity: usize,
    ready: SlotList,
    pending: SlotList,
    info: Vec<WarpInfo>,
    pas: bool,
    grouped: bool,
    wakeup: bool,
    last_group: u8,
    /// Eager wake-ups performed (stats surface).
    pub wakeups: u64,
}

impl TwoLevelScheduler {
    /// `capacity` ready-queue entries (8 in Table III).
    pub fn new(capacity: usize, pas: bool, grouped: bool) -> Self {
        assert!(capacity > 0);
        TwoLevelScheduler {
            capacity,
            ready: SlotList::new(),
            pending: SlotList::new(),
            info: Vec::new(),
            pas,
            grouped,
            wakeup: pas,
            last_group: u8::MAX,
            wakeups: 0,
        }
    }

    /// PAS with the eager prefetch wake-up disabled (Fig. 14a ablation).
    pub fn without_wakeup(capacity: usize) -> Self {
        let mut s = Self::new(capacity, true, false);
        s.wakeup = false;
        s
    }

    fn info_mut(&mut self, w: WarpSlot) -> &mut WarpInfo {
        if self.info.len() <= w {
            self.info.resize(w + 1, WarpInfo::default());
        }
        &mut self.info[w]
    }

    /// Insert into the ready queue honouring the leading-segment rule.
    /// The scan for the first trailing warp is bounded by `capacity`
    /// (8 in Table III) and cannot be cached as a pointer: a warp that
    /// loses its leading flag in place ([`WarpScheduler::on_leading_done`])
    /// silently moves the segment boundary.
    fn ready_insert(&mut self, w: WarpSlot) {
        debug_assert!(self.ready.len() < self.capacity);
        let leading = self.info[w].leading;
        self.info[w].in_ready = true;
        if self.pas && leading {
            // After the last leading warp, before the first trailing one.
            let pos = self.ready.iter().find(|&x| !self.info[x].leading);
            match pos {
                Some(anchor) => self.ready.insert_before(anchor, w),
                None => self.ready.push_back(w),
            }
        } else {
            self.ready.push_back(w);
        }
    }

    fn ready_remove(&mut self, w: WarpSlot) {
        self.ready.remove(w);
        self.info[w].in_ready = false;
    }

    /// Choose the next pending warp to promote, honouring policy order.
    fn promotion_candidate(&self) -> Option<WarpSlot> {
        let eligible =
            |w: WarpSlot| self.info[w].resident && self.info[w].eligible && !self.info[w].in_ready;
        if self.pas {
            // Leading warps first, then FIFO.
            if let Some(w) = self
                .pending
                .iter()
                .find(|&w| eligible(w) && self.info[w].leading)
            {
                return Some(w);
            }
        }
        if self.grouped {
            // Prefer a warp from a different group than the last promoted.
            if let Some(w) = self
                .pending
                .iter()
                .find(|&w| eligible(w) && self.info[w].group != self.last_group)
            {
                return Some(w);
            }
        }
        self.pending.iter().find(|&w| eligible(w))
    }

    /// Fill free ready-queue slots from the pending queue.
    fn promote(&mut self) {
        while self.ready.len() < self.capacity {
            let Some(w) = self.promotion_candidate() else {
                break;
            };
            self.pending.remove(w);
            self.last_group = self.info[w].group;
            self.ready_insert(w);
        }
    }

    /// Demote one trailing (non-leading if possible) ready warp to make
    /// room. Returns `true` if a slot was freed.
    fn displace_one(&mut self) -> bool {
        // Scan from the back: prefer the newest trailing warp.
        let victim = self
            .ready
            .iter_rev()
            .find(|&x| !self.info[x].leading)
            .or_else(|| self.ready.back());
        let Some(v) = victim else { return false };
        self.ready_remove(v);
        // The displaced warp is not memory-blocked: keep it eligible.
        self.info[v].eligible = true;
        self.pending.push_front(v);
        true
    }

    /// Eagerly place `w` into the ready queue: take a free slot if one
    /// exists, otherwise move `w` to the front of the pending queue so
    /// it is promoted next. Displacing an actively running warp proved
    /// counter-productive (it breaks the pipeline the prefetch was
    /// trying to feed), so the wake-up is gentle when the queue is full.
    fn force_into_ready(&mut self, w: WarpSlot) -> bool {
        self.pending.remove(w);
        if self.ready.len() < self.capacity {
            self.ready_insert(w);
        } else {
            self.pending.push_front(w);
        }
        true
    }

    /// Number of warps currently in the ready queue (test/diagnostics).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Ready-queue contents in priority order (test/diagnostics).
    pub fn ready_order(&self) -> Vec<WarpSlot> {
        self.ready.iter().collect()
    }

    /// Pending-queue contents in FIFO order (test/diagnostics).
    pub fn pending_order(&self) -> Vec<WarpSlot> {
        self.pending.iter().collect()
    }
}

impl WarpScheduler for TwoLevelScheduler {
    fn name(&self) -> &'static str {
        match (self.pas, self.grouped) {
            (true, _) => "PA-TLV",
            (false, true) => "ORCH-TLV",
            (false, false) => "TLV",
        }
    }

    fn on_launch(&mut self, w: WarpSlot, leading: bool, group: u8) {
        *self.info_mut(w) = WarpInfo {
            resident: true,
            in_ready: false,
            eligible: true,
            leading,
            group,
            wake_armed: false,
        };
        if self.ready.len() < self.capacity {
            self.ready_insert(w);
            self.last_group = group;
        } else if self.pas && leading {
            // Leading warps preempt a trailing ready warp (Fig. 8b).
            if self.displace_one() {
                self.ready_insert(w);
            } else {
                self.pending.push_back(w);
            }
        } else {
            self.pending.push_back(w);
        }
    }

    fn on_finish(&mut self, w: WarpSlot) {
        self.ready_remove(w);
        self.pending.remove(w);
        self.info[w] = WarpInfo::default();
        self.promote();
    }

    fn on_long_latency(&mut self, w: WarpSlot) {
        self.ready_remove(w);
        self.info[w].eligible = false;
        if !self.pending.contains(w) {
            self.pending.push_back(w);
        }
        self.promote();
    }

    fn on_ready_again(&mut self, w: WarpSlot) {
        if !self.info[w].resident {
            return;
        }
        self.info[w].eligible = true;
        if self.info[w].wake_armed && !self.info[w].in_ready {
            // A prefetch landed while this warp was blocked: wake it the
            // moment it is schedulable so the data isn't evicted first.
            self.info[w].wake_armed = false;
            if self.force_into_ready(w) {
                self.wakeups += 1;
            }
            return;
        }
        self.promote();
    }

    fn on_prefetch_fill(&mut self, w: WarpSlot) -> bool {
        if !self.pas || !self.wakeup {
            return false;
        }
        let Some(info) = self.info.get(w).copied() else {
            return false;
        };
        if !info.resident || info.in_ready {
            return false;
        }
        if !info.eligible {
            // Still blocked on its own loads: arm the wake-up for the
            // moment its data returns.
            self.info[w].wake_armed = true;
            return false;
        }
        if self.force_into_ready(w) {
            self.wakeups += 1;
            return true;
        }
        false
    }

    fn on_leading_done(&mut self, w: WarpSlot) {
        if let Some(info) = self.info.get_mut(w) {
            info.leading = false;
        }
    }

    fn pick(
        &mut self,
        _now: Cycle,
        can_issue: &mut dyn FnMut(WarpSlot) -> bool,
    ) -> Option<WarpSlot> {
        // Oldest-first within the (priority-ordered) ready queue.
        self.ready.iter().find(|&w| can_issue(w))
    }

    fn has_candidate(&self, can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> bool {
        // Promotion happens only in event handlers, never inside `pick`,
        // so the ready queue alone decides issueability.
        self.ready.iter().any(can_issue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> impl FnMut(WarpSlot) -> bool {
        |_| true
    }

    #[test]
    fn baseline_fifo_order() {
        let mut s = TwoLevelScheduler::new(3, false, false);
        for w in 0..5 {
            s.on_launch(w, w == 0, 0);
        }
        assert_eq!(s.ready_order(), vec![0, 1, 2]);
        assert_eq!(s.pick(0, &mut all()), Some(0));
        // Demote 0 → 3 promoted.
        s.on_long_latency(0);
        assert_eq!(s.ready_order(), vec![1, 2, 3]);
    }

    #[test]
    fn demoted_warp_returns_after_ready_again() {
        let mut s = TwoLevelScheduler::new(2, false, false);
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        s.on_long_latency(0); // ready: [1,2], pending: [0(blocked)]
        assert_eq!(s.ready_order(), vec![1, 2]);
        s.on_long_latency(1); // ready: [2], 0 still blocked
        assert_eq!(s.ready_order(), vec![2]);
        s.on_ready_again(0);
        assert_eq!(s.ready_order(), vec![2, 0]);
    }

    #[test]
    fn pas_orders_leading_warps_first_like_fig8b() {
        // 3 CTAs × 3 warps, ready queue of 4 — the Fig. 8b scenario.
        // Launch order: A0 A1 A2 B0 B1 B2 C0 C1 C2 (slots 0..9).
        let mut s = TwoLevelScheduler::new(4, true, false);
        for w in 0..9 {
            let leading = w % 3 == 0;
            s.on_launch(w, leading, (w % 3) as u8);
        }
        // Expect leading warps A0(0), B0(3), C0(6) at the front, then A1.
        assert_eq!(s.ready_order(), vec![0, 3, 6, 1]);
    }

    #[test]
    fn baseline_orders_cta_by_cta_like_fig8a() {
        let mut s = TwoLevelScheduler::new(4, false, false);
        for w in 0..9 {
            s.on_launch(w, w % 3 == 0, 0);
        }
        assert_eq!(s.ready_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pas_promotes_leading_warps_first() {
        let mut s = TwoLevelScheduler::new(2, true, false);
        // Two trailing fill the queue, then a leading launches: displaces.
        s.on_launch(0, false, 0);
        s.on_launch(1, false, 0);
        s.on_launch(2, true, 0);
        assert!(s.ready_order().contains(&2));
        assert_eq!(s.ready_len(), 2);
    }

    #[test]
    fn prefetch_wakeup_moves_target_to_promotion_front() {
        let mut s = TwoLevelScheduler::new(2, true, false);
        for w in 0..4 {
            s.on_launch(w, false, 0);
        }
        assert_eq!(s.ready_order(), vec![0, 1]);
        // Warp 3 is pending and eligible; prefetch data arrives for it.
        // The gentle wake-up queues it ahead of warp 2 for the next
        // free ready slot rather than displacing a running warp.
        assert!(s.on_prefetch_fill(3));
        assert_eq!(s.wakeups, 1);
        s.on_finish(0);
        assert_eq!(
            s.ready_order(),
            vec![1, 3],
            "woken warp promoted before warp 2"
        );
    }

    #[test]
    fn prefetch_wakeup_takes_free_slot_immediately() {
        let mut s = TwoLevelScheduler::new(4, true, false);
        for w in 0..6 {
            s.on_launch(w, false, 0);
        }
        s.on_long_latency(0); // frees a slot, promotes 4
        s.on_long_latency(1); // frees a slot, promotes 5
        s.on_finish(4);
        s.on_finish(5);
        s.on_finish(2);
        // Queue now has free space; a wakeup inserts directly.
        assert!(s.ready_len() < 4);
        assert!(!s.on_prefetch_fill(0), "blocked warp only arms the flag");
        s.on_ready_again(0);
        assert!(
            s.ready_order().contains(&0),
            "armed wake fires on data return"
        );
        assert_eq!(s.wakeups, 1);
    }

    #[test]
    fn prefetch_wakeup_ignores_blocked_warps() {
        let mut s = TwoLevelScheduler::new(2, true, false);
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        s.on_long_latency(0); // 0 blocked in pending
        assert!(!s.on_prefetch_fill(0));
    }

    #[test]
    fn without_wakeup_keeps_priority_but_ignores_fills() {
        let mut s = TwoLevelScheduler::without_wakeup(2);
        for w in 0..4 {
            s.on_launch(w, w == 3, 0);
        }
        // Leading warp still displaces into the ready queue…
        assert!(s.ready_order().contains(&3));
        // …but a prefetch fill promotes nothing.
        assert!(!s.on_prefetch_fill(1));
        assert_eq!(s.wakeups, 0);
    }

    #[test]
    fn prefetch_wakeup_is_noop_without_pas() {
        let mut s = TwoLevelScheduler::new(2, false, false);
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        assert!(!s.on_prefetch_fill(2));
        assert_eq!(s.ready_order(), vec![0, 1]);
    }

    #[test]
    fn grouped_promotion_interleaves_groups() {
        let mut s = TwoLevelScheduler::new(1, false, true);
        // Queue cap 1; pending holds warps of groups 0,0,1.
        s.on_launch(0, false, 0); // ready
        s.on_launch(1, false, 0);
        s.on_launch(2, false, 0);
        s.on_launch(3, false, 1);
        s.on_long_latency(0);
        // Promotion should prefer group 1 (different from group 0 of the
        // initially promoted warp 0).
        assert_eq!(s.ready_order(), vec![3]);
    }

    #[test]
    fn finish_releases_slot_and_promotes() {
        let mut s = TwoLevelScheduler::new(1, false, false);
        s.on_launch(0, false, 0);
        s.on_launch(1, false, 0);
        assert_eq!(s.ready_order(), vec![0]);
        s.on_finish(0);
        assert_eq!(s.ready_order(), vec![1]);
        s.on_finish(1);
        assert_eq!(s.pick(0, &mut all()), None);
    }

    #[test]
    fn no_warp_lost_or_duplicated_under_churn() {
        // Conservation property exercised deterministically.
        let mut s = TwoLevelScheduler::new(3, true, false);
        for w in 0..8 {
            s.on_launch(w, w % 4 == 0, (w % 2) as u8);
        }
        for round in 0..50u32 {
            let w = (round as usize * 3) % 8;
            match round % 3 {
                0 => s.on_long_latency(w),
                1 => s.on_ready_again(w),
                _ => {
                    let _ = s.on_prefetch_fill(w);
                }
            }
            // Invariant: each resident warp appears exactly once across
            // the two queues.
            let mut count = vec![0usize; 8];
            for x in s.ready_order() {
                count[x] += 1;
            }
            for x in s.pending_order() {
                count[x] += 1;
            }
            assert!(count.iter().all(|&c| c == 1), "round {round}: {count:?}");
        }
    }
}
