//! Intrusive position-indexed warp queue.
//!
//! The scheduler queues hold warp *slot indices* — small dense integers
//! bounded by `max_warps_per_sm` — yet the seed implementation stored
//! them in `Vec`/`VecDeque` and paid an O(n) scan (`position`, `retain`,
//! `contains`) on every demote, wake-up, and finish event. [`SlotList`]
//! is the flat replacement: a doubly-linked list threaded through
//! per-slot `next`/`prev` index arrays plus a membership flag per slot,
//! so push/insert/remove/contains are all O(1) while iteration still
//! walks exact FIFO (insertion) order. Removal never reorders the
//! survivors, matching `Vec::remove`/`retain` semantics — this is what
//! keeps the PAS leading-segment and FIFO promotion order bit-identical
//! to the seed (pinned by `tests/structures_differential.rs`).

/// Sentinel for "no slot".
const NIL: usize = usize::MAX;

/// An ordered set of warp slots with O(1) mutation at any position.
///
/// A slot may be a member of the list at most once; `push_*` and
/// `insert_before` panic (debug) on double insertion.
#[derive(Debug, Clone)]
pub struct SlotList {
    next: Vec<usize>,
    prev: Vec<usize>,
    member: Vec<bool>,
    head: usize,
    tail: usize,
    len: usize,
}

impl Default for SlotList {
    // A derived Default would zero `head`/`tail` — slot 0, not NIL.
    fn default() -> Self {
        Self::new()
    }
}

impl SlotList {
    /// Empty list.
    pub fn new() -> Self {
        SlotList {
            next: Vec::new(),
            prev: Vec::new(),
            member: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Members currently linked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slot is linked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `w` is linked.
    #[inline]
    pub fn contains(&self, w: usize) -> bool {
        self.member.get(w).copied().unwrap_or(false)
    }

    /// First (oldest) member.
    #[inline]
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last (newest) member.
    #[inline]
    pub fn back(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Member after `w`, if any. `w` must be linked.
    #[inline]
    pub fn next_of(&self, w: usize) -> Option<usize> {
        debug_assert!(self.contains(w));
        let n = self.next[w];
        (n != NIL).then_some(n)
    }

    fn ensure(&mut self, w: usize) {
        if self.next.len() <= w {
            self.next.resize(w + 1, NIL);
            self.prev.resize(w + 1, NIL);
            self.member.resize(w + 1, false);
        }
    }

    /// Append `w` at the tail.
    pub fn push_back(&mut self, w: usize) {
        self.ensure(w);
        debug_assert!(!self.member[w], "slot {w} already linked");
        self.member[w] = true;
        self.prev[w] = self.tail;
        self.next[w] = NIL;
        if self.tail != NIL {
            self.next[self.tail] = w;
        } else {
            self.head = w;
        }
        self.tail = w;
        self.len += 1;
    }

    /// Prepend `w` at the head.
    pub fn push_front(&mut self, w: usize) {
        self.ensure(w);
        debug_assert!(!self.member[w], "slot {w} already linked");
        self.member[w] = true;
        self.next[w] = self.head;
        self.prev[w] = NIL;
        if self.head != NIL {
            self.prev[self.head] = w;
        } else {
            self.tail = w;
        }
        self.head = w;
        self.len += 1;
    }

    /// Insert `w` immediately before linked member `anchor`.
    pub fn insert_before(&mut self, anchor: usize, w: usize) {
        debug_assert!(self.contains(anchor));
        self.ensure(w);
        debug_assert!(!self.member[w], "slot {w} already linked");
        let p = self.prev[anchor];
        self.member[w] = true;
        self.prev[w] = p;
        self.next[w] = anchor;
        self.prev[anchor] = w;
        if p != NIL {
            self.next[p] = w;
        } else {
            self.head = w;
        }
        self.len += 1;
    }

    /// Unlink `w`. Returns `false` if it was not a member.
    pub fn remove(&mut self, w: usize) -> bool {
        if !self.contains(w) {
            return false;
        }
        let (p, n) = (self.prev[w], self.next[w]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.member[w] = false;
        self.next[w] = NIL;
        self.prev[w] = NIL;
        self.len -= 1;
        true
    }

    /// Remove and return the head.
    pub fn pop_front(&mut self) -> Option<usize> {
        let h = self.front()?;
        self.remove(h);
        Some(h)
    }

    /// Iterate members oldest → newest.
    pub fn iter(&self) -> SlotIter<'_> {
        SlotIter {
            list: self,
            at: self.head,
            reverse: false,
        }
    }

    /// Iterate members newest → oldest.
    pub fn iter_rev(&self) -> SlotIter<'_> {
        SlotIter {
            list: self,
            at: self.tail,
            reverse: true,
        }
    }
}

/// Forward or backward walk over a [`SlotList`].
#[derive(Debug)]
pub struct SlotIter<'a> {
    list: &'a SlotList,
    at: usize,
    reverse: bool,
}

impl Iterator for SlotIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.at == NIL {
            return None;
        }
        let w = self.at;
        self.at = if self.reverse {
            self.list.prev[w]
        } else {
            self.list.next[w]
        };
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &SlotList) -> Vec<usize> {
        l.iter().collect()
    }

    #[test]
    fn fifo_order_preserved() {
        let mut l = SlotList::new();
        for w in [3, 7, 1, 9] {
            l.push_back(w);
        }
        assert_eq!(collect(&l), vec![3, 7, 1, 9]);
        assert_eq!(l.iter_rev().collect::<Vec<_>>(), vec![9, 1, 7, 3]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.front(), Some(3));
        assert_eq!(l.back(), Some(9));
    }

    #[test]
    fn remove_middle_head_tail() {
        let mut l = SlotList::new();
        for w in 0..5 {
            l.push_back(w);
        }
        assert!(l.remove(2));
        assert_eq!(collect(&l), vec![0, 1, 3, 4]);
        assert!(l.remove(0));
        assert_eq!(collect(&l), vec![1, 3, 4]);
        assert!(l.remove(4));
        assert_eq!(collect(&l), vec![1, 3]);
        assert!(!l.remove(4), "double remove is a no-op");
        assert!(!l.contains(4));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn push_front_and_insert_before() {
        let mut l = SlotList::new();
        l.push_back(5);
        l.push_front(2);
        l.insert_before(5, 8);
        assert_eq!(collect(&l), vec![2, 8, 5]);
        l.insert_before(2, 0);
        assert_eq!(collect(&l), vec![0, 2, 8, 5]);
    }

    #[test]
    fn reinsertion_after_remove() {
        let mut l = SlotList::new();
        for w in 0..3 {
            l.push_back(w);
        }
        l.remove(1);
        l.push_back(1);
        assert_eq!(collect(&l), vec![0, 2, 1]);
        l.pop_front();
        assert_eq!(collect(&l), vec![2, 1]);
    }

    #[test]
    fn drain_to_empty_and_reuse() {
        let mut l = SlotList::new();
        l.push_back(4);
        l.push_back(6);
        assert_eq!(l.pop_front(), Some(4));
        assert_eq!(l.pop_front(), Some(6));
        assert_eq!(l.pop_front(), None);
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
        l.push_back(6);
        assert_eq!(collect(&l), vec![6]);
    }
}
