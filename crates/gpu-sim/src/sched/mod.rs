//! Warp schedulers.
//!
//! The baseline for the whole evaluation is the two-level scheduler
//! (Narasiman et al., MICRO'11; Gebhart et al., ISCA'11) with an 8-entry
//! ready queue (Table III). [`two_level::TwoLevelScheduler`] implements it
//! together with the two policy extensions the paper builds on it:
//! leading-warp prioritization and eager prefetch wake-up (PAS, §V-A) and
//! ORCH-style group-interleaved promotion (Jog et al., ISCA'13).

pub mod slotlist;
mod two_level;

pub use slotlist::SlotList;
pub use two_level::TwoLevelScheduler;

use crate::config::{GpuConfig, SchedulerKind};
use crate::types::{Cycle, WarpSlot};

/// Scheduling policy interface driven by the SM each cycle.
///
/// The SM notifies the scheduler of warp lifecycle events and asks it to
/// `pick` one issuable warp per issue slot. `can_issue` reflects
/// microarchitectural readiness (not busy, not at a barrier, LD/ST queue
/// space for memory ops).
pub trait WarpScheduler: Send {
    /// Display name.
    fn name(&self) -> &'static str;
    /// A warp was launched into slot `w`. `leading` marks the CTA's
    /// leading warp; `group` is the warp's scheduling-group hint
    /// (used by ORCH-style grouping).
    fn on_launch(&mut self, w: WarpSlot, leading: bool, group: u8);
    /// Warp `w` finished its program.
    fn on_finish(&mut self, w: WarpSlot);
    /// Warp `w` hit a long-latency dependence (descheduled).
    fn on_long_latency(&mut self, w: WarpSlot);
    /// Warp `w`'s outstanding loads all returned (re-schedulable).
    fn on_ready_again(&mut self, w: WarpSlot);
    /// Prefetched data bound to warp `w` arrived (PAS eager wake-up).
    /// Returns `true` if the scheduler actually promoted the warp.
    fn on_prefetch_fill(&mut self, _w: WarpSlot) -> bool {
        false
    }
    /// Leading warp `w` has served its purpose (issued its first load,
    /// registering the CTA's base addresses): drop its priority so it no
    /// longer runs ahead of its CTA (§V-A: leading warps are prioritized
    /// "until they compute the base address").
    fn on_leading_done(&mut self, _w: WarpSlot) {}
    /// Choose one warp to issue at `now`.
    fn pick(&mut self, now: Cycle, can_issue: &mut dyn FnMut(WarpSlot) -> bool)
        -> Option<WarpSlot>;
    /// Whether [`Self::pick`] would return `Some` for this `can_issue`
    /// predicate, *without* mutating scheduler state (`pick` may advance
    /// rotation cursors on success, so it cannot be used as a probe).
    /// The fast-forward clock skip relies on this being boolean-equal to
    /// `pick(..).is_some()`; the conservative default (`true`) merely
    /// disables skipping for schedulers that do not override it.
    fn has_candidate(&self, _can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> bool {
        true
    }
}

/// Loose round-robin over all resident warps.
///
/// The rotation is kept as a pointer into a [`SlotList`] rather than an
/// integer index, making retirement O(1). The seed's index arithmetic
/// had one observable quirk this preserves exactly: when the cursor's
/// warp retires from the tail, the cursor lands "one past the end" — a
/// position the *next launched* warp occupies (so rotation resumes
/// there), and which otherwise wraps to the head at the next `pick`.
#[derive(Debug, Default)]
pub struct LrrScheduler {
    warps: SlotList,
    cursor: Option<WarpSlot>,
    cursor_at_end: bool,
}

impl WarpScheduler for LrrScheduler {
    fn name(&self) -> &'static str {
        "LRR"
    }

    fn on_launch(&mut self, w: WarpSlot, _leading: bool, _group: u8) {
        self.warps.push_back(w);
        if self.cursor_at_end {
            // The new warp occupies the position the cursor points at.
            self.cursor = Some(w);
            self.cursor_at_end = false;
        }
    }

    fn on_finish(&mut self, w: WarpSlot) {
        if !self.warps.contains(w) {
            return;
        }
        if self.cursor == Some(w) {
            match self.warps.next_of(w) {
                Some(n) => self.cursor = Some(n),
                None => {
                    self.cursor = None;
                    self.cursor_at_end = true;
                }
            }
        }
        self.warps.remove(w);
    }

    fn on_long_latency(&mut self, _w: WarpSlot) {}

    fn on_ready_again(&mut self, _w: WarpSlot) {}

    fn pick(
        &mut self,
        _now: Cycle,
        can_issue: &mut dyn FnMut(WarpSlot) -> bool,
    ) -> Option<WarpSlot> {
        let head = self.warps.front()?;
        let start = match self.cursor {
            Some(c) if !self.cursor_at_end => c,
            _ => head,
        };
        let mut w = start;
        loop {
            if can_issue(w) {
                self.cursor = Some(self.warps.next_of(w).unwrap_or(head));
                self.cursor_at_end = false;
                return Some(w);
            }
            w = self.warps.next_of(w).unwrap_or(head);
            if w == start {
                return None;
            }
        }
    }

    fn has_candidate(&self, can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> bool {
        self.warps.iter().any(can_issue)
    }
}

/// Greedy-then-oldest: keep issuing the current warp until it cannot
/// issue, then fall back to the oldest (launch-order) issuable warp.
/// With `pas` set, leading warps are greedily scheduled first "until
/// they compute the base address" (§V-A's GTO adaptation of PAS).
#[derive(Debug, Default)]
pub struct GtoScheduler {
    warps: SlotList, // launch order
    current: Option<WarpSlot>,
    pas: bool,
    leading: SlotList,
}

impl GtoScheduler {
    /// Plain GTO.
    pub fn new() -> Self {
        Self::default()
    }

    /// The PAS variant: leading warps preempt the greedy pick until
    /// their base addresses are registered.
    pub fn with_leading_priority() -> Self {
        GtoScheduler {
            pas: true,
            ..Self::default()
        }
    }
}

impl WarpScheduler for GtoScheduler {
    fn name(&self) -> &'static str {
        if self.pas {
            "PA-GTO"
        } else {
            "GTO"
        }
    }

    fn on_launch(&mut self, w: WarpSlot, leading: bool, _group: u8) {
        self.warps.push_back(w);
        if self.pas && leading {
            self.leading.push_back(w);
        }
    }

    fn on_finish(&mut self, w: WarpSlot) {
        self.warps.remove(w);
        self.leading.remove(w);
        if self.current == Some(w) {
            self.current = None;
        }
    }

    fn on_long_latency(&mut self, w: WarpSlot) {
        if self.current == Some(w) {
            self.current = None;
        }
    }

    fn on_ready_again(&mut self, _w: WarpSlot) {}

    fn on_leading_done(&mut self, w: WarpSlot) {
        self.leading.remove(w);
    }

    fn pick(
        &mut self,
        _now: Cycle,
        can_issue: &mut dyn FnMut(WarpSlot) -> bool,
    ) -> Option<WarpSlot> {
        // Leading warps that have not yet computed their CTA's base
        // address jump the greedy order (§V-A).
        if self.pas {
            if let Some(w) = self.leading.iter().find(|&w| can_issue(w)) {
                return Some(w);
            }
        }
        if let Some(c) = self.current {
            if can_issue(c) {
                return Some(c);
            }
        }
        for w in self.warps.iter() {
            if can_issue(w) {
                self.current = Some(w);
                return Some(w);
            }
        }
        None
    }

    fn has_candidate(&self, can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> bool {
        // `leading` and `current` are always members of `warps`, so the
        // launch-order scan alone decides whether any pick can succeed.
        self.warps.iter().any(can_issue)
    }
}

/// Build the scheduler selected by `cfg`.
pub fn make_scheduler(cfg: &GpuConfig) -> Box<dyn WarpScheduler> {
    match cfg.scheduler {
        SchedulerKind::Lrr => Box::new(LrrScheduler::default()),
        SchedulerKind::Gto => Box::new(GtoScheduler::new()),
        SchedulerKind::PasGto => Box::new(GtoScheduler::with_leading_priority()),
        SchedulerKind::TwoLevel => {
            Box::new(TwoLevelScheduler::new(cfg.ready_queue_size, false, false))
        }
        SchedulerKind::Pas => Box::new(TwoLevelScheduler::new(cfg.ready_queue_size, true, false)),
        SchedulerKind::PasNoWakeup => {
            Box::new(TwoLevelScheduler::without_wakeup(cfg.ready_queue_size))
        }
        SchedulerKind::OrchGrouped => {
            Box::new(TwoLevelScheduler::new(cfg.ready_queue_size, false, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrr_rotates() {
        let mut s = LrrScheduler::default();
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        let mut all = |_: WarpSlot| true;
        assert_eq!(s.pick(0, &mut all), Some(0));
        assert_eq!(s.pick(0, &mut all), Some(1));
        assert_eq!(s.pick(0, &mut all), Some(2));
        assert_eq!(s.pick(0, &mut all), Some(0));
    }

    #[test]
    fn lrr_skips_unissuable() {
        let mut s = LrrScheduler::default();
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        let mut only_2 = |w: WarpSlot| w == 2;
        assert_eq!(s.pick(0, &mut only_2), Some(2));
        assert_eq!(s.pick(0, &mut only_2), Some(2));
    }

    #[test]
    fn lrr_finish_keeps_rotation_sane() {
        let mut s = LrrScheduler::default();
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        let mut all = |_: WarpSlot| true;
        assert_eq!(s.pick(0, &mut all), Some(0));
        s.on_finish(0);
        assert_eq!(s.pick(0, &mut all), Some(1));
        assert_eq!(s.pick(0, &mut all), Some(2));
        assert_eq!(s.pick(0, &mut all), Some(1));
    }

    #[test]
    fn gto_sticks_with_current() {
        let mut s = GtoScheduler::default();
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        let mut all = |_: WarpSlot| true;
        assert_eq!(s.pick(0, &mut all), Some(0));
        assert_eq!(s.pick(0, &mut all), Some(0));
        s.on_long_latency(0);
        let mut not_0 = |w: WarpSlot| w != 0;
        assert_eq!(s.pick(0, &mut not_0), Some(1));
        assert_eq!(s.pick(0, &mut not_0), Some(1));
    }

    #[test]
    fn gto_falls_back_to_oldest() {
        let mut s = GtoScheduler::default();
        for w in 0..3 {
            s.on_launch(w, false, 0);
        }
        let mut only_2 = |w: WarpSlot| w == 2;
        assert_eq!(s.pick(0, &mut only_2), Some(2));
        let mut all = |_: WarpSlot| true;
        // Greedy: stays on 2 even though 0 is older.
        assert_eq!(s.pick(0, &mut all), Some(2));
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in [
            SchedulerKind::Lrr,
            SchedulerKind::Gto,
            SchedulerKind::TwoLevel,
            SchedulerKind::Pas,
            SchedulerKind::PasNoWakeup,
            SchedulerKind::OrchGrouped,
        ] {
            let mut cfg = GpuConfig::fermi_gtx480();
            cfg.scheduler = kind;
            let s = make_scheduler(&cfg);
            assert!(!s.name().is_empty());
        }
    }
}
