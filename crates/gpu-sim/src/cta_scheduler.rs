//! Global CTA distributor (§II-B, Fig. 3).
//!
//! CTAs are assigned to SMs one at a time in round-robin order until every
//! SM holds its maximum concurrent CTAs; afterwards assignment is purely
//! demand-driven — a new CTA goes to whichever SM finishes one first. The
//! resulting *non-consecutive* CTA residency per SM is exactly what breaks
//! naive inter-warp stride prefetching across CTA boundaries.

/// Dispenses CTA linear ids in launch order.
#[derive(Debug, Clone)]
pub struct CtaDistributor {
    next: u32,
    total: u32,
}

impl CtaDistributor {
    /// Distributor for a grid of `total` CTAs.
    pub fn new(total: u32) -> Self {
        CtaDistributor { next: 0, total }
    }

    /// Next CTA id, if any remain unlaunched.
    pub fn next_cta(&mut self) -> Option<u32> {
        if self.next < self.total {
            let id = self.next;
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    /// CTAs not yet dispensed.
    pub fn remaining(&self) -> u32 {
        self.total - self.next
    }

    /// The initial round-robin fill order: SM indices to offer CTAs, one
    /// slot at a time, until every SM reaches `slots_per_sm` or the grid
    /// is exhausted. Returns the launch plan as (sm, cta_id) pairs.
    pub fn initial_fill(&mut self, num_sms: usize, slots_per_sm: usize) -> Vec<(usize, u32)> {
        let mut plan = Vec::new();
        'outer: for _round in 0..slots_per_sm {
            for sm in 0..num_sms {
                match self.next_cta() {
                    Some(id) => plan.push((sm, id)),
                    None => break 'outer,
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_initial_fill_matches_fig3() {
        // Fig. 3: 12 CTAs, 3 SMs, 2 slots each → CTA 0,1,2 then 3,4,5.
        let mut d = CtaDistributor::new(12);
        let plan = d.initial_fill(3, 2);
        assert_eq!(plan, vec![(0, 0), (1, 1), (2, 2), (0, 3), (1, 4), (2, 5)]);
        assert_eq!(d.remaining(), 6);
    }

    #[test]
    fn demand_driven_after_fill() {
        let mut d = CtaDistributor::new(12);
        let _ = d.initial_fill(3, 2);
        // CTA 5 on SM 2 finishes first → SM 2 receives CTA 6 (Fig. 3).
        assert_eq!(d.next_cta(), Some(6));
        assert_eq!(d.next_cta(), Some(7));
    }

    #[test]
    fn small_grid_underfills() {
        let mut d = CtaDistributor::new(4);
        let plan = d.initial_fill(3, 2);
        assert_eq!(plan.len(), 4);
        assert_eq!(d.next_cta(), None);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn exhausts_exactly_once() {
        let mut d = CtaDistributor::new(5);
        let mut got = Vec::new();
        while let Some(id) = d.next_cta() {
            got.push(id);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.next_cta(), None);
    }
}
