//! The unified memory-path port layer: preallocated ring buffers with a
//! single credit-based backpressure protocol.
//!
//! Every queue on the SM → L1 → interconnect → L2 → DRAM round trip is
//! built from three types layered on one another:
//!
//! * [`Ring`] — a preallocated power-of-two circular buffer. The steady
//!   state never allocates: capacity is computed from MSHR and queue
//!   bounds at construction, and the rare overflow (store streams,
//!   sustained DRAM saturation — paths with no architectural bound)
//!   doubles the buffer once and counts it in [`Ring::grows`], so sizing
//!   is observable instead of guessed.
//! * [`Port`] — a `Ring` plus an explicit credit count. Producers ask
//!   [`Port::credits`] or call [`Port::try_push`]; a refused push is a
//!   *credit stall*, counted per port. One protocol replaces the five
//!   hand-rolled `len() < depth` idioms the memory path used to have.
//! * [`Link`] — a timed pipe (`Ring<(Cycle, T)>`) feeding an eject
//!   `Port`, replacing the interconnect's `Lane`: messages sent with a
//!   fixed latency mature into the bounded eject queue, and a full eject
//!   queue backs the pipe up without affecting other links.
//!
//! None of the occupancy/stall counters here feed [`crate::stats::Stats`]:
//! fast-forward skips a stalled component's cycles wholesale, so a
//! skipped producer never retries `try_push` and per-port stall counts
//! would diverge between stepping engines. They surface through
//! [`crate::stats::LinkReport`] instead, which is exempt from the
//! bit-identity contract (see DESIGN.md §9d).

use crate::types::Cycle;

/// Counters describing one port (or one link) for host-side reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortSnapshot {
    /// Highest occupancy ever observed.
    pub high_water: usize,
    /// Pushes refused (or producer cycles stalled) for lack of credits.
    pub credit_stalls: u64,
    /// Times the backing ring outgrew its preallocated capacity.
    pub grows: u64,
}

impl PortSnapshot {
    /// Fold another snapshot into this one (max of high waters, sum of
    /// events) — used to aggregate per-component ports into one report
    /// row.
    pub fn absorb(&mut self, other: PortSnapshot) {
        self.high_water = self.high_water.max(other.high_water);
        self.credit_stalls += other.credit_stalls;
        self.grows += other.grows;
    }
}

/// A preallocated circular buffer with power-of-two capacity.
///
/// Indices are masked, never compared against a wrap bound, so push/pop
/// are branch-light; growth (doubling) exists only as a safety valve for
/// queues with no architectural bound and is counted.
#[derive(Debug)]
pub struct Ring<T> {
    buf: Box<[Option<T>]>,
    head: usize,
    len: usize,
    high_water: usize,
    grows: u64,
}

impl<T> Ring<T> {
    /// Ring able to hold at least `cap` elements without reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        Ring {
            buf: (0..cap).map(|_| None).collect(),
            head: 0,
            len: 0,
            high_water: 0,
            grows: 0,
        }
    }

    /// Elements currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Preallocated slot count (power of two).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Highest occupancy ever observed.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Times the ring outgrew its preallocated capacity.
    #[inline]
    pub fn grows(&self) -> u64 {
        self.grows
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    /// Slot at a masked physical index, skipping the bounds check.
    ///
    /// Capacity is a power of two and every caller masks with
    /// `capacity - 1`, so the index is in bounds by construction; the
    /// checked form costs a branch per queue operation on the hottest
    /// paths in the simulator (measured ~5–10% of whole-run time on
    /// queue-heavy workloads). The CI miri job interprets the port unit
    /// tests to keep this honest.
    #[inline]
    fn slot_mut(&mut self, idx: usize) -> &mut Option<T> {
        debug_assert!(idx < self.buf.len());
        // SAFETY: idx was masked by `capacity - 1` (power of two).
        unsafe { self.buf.get_unchecked_mut(idx) }
    }

    /// Shared-reference form of [`Self::slot_mut`].
    #[inline]
    fn slot(&self, idx: usize) -> &Option<T> {
        debug_assert!(idx < self.buf.len());
        // SAFETY: idx was masked by `capacity - 1` (power of two).
        unsafe { self.buf.get_unchecked(idx) }
    }

    /// Append to the tail, doubling the buffer if full (counted).
    pub fn push_back(&mut self, v: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let idx = (self.head + self.len) & self.mask();
        let slot = self.slot_mut(idx);
        debug_assert!(slot.is_none());
        *slot = Some(v);
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Remove and return the head element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let head = self.head;
        let v = self.slot_mut(head).take();
        debug_assert!(v.is_some());
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        v
    }

    /// The head element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.get(0)
    }

    /// Mutable access to the head element.
    #[inline]
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            return None;
        }
        let head = self.head;
        self.slot_mut(head).as_mut()
    }

    /// The `i`-th element from the head (0 = head).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        self.slot((self.head + i) & self.mask()).as_ref()
    }

    /// Remove the `i`-th element from the head, preserving the order of
    /// the rest (elements after `i` shift forward one slot). Order
    /// preservation matters: FR-FCFS tie-breaks on queue position, so a
    /// swap-remove would change scheduling decisions.
    pub fn remove(&mut self, i: usize) -> T {
        assert!(i < self.len, "Ring::remove out of bounds");
        let mask = self.mask();
        let v = self.slot_mut((self.head + i) & mask).take().expect("occupied");
        for j in i..self.len - 1 {
            let next = self.slot_mut((self.head + j + 1) & mask).take();
            *self.slot_mut((self.head + j) & mask) = next;
        }
        self.len -= 1;
        v
    }

    /// Drop every element.
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }

    /// Iterate head → tail.
    pub fn iter(&self) -> RingIter<'_, T> {
        RingIter { ring: self, i: 0 }
    }

    #[cold]
    fn grow(&mut self) {
        let mut bigger: Box<[Option<T>]> = (0..self.buf.len() * 2).map(|_| None).collect();
        for (i, slot) in bigger.iter_mut().take(self.len).enumerate() {
            *slot = self.buf[(self.head + i) & (self.buf.len() - 1)].take();
        }
        self.buf = bigger;
        self.head = 0;
        self.grows += 1;
    }
}

/// Head-to-tail iterator over a [`Ring`].
pub struct RingIter<'a, T> {
    ring: &'a Ring<T>,
    i: usize,
}

impl<'a, T> Iterator for RingIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let v = self.ring.get(self.i);
        self.i += 1;
        v
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.ring.len().saturating_sub(self.i);
        (left, Some(left))
    }
}

impl<T> ExactSizeIterator for RingIter<'_, T> {}

/// A bounded queue with explicit credit-based backpressure.
///
/// `capacity` is the credit limit — the architectural depth of the
/// queue. [`Port::try_push`] consumes a credit or fails (counted);
/// [`Port::push`] is for queues whose producers are bounded elsewhere
/// (it rides the ring's growth valve past the credit limit rather than
/// dropping, so a mis-estimated bound shows up in the report, not as a
/// deadlock or a silent drop).
#[derive(Debug)]
pub struct Port<T> {
    ring: Ring<T>,
    capacity: usize,
    credit_stalls: u64,
}

impl<T> Port<T> {
    /// Port with `capacity` credits, preallocated to hold all of them.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a port needs at least one credit");
        Port {
            ring: Ring::with_capacity(capacity),
            capacity,
            credit_stalls: 0,
        }
    }

    /// Remaining credits (free slots under the architectural depth).
    #[inline]
    pub fn credits(&self) -> usize {
        self.capacity.saturating_sub(self.ring.len())
    }

    /// The credit limit this port was constructed with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push if a credit is available; a refusal hands the value back and
    /// counts a credit stall.
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        if self.ring.len() >= self.capacity {
            self.credit_stalls += 1;
            return Err(v);
        }
        self.ring.push_back(v);
        Ok(())
    }

    /// Unconditional push (growth valve past the credit limit).
    #[inline]
    pub fn push(&mut self, v: T) {
        self.ring.push_back(v);
    }

    /// Record a producer cycle stalled on zero credits without
    /// attempting a push (for producers that check [`Self::credits`]
    /// before constructing the value).
    #[inline]
    pub fn note_stall(&mut self) {
        self.credit_stalls += 1;
    }

    /// Remove and return the head element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.ring.pop_front()
    }

    /// The head element, if any.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.ring.front()
    }

    /// Mutable access to the head element.
    #[inline]
    pub fn peek_mut(&mut self) -> Option<&mut T> {
        self.ring.front_mut()
    }

    /// Elements currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the port holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The `i`-th element from the head.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        self.ring.get(i)
    }

    /// Remove the `i`-th element, preserving order.
    #[inline]
    pub fn remove(&mut self, i: usize) -> T {
        self.ring.remove(i)
    }

    /// Iterate head → tail.
    #[inline]
    pub fn iter(&self) -> RingIter<'_, T> {
        self.ring.iter()
    }

    /// Drop every element.
    #[inline]
    pub fn clear(&mut self) {
        self.ring.clear()
    }

    /// Drain head → tail until empty.
    pub fn drain(&mut self) -> PortDrain<'_, T> {
        PortDrain { port: self }
    }

    /// Observability counters for this port.
    pub fn snapshot(&self) -> PortSnapshot {
        PortSnapshot {
            high_water: self.ring.high_water(),
            credit_stalls: self.credit_stalls,
            grows: self.ring.grows(),
        }
    }
}

/// Draining iterator over a [`Port`] (head → tail until empty).
pub struct PortDrain<'a, T> {
    port: &'a mut Port<T>,
}

impl<T> Iterator for PortDrain<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.port.pop()
    }
}

/// One crossbar output: a timed pipe of in-flight messages feeding a
/// bounded eject [`Port`]. Links are fully independent — the parallel
/// engine hands each memory-side shard exclusive `&mut` access to its
/// own links.
#[derive(Debug)]
pub struct Link<T> {
    /// In-flight messages (arrival cycle, payload); arrival cycles are
    /// monotone because senders inject with a constant latency.
    pipe: Ring<(Cycle, T)>,
    /// Arrived but not yet ejected, bounded by the eject credit count.
    eject: Port<T>,
    /// Cumulative cycles this link's pipe head waited for a full eject
    /// queue (congestion diagnostic, summed per network).
    pub stall_events: u64,
    /// This link's [`Link::step`] is a provable no-op before this cycle.
    /// Exact: recomputed from the surviving head after every scan and
    /// lowered by every send; a blocked head (arrived, eject queue full)
    /// keeps the bound at or below `now`, forcing rescans while its
    /// stall events accrue.
    wake_at: Cycle,
}

impl<T> Link<T> {
    /// Link with `eject_depth` eject credits and a pipe preallocated for
    /// `pipe_capacity` in-flight messages.
    pub fn new(eject_depth: usize, pipe_capacity: usize) -> Self {
        Link {
            pipe: Ring::with_capacity(pipe_capacity),
            eject: Port::new(eject_depth),
            stall_events: 0,
            wake_at: 0,
        }
    }

    /// Move this link's arrived messages into its eject queue (respecting
    /// eject credits). Call once per cycle before popping.
    pub fn step(&mut self, now: Cycle) {
        if now < self.wake_at {
            return;
        }
        while let Some(&(t, _)) = self.pipe.front() {
            if t > now {
                break;
            }
            if self.eject.credits() == 0 {
                // The hot output's queue is full: its own pipe backs
                // up, other outputs are unaffected.
                self.stall_events += 1;
                self.eject.note_stall();
                break;
            }
            let (_, msg) = self.pipe.pop_front().expect("checked non-empty");
            self.eject.push(msg);
        }
        self.wake_at = match self.pipe.front() {
            Some(&(t, _)) => t,
            None => Cycle::MAX,
        };
    }

    /// Whether this link has a deliverable message.
    #[inline]
    pub fn has_pending(&self) -> bool {
        !self.eject.is_empty()
    }

    /// Peek at the next deliverable message without consuming it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.eject.peek()
    }

    /// Take a single deliverable message, if any.
    #[inline]
    pub fn pop_one(&mut self) -> Option<T> {
        self.eject.pop()
    }

    /// Whether a [`Link::step`] at `now` would move at least one message
    /// into the eject queue.
    #[inline]
    pub fn can_deliver(&self, now: Cycle) -> bool {
        self.pipe
            .front()
            .is_some_and(|&(t, _)| t <= now && self.eject.credits() > 0)
    }

    /// Whether the pipe head has arrived but is blocked on a full eject
    /// queue.
    #[inline]
    pub fn blocked_head(&self, now: Cycle) -> bool {
        self.pipe
            .front()
            .is_some_and(|&(t, _)| t <= now && self.eject.credits() == 0)
    }

    /// Earliest strictly-future pipe arrival on this link.
    #[inline]
    pub fn earliest_arrival(&self, now: Cycle) -> Option<Cycle> {
        self.pipe.front().map(|&(t, _)| t).filter(|&t| t > now)
    }

    /// Earliest future cycle at which this link could make *progress* a
    /// consumer can observe, for fast-forward horizon planning. Unlike
    /// [`Link::earliest_arrival`], a link whose eject queue is out of
    /// credits reports `None`: with zero credits, a pipe arrival only
    /// joins the stalled head — nothing becomes deliverable until a
    /// consumer pops the eject queue, and consumers are by definition
    /// quiescent for the whole window being planned. Callers must only
    /// use this when the eject queue has already been drained into the
    /// quiescent consumer (the skip gate checks `has_pending`).
    #[inline]
    pub fn earliest_progress(&self, now: Cycle) -> Option<Cycle> {
        if self.eject.credits() == 0 {
            None
        } else {
            self.earliest_arrival(now)
        }
    }

    /// Stall events this link would accrue if every cycle in
    /// `now..target` were stepped naively with no consumer pops: one per
    /// cycle the pipe head sits arrived-but-blocked on a creditless
    /// eject queue. With credits available the head would move instead,
    /// so the count is zero; with zero credits the head (arriving at
    /// `t`, possibly mid-window) blocks for `target - max(t, now)`
    /// cycles. Used by the fast-forward path to keep congestion
    /// diagnostics identical to naive stepping across skipped windows.
    #[inline]
    pub fn window_stalls(&self, now: Cycle, target: Cycle) -> u64 {
        if self.eject.credits() > 0 {
            return 0;
        }
        match self.pipe.front() {
            Some(&(t, _)) => target.saturating_sub(t.max(now)),
            None => 0,
        }
    }

    /// Messages anywhere in this link (pipe + eject queue).
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.pipe.len() + self.eject.len()
    }

    /// Inject a message that arrives at cycle `at`. Arrival cycles must
    /// be monotone per link (constant-latency senders guarantee this).
    pub fn send(&mut self, at: Cycle, msg: T) {
        debug_assert!(self.pipe.iter().last().is_none_or(|&(t, _)| t <= at));
        self.pipe.push_back((at, msg));
        if at < self.wake_at {
            self.wake_at = at;
        }
    }

    /// Observability counters: pipe and eject occupancy folded into one
    /// snapshot (high water = max of the two sides).
    pub fn snapshot(&self) -> PortSnapshot {
        let mut s = self.eject.snapshot();
        s.absorb(PortSnapshot {
            high_water: self.pipe.high_water(),
            credit_stalls: 0,
            grows: self.pipe.grows(),
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_pop_fifo_across_wrap() {
        let mut r: Ring<u32> = Ring::with_capacity(4);
        for round in 0..10u32 {
            for i in 0..3 {
                r.push_back(round * 10 + i);
            }
            for i in 0..3 {
                assert_eq!(r.pop_front(), Some(round * 10 + i));
            }
        }
        assert!(r.is_empty());
        assert_eq!(r.grows(), 0, "never exceeded preallocation");
        assert_eq!(r.high_water(), 3);
    }

    #[test]
    fn ring_grows_when_overfull_and_counts_it() {
        let mut r: Ring<u32> = Ring::with_capacity(2);
        for i in 0..10 {
            r.push_back(i);
        }
        assert_eq!(r.grows(), 3, "2 → 4 → 8 → 16");
        assert!(r.capacity() >= 10);
        for i in 0..10 {
            assert_eq!(r.pop_front(), Some(i));
        }
    }

    #[test]
    fn ring_ordered_remove_shifts_later_elements() {
        let mut r: Ring<u32> = Ring::with_capacity(8);
        // Offset the head so removal crosses the wrap point.
        for _ in 0..6 {
            r.push_back(0);
            r.pop_front();
        }
        for i in 0..6 {
            r.push_back(i);
        }
        assert_eq!(r.remove(2), 2);
        assert_eq!(r.remove(0), 0);
        let left: Vec<u32> = r.iter().copied().collect();
        assert_eq!(left, vec![1, 3, 4, 5]);
    }

    #[test]
    fn port_credits_and_try_push() {
        let mut p: Port<u32> = Port::new(2);
        assert_eq!(p.credits(), 2);
        assert_eq!(p.try_push(1), Ok(()));
        assert_eq!(p.try_push(2), Ok(()));
        assert_eq!(p.credits(), 0);
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(p.snapshot().credit_stalls, 1);
        assert_eq!(p.pop(), Some(1));
        assert_eq!(p.credits(), 1);
        assert_eq!(p.try_push(3), Ok(()));
        assert_eq!(p.drain().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(p.snapshot().high_water, 2);
        assert_eq!(p.snapshot().grows, 0);
    }

    #[test]
    fn port_push_rides_the_growth_valve() {
        let mut p: Port<u32> = Port::new(2);
        for i in 0..5 {
            p.push(i);
        }
        assert_eq!(p.credits(), 0);
        assert!(p.snapshot().grows > 0);
        assert_eq!(p.drain().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn link_matches_lane_semantics() {
        let mut l: Link<u32> = Link::new(1, 4);
        l.send(5, 1);
        l.send(5, 2);
        assert!(!l.can_deliver(4));
        assert_eq!(l.earliest_arrival(4), Some(5));
        l.step(5);
        assert!(l.has_pending());
        assert!(l.blocked_head(5), "1-deep eject, second arrived");
        assert!(l.stall_events > 0);
        assert_eq!(l.pop_one(), Some(1));
        assert!(l.can_deliver(5), "freed credit unblocks the head");
        l.step(5);
        assert_eq!(l.pop_one(), Some(2));
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn earliest_progress_ignores_creditless_links() {
        let mut l: Link<u32> = Link::new(1, 4);
        l.send(5, 1);
        l.send(7, 2);
        // Credits available: progress == arrival.
        assert_eq!(l.earliest_progress(4), Some(5));
        l.step(5);
        assert_eq!(l.pop_one(), Some(1));
        l.step(6);
        // Head (t=7) not yet arrived, credit free: still a progress event.
        assert_eq!(l.earliest_progress(6), Some(7));
        // Fill the eject queue: the t=7 arrival can only join the queue
        // of blocked messages — no observable progress.
        l.send(9, 3);
        l.step(7);
        assert!(l.has_pending());
        assert_eq!(l.earliest_arrival(7), Some(9));
        assert_eq!(l.earliest_progress(7), None);
    }

    #[test]
    fn window_stalls_reproduces_naive_per_cycle_accounting() {
        // Naive reference: step every cycle, count stall_events.
        let make = || {
            let mut l: Link<u32> = Link::new(1, 4);
            l.send(2, 10); // will eject at t=2, consuming the only credit
            l.send(5, 11); // arrives mid-window, blocks from t=5
            l
        };
        let mut naive = make();
        for now in 0..=12 {
            naive.step(now);
        }
        let mut fast = make();
        fast.step(0);
        fast.step(1);
        fast.step(2); // head ejects, credit drops to 0
        let analytic = fast.window_stalls(3, 13); // window covers 3..=12
        fast.stall_events += analytic;
        assert_eq!(fast.stall_events, naive.stall_events);
        assert_eq!(analytic, 8, "t=5 head blocked for cycles 5..=12");
        // No credits but an empty pipe: nothing to stall.
        let mut idle: Link<u32> = Link::new(1, 4);
        idle.send(0, 1);
        idle.step(0);
        assert_eq!(idle.window_stalls(1, 100), 0);
    }

    #[test]
    fn snapshot_absorb_maxes_and_sums() {
        let mut a = PortSnapshot {
            high_water: 3,
            credit_stalls: 2,
            grows: 1,
        };
        a.absorb(PortSnapshot {
            high_water: 5,
            credit_stalls: 4,
            grows: 0,
        });
        assert_eq!(a.high_water, 5);
        assert_eq!(a.credit_stalls, 6);
        assert_eq!(a.grows, 1);
    }
}
