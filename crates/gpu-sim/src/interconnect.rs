//! Crossbar interconnect between SMs and memory partitions.
//!
//! Two independent networks (request and reply), each modelled as a fixed
//! pipe latency plus bounded per-destination ejection queues with a
//! bandwidth cap on ejection. Under bursty miss traffic the ejection
//! queues back up and effective latency grows super-linearly — the
//! congestion effect §I measures (62% stall cycles for nearest-neighbour).
//!
//! Internally a network is a vector of per-destination [`Lane`]s with no
//! shared mutable state between lanes (each lane carries its own pipe,
//! ejection queue, stall counter and wake bound). That layout is what the
//! phase-split parallel cycle engine in [`crate::gpu`] shards on: a
//! worker that owns destination `d` may mutate lane `d` while other
//! workers mutate theirs, with no atomics and no locks, and the summed
//! statistics are identical to sequential stepping by construction.

use std::collections::VecDeque;

use crate::types::{AccessKind, Addr, Cycle, SmId};

/// A memory request travelling SM → partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Target line address.
    pub line: Addr,
    /// Demand load, store, or prefetch.
    pub kind: AccessKind,
    /// Originating SM (route for the reply).
    pub sm: SmId,
}

/// A fill reply travelling partition → SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReply {
    /// Filled line address.
    pub line: Addr,
    /// Destination SM.
    pub sm: SmId,
    /// The request that triggered this fill was a prefetch (routed on
    /// the low-priority virtual channel).
    pub is_prefetch: bool,
}

/// One crossbar output: the in-flight pipe and bounded ejection queue of
/// a single destination. Lanes are fully independent — the parallel
/// engine hands each memory-side shard exclusive `&mut` access to its
/// own lanes.
#[derive(Debug)]
pub struct Lane<T> {
    /// In-flight messages (arrival cycle, payload); arrival cycles are
    /// monotone because senders inject with a constant latency.
    pipe: VecDeque<(Cycle, T)>,
    /// Arrived but not yet ejected (bounded by the network's depth).
    eject: VecDeque<T>,
    /// Cumulative cycles this lane's pipe head waited for a full
    /// ejection queue (congestion diagnostic, summed per network).
    pub stall_events: u64,
    /// This lane's [`Lane::step`] is a provable no-op before this cycle.
    /// Exact: recomputed from the surviving head after every scan and
    /// lowered by every send; a blocked head (arrived, ejection queue
    /// full) keeps the bound at or below `now`, forcing rescans while
    /// its stall events accrue.
    wake_at: Cycle,
}

impl<T> Lane<T> {
    fn new(eject_depth: usize) -> Self {
        Lane {
            pipe: VecDeque::new(),
            eject: VecDeque::with_capacity(eject_depth),
            stall_events: 0,
            wake_at: 0,
        }
    }

    /// Move this lane's arrived messages into its ejection queue
    /// (respecting `depth`). Call once per cycle before popping.
    pub fn step(&mut self, now: Cycle, depth: usize) {
        if now < self.wake_at {
            return;
        }
        while let Some(&(t, _)) = self.pipe.front() {
            if t > now {
                break;
            }
            if self.eject.len() >= depth {
                // The hot output's queue is full: its own pipe backs
                // up, other outputs are unaffected.
                self.stall_events += 1;
                break;
            }
            let (_, msg) = self.pipe.pop_front().expect("checked non-empty");
            self.eject.push_back(msg);
        }
        self.wake_at = match self.pipe.front() {
            Some(&(t, _)) => t,
            None => Cycle::MAX,
        };
    }

    /// Whether this lane has a deliverable message.
    #[inline]
    pub fn has_pending(&self) -> bool {
        !self.eject.is_empty()
    }

    /// Peek at the next deliverable message without consuming it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.eject.front()
    }

    /// Take a single deliverable message, if any.
    #[inline]
    pub fn pop_one(&mut self) -> Option<T> {
        self.eject.pop_front()
    }

    /// Whether a [`Lane::step`] at `now` would move at least one message
    /// into the ejection queue.
    #[inline]
    pub fn can_deliver(&self, now: Cycle, depth: usize) -> bool {
        self.pipe
            .front()
            .is_some_and(|&(t, _)| t <= now && self.eject.len() < depth)
    }

    /// Whether the pipe head has arrived but is blocked on a full
    /// ejection queue.
    #[inline]
    pub fn blocked_head(&self, now: Cycle, depth: usize) -> bool {
        self.pipe
            .front()
            .is_some_and(|&(t, _)| t <= now && self.eject.len() >= depth)
    }

    /// Earliest strictly-future pipe arrival on this lane.
    #[inline]
    pub fn earliest_arrival(&self, now: Cycle) -> Option<Cycle> {
        self.pipe.front().map(|&(t, _)| t).filter(|&t| t > now)
    }

    /// Messages anywhere in this lane (pipe + ejection queue).
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.pipe.len() + self.eject.len()
    }

    fn send(&mut self, at: Cycle, msg: T) {
        debug_assert!(self.pipe.back().is_none_or(|&(t, _)| t <= at));
        self.pipe.push_back((at, msg));
        if at < self.wake_at {
            self.wake_at = at;
        }
    }
}

/// One-direction crossbar network: per-destination pipes of constant
/// latency feeding bounded per-destination ejection queues. Distinct
/// destinations do not block each other (separate crossbar outputs); a
/// hot destination backs up only its own pipe.
#[derive(Debug)]
pub struct Network<T> {
    lanes: Vec<Lane<T>>,
    latency: u32,
    eject_depth: usize,
    eject_bw: u32,
    /// Stall events accounted in bulk by the fast-forward clock skip
    /// (not attributable to a single lane; added to the summed total).
    skipped_stall_events: u64,
}

impl<T> Network<T> {
    /// Network with `destinations` endpoints.
    pub fn new(destinations: usize, latency: u32, eject_depth: usize, eject_bw: u32) -> Self {
        Network {
            lanes: (0..destinations).map(|_| Lane::new(eject_depth)).collect(),
            latency,
            eject_depth,
            eject_bw,
            skipped_stall_events: 0,
        }
    }

    /// Per-destination ejection-queue depth.
    #[inline]
    pub fn eject_depth(&self) -> usize {
        self.eject_depth
    }

    /// Inject a message at `now`; it becomes visible at the destination
    /// after the pipe latency (plus any ejection queueing).
    pub fn send(&mut self, now: Cycle, dst: usize, msg: T) {
        debug_assert!(dst < self.lanes.len());
        let at = now + self.latency as Cycle;
        self.lanes[dst].send(at, msg);
    }

    /// Move arrived messages into ejection queues (respecting depth).
    /// Call once per cycle before [`Self::pop`].
    pub fn step(&mut self, now: Cycle) {
        let depth = self.eject_depth;
        for lane in &mut self.lanes {
            lane.step(now, depth);
        }
    }

    /// Exclusive access to every lane, for sharding: the parallel engine
    /// splits this slice so each worker steps and drains only the lanes
    /// of the destinations it owns.
    #[inline]
    pub fn lanes_mut(&mut self) -> &mut [Lane<T>] {
        &mut self.lanes
    }

    /// Take up to the per-cycle ejection bandwidth of messages for `dst`.
    /// Callers invoke this once per destination per cycle.
    pub fn pop(&mut self, dst: usize) -> EjectIter<'_, T> {
        EjectIter {
            lane: &mut self.lanes[dst],
            left: self.eject_bw,
        }
    }

    /// Peek whether `dst` has a deliverable message.
    pub fn has_pending(&self, dst: usize) -> bool {
        self.lanes[dst].has_pending()
    }

    /// Peek at the next deliverable message for `dst` without consuming.
    pub fn peek(&self, dst: usize) -> Option<&T> {
        self.lanes[dst].peek()
    }

    /// Take a single message for `dst` if one is deliverable. Callers
    /// that must check a consumer-side condition (e.g. partition input
    /// space) before consuming use this with their own bandwidth count.
    pub fn pop_one(&mut self, dst: usize) -> Option<T> {
        self.lanes[dst].pop_one()
    }

    /// Total messages anywhere in the network.
    pub fn in_flight(&self) -> usize {
        self.lanes.iter().map(Lane::in_flight).sum()
    }

    /// Any message sitting in an ejection queue.
    #[inline]
    pub fn has_ejected(&self) -> bool {
        self.lanes.iter().any(Lane::has_pending)
    }

    /// Whether a [`Self::step`] at `now` would move at least one message
    /// from a pipe into an ejection queue (an arrival — forward progress
    /// for the fast-forward probe).
    pub fn can_deliver(&self, now: Cycle) -> bool {
        self.lanes
            .iter()
            .any(|lane| lane.can_deliver(now, self.eject_depth))
    }

    /// Number of destinations whose pipe head has arrived but is blocked
    /// on a full ejection queue. [`Lane::step`] records exactly one
    /// stall event per such destination per cycle, so a skipped window of
    /// `delta` cycles accounts `delta * blocked_heads` stall events.
    pub fn blocked_heads(&self, now: Cycle) -> u64 {
        self.lanes
            .iter()
            .filter(|lane| lane.blocked_head(now, self.eject_depth))
            .count() as u64
    }

    /// Account stall events for a skipped quiescent window in bulk.
    pub fn add_skipped_stalls(&mut self, events: u64) {
        self.skipped_stall_events += events;
    }

    /// Total stall events: per-lane counts plus bulk skip accounting.
    pub fn stall_events(&self) -> u64 {
        self.skipped_stall_events + self.lanes.iter().map(|l| l.stall_events).sum::<u64>()
    }

    /// Earliest future pipe arrival, strictly after `now`. Heads already
    /// arrived (t ≤ now) are excluded: unblocked ones are immediate
    /// progress (no skip happens), blocked ones cannot move until their
    /// consumer drains — a different progress event.
    pub fn earliest_arrival(&self, now: Cycle) -> Option<Cycle> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.earliest_arrival(now))
            .min()
    }
}

/// Draining iterator bounded by ejection bandwidth.
pub struct EjectIter<'a, T> {
    lane: &'a mut Lane<T>,
    left: u32,
}

impl<T> Iterator for EjectIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.lane.pop_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_arrives_after_latency() {
        let mut n: Network<u32> = Network::new(2, 10, 4, 1);
        n.send(0, 1, 42);
        for now in 0..10 {
            n.step(now);
            assert!(!n.has_pending(1), "too early at {now}");
        }
        n.step(10);
        assert_eq!(n.pop(1).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn ejection_bandwidth_is_capped() {
        let mut n: Network<u32> = Network::new(1, 0, 8, 2);
        for i in 0..5 {
            n.send(0, 0, i);
        }
        n.step(0);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn full_ejection_queue_blocks_only_its_own_pipe() {
        let mut n: Network<u32> = Network::new(2, 0, 2, 1);
        // Overfill destination 0, and send one message to destination 1.
        for i in 0..3 {
            n.send(0, 0, i);
        }
        n.send(0, 1, 99);
        n.step(0);
        // Crossbar outputs are independent: dst 1 is deliverable even
        // though dst 0's queue is full and its pipe backed up.
        assert!(n.has_pending(1));
        assert!(n.stall_events() > 0);
        assert_eq!(n.in_flight(), 4);
        // Drain dst 0 (bandwidth 1 ⇒ one message per pop), then its
        // blocked message advances into the freed slot.
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![0]);
        n.step(1);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![1]);
        n.step(2);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn order_is_preserved_per_destination() {
        let mut n: Network<u32> = Network::new(1, 3, 16, 16);
        for i in 0..10 {
            n.send(i as Cycle, 0, i);
        }
        for now in 0..20 {
            n.step(now);
        }
        assert_eq!(n.pop(0).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn probes_track_arrivals_blocks_and_horizon() {
        let mut n: Network<u32> = Network::new(2, 5, 1, 1);
        assert!(!n.can_deliver(0));
        assert_eq!(n.earliest_arrival(0), None);
        n.send(0, 0, 1);
        n.send(0, 0, 2);
        n.send(3, 1, 3);
        // Nothing arrives before the latency elapses.
        assert!(!n.can_deliver(4));
        assert_eq!(n.earliest_arrival(4), Some(5));
        assert!(n.can_deliver(5));
        n.step(5);
        assert!(n.has_ejected());
        // dst 0's second message arrived but its 1-deep queue is full.
        assert_eq!(n.blocked_heads(5), 1);
        assert!(!n.can_deliver(5), "only the blocked head remains at 5");
        // dst 1's message is the sole future arrival.
        assert_eq!(n.earliest_arrival(5), Some(8));
        assert_eq!(n.pop_one(0), Some(1));
        assert!(n.can_deliver(5), "freed slot unblocks the head");
    }

    #[test]
    fn ejected_count_stays_consistent_across_drain_paths() {
        let mut n: Network<u32> = Network::new(2, 0, 4, 2);
        for i in 0..4 {
            n.send(0, (i % 2) as usize, i);
        }
        n.step(0);
        assert_eq!(n.in_flight(), 4);
        assert!(n.has_ejected());
        let _ = n.pop(0).collect::<Vec<_>>(); // iterator path
        assert_eq!(n.in_flight(), 2);
        let _ = n.pop_one(1); // single-pop path
        assert_eq!(n.in_flight(), 1);
        let _ = n.pop_one(1);
        assert!(!n.has_ejected());
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_pipe_and_eject() {
        let mut n: Network<u32> = Network::new(1, 5, 4, 1);
        n.send(0, 0, 1);
        n.send(0, 0, 2);
        assert_eq!(n.in_flight(), 2);
        for now in 0..=5 {
            n.step(now);
        }
        assert_eq!(n.in_flight(), 2); // now in eject queue
        let _ = n.pop(0).next();
        assert_eq!(n.in_flight(), 1);
    }

    #[test]
    fn lane_sharding_view_matches_whole_network_stepping() {
        // Stepping lanes individually through `lanes_mut` (as the
        // parallel engine does) must behave exactly like `Network::step`.
        let mut whole: Network<u32> = Network::new(3, 2, 2, 1);
        let mut sharded: Network<u32> = Network::new(3, 2, 2, 1);
        for i in 0..9u32 {
            whole.send(0, (i % 3) as usize, i);
            sharded.send(0, (i % 3) as usize, i);
        }
        for now in 0..8 {
            whole.step(now);
            let depth = sharded.eject_depth();
            for lane in sharded.lanes_mut() {
                lane.step(now, depth);
            }
            for d in 0..3 {
                assert_eq!(whole.peek(d), sharded.peek(d), "dst {d} at {now}");
                assert_eq!(whole.pop_one(d), sharded.lanes_mut()[d].pop_one());
            }
        }
        assert_eq!(whole.stall_events(), sharded.stall_events());
        assert_eq!(whole.in_flight(), sharded.in_flight());
    }
}
