//! Crossbar interconnect between SMs and memory partitions.
//!
//! Two independent networks (request and reply), each modelled as a fixed
//! pipe latency plus bounded per-destination ejection queues with a
//! bandwidth cap on ejection. Under bursty miss traffic the ejection
//! queues back up and effective latency grows super-linearly — the
//! congestion effect §I measures (62% stall cycles for nearest-neighbour).
//!
//! Internally a network is a vector of per-destination [`Link`]s (from
//! the unified port layer, [`crate::port`]) with no shared mutable state
//! between links: each link carries its own preallocated pipe ring,
//! bounded eject [`crate::port::Port`], stall counter and wake bound.
//! That layout is what the phase-split parallel cycle engine in
//! [`crate::gpu`] shards on: a worker that owns destination `d` may
//! mutate link `d` while other workers mutate theirs, with no atomics
//! and no locks, and the summed statistics are identical to sequential
//! stepping by construction.

pub use crate::port::Link;
use crate::port::PortSnapshot;
use crate::types::{AccessKind, Addr, Cycle, SmId};

/// A memory request travelling SM → partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Target line address.
    pub line: Addr,
    /// Demand load, store, or prefetch.
    pub kind: AccessKind,
    /// Originating SM (route for the reply).
    pub sm: SmId,
}

/// A fill reply travelling partition → SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReply {
    /// Filled line address.
    pub line: Addr,
    /// Destination SM.
    pub sm: SmId,
    /// The request that triggered this fill was a prefetch (routed on
    /// the low-priority virtual channel).
    pub is_prefetch: bool,
}

/// One-direction crossbar network: per-destination pipes of constant
/// latency feeding bounded per-destination ejection queues. Distinct
/// destinations do not block each other (separate crossbar outputs); a
/// hot destination backs up only its own pipe.
#[derive(Debug)]
pub struct Network<T> {
    links: Vec<Link<T>>,
    latency: u32,
    eject_depth: usize,
    eject_bw: u32,
    /// Stall events accounted in bulk by the fast-forward clock skip
    /// (not attributable to a single link; added to the summed total).
    skipped_stall_events: u64,
}

impl<T> Network<T> {
    /// Network with `destinations` endpoints. `pipe_capacity` preallocates
    /// each link's in-flight ring (sized from the producers' aggregate
    /// in-flight bound so steady state never allocates; the ring grows —
    /// and counts it — if the bound is exceeded).
    pub fn new(
        destinations: usize,
        latency: u32,
        eject_depth: usize,
        eject_bw: u32,
        pipe_capacity: usize,
    ) -> Self {
        Network {
            links: (0..destinations)
                .map(|_| Link::new(eject_depth, pipe_capacity))
                .collect(),
            latency,
            eject_depth,
            eject_bw,
            skipped_stall_events: 0,
        }
    }

    /// Per-destination ejection-queue depth (credit count).
    #[inline]
    pub fn eject_depth(&self) -> usize {
        self.eject_depth
    }

    /// Inject a message at `now`; it becomes visible at the destination
    /// after the pipe latency (plus any ejection queueing).
    pub fn send(&mut self, now: Cycle, dst: usize, msg: T) {
        debug_assert!(dst < self.links.len());
        let at = now + self.latency as Cycle;
        self.links[dst].send(at, msg);
    }

    /// Move arrived messages into ejection queues (respecting depth).
    /// Call once per cycle before [`Self::pop`].
    pub fn step(&mut self, now: Cycle) {
        for link in &mut self.links {
            link.step(now);
        }
    }

    /// Exclusive access to every link, for sharding: the parallel engine
    /// splits this slice so each worker steps and drains only the links
    /// of the destinations it owns.
    #[inline]
    pub fn links_mut(&mut self) -> &mut [Link<T>] {
        &mut self.links
    }

    /// Take up to the per-cycle ejection bandwidth of messages for `dst`.
    /// Callers invoke this once per destination per cycle.
    pub fn pop(&mut self, dst: usize) -> EjectIter<'_, T> {
        EjectIter {
            link: &mut self.links[dst],
            left: self.eject_bw,
        }
    }

    /// Peek whether `dst` has a deliverable message.
    pub fn has_pending(&self, dst: usize) -> bool {
        self.links[dst].has_pending()
    }

    /// Peek at the next deliverable message for `dst` without consuming.
    pub fn peek(&self, dst: usize) -> Option<&T> {
        self.links[dst].peek()
    }

    /// Take a single message for `dst` if one is deliverable. Callers
    /// that must check a consumer-side condition (e.g. partition input
    /// space) before consuming use this with their own bandwidth count.
    pub fn pop_one(&mut self, dst: usize) -> Option<T> {
        self.links[dst].pop_one()
    }

    /// Total messages anywhere in the network.
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(Link::in_flight).sum()
    }

    /// Any message sitting in an ejection queue.
    #[inline]
    pub fn has_ejected(&self) -> bool {
        self.links.iter().any(Link::has_pending)
    }

    /// Whether a [`Self::step`] at `now` would move at least one message
    /// from a pipe into an ejection queue (an arrival — forward progress
    /// for the fast-forward probe).
    pub fn can_deliver(&self, now: Cycle) -> bool {
        self.links.iter().any(|link| link.can_deliver(now))
    }

    /// Number of destinations whose pipe head has arrived but is blocked
    /// on a full ejection queue. [`Link::step`] records exactly one
    /// stall event per such destination per cycle, so a skipped window of
    /// `delta` cycles accounts `delta * blocked_heads` stall events.
    pub fn blocked_heads(&self, now: Cycle) -> u64 {
        self.links
            .iter()
            .filter(|link| link.blocked_head(now))
            .count() as u64
    }

    /// Account stall events for a skipped quiescent window in bulk.
    pub fn add_skipped_stalls(&mut self, events: u64) {
        self.skipped_stall_events += events;
    }

    /// Total stall events: per-link counts plus bulk skip accounting.
    pub fn stall_events(&self) -> u64 {
        self.skipped_stall_events + self.links.iter().map(|l| l.stall_events).sum::<u64>()
    }

    /// Earliest future pipe arrival, strictly after `now`. Heads already
    /// arrived (t ≤ now) are excluded: unblocked ones are immediate
    /// progress (no skip happens), blocked ones cannot move until their
    /// consumer drains — a different progress event.
    pub fn earliest_arrival(&self, now: Cycle) -> Option<Cycle> {
        self.links
            .iter()
            .filter_map(|link| link.earliest_arrival(now))
            .min()
    }

    /// Earliest future cycle at which any link could make progress a
    /// consumer can observe — the credit-aware variant of
    /// [`Self::earliest_arrival`] used for fast-forward horizon
    /// planning. Links whose ejection queue is out of credits are
    /// skipped entirely: during a skipped window no consumer pops, so a
    /// pipe arrival into a creditless link only lengthens the blocked
    /// queue and changes nothing observable. Only meaningful when every
    /// ejection queue has already been drained into its quiescent
    /// consumer (the skip gate checks [`Self::has_ejected`]).
    pub fn earliest_progress(&self, now: Cycle) -> Option<Cycle> {
        self.links
            .iter()
            .filter_map(|link| link.earliest_progress(now))
            .min()
    }

    /// Account, in bulk, exactly the stall events naive per-cycle
    /// stepping would have recorded over the skipped window
    /// `now..target`: for each creditless link, its pipe head (current
    /// or arriving mid-window at `t`) blocks for `target - max(t, now)`
    /// cycles. Supersedes `blocked_heads(now) * delta`, which missed
    /// heads arriving inside windows extended past their arrival by
    /// [`Self::earliest_progress`].
    pub fn account_skipped_window(&mut self, now: Cycle, target: Cycle) {
        let events: u64 = self
            .links
            .iter()
            .map(|link| link.window_stalls(now, target))
            .sum();
        self.skipped_stall_events += events;
    }

    /// Occupancy/stall counters aggregated over every link (max of high
    /// waters, sum of stalls and grows). Host-side reporting only — not
    /// part of the bit-identity contract.
    pub fn snapshot(&self) -> PortSnapshot {
        let mut s = PortSnapshot::default();
        for link in &self.links {
            s.absorb(link.snapshot());
        }
        s
    }
}

/// Draining iterator bounded by ejection bandwidth.
pub struct EjectIter<'a, T> {
    link: &'a mut Link<T>,
    left: u32,
}

impl<T> Iterator for EjectIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.link.pop_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_arrives_after_latency() {
        let mut n: Network<u32> = Network::new(2, 10, 4, 1, 8);
        n.send(0, 1, 42);
        for now in 0..10 {
            n.step(now);
            assert!(!n.has_pending(1), "too early at {now}");
        }
        n.step(10);
        assert_eq!(n.pop(1).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn ejection_bandwidth_is_capped() {
        let mut n: Network<u32> = Network::new(1, 0, 8, 2, 8);
        for i in 0..5 {
            n.send(0, 0, i);
        }
        n.step(0);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn full_ejection_queue_blocks_only_its_own_pipe() {
        let mut n: Network<u32> = Network::new(2, 0, 2, 1, 8);
        // Overfill destination 0, and send one message to destination 1.
        for i in 0..3 {
            n.send(0, 0, i);
        }
        n.send(0, 1, 99);
        n.step(0);
        // Crossbar outputs are independent: dst 1 is deliverable even
        // though dst 0's queue is full and its pipe backed up.
        assert!(n.has_pending(1));
        assert!(n.stall_events() > 0);
        assert_eq!(n.in_flight(), 4);
        // Drain dst 0 (bandwidth 1 ⇒ one message per pop), then its
        // blocked message advances into the freed slot.
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![0]);
        n.step(1);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![1]);
        n.step(2);
        assert_eq!(n.pop(0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn order_is_preserved_per_destination() {
        let mut n: Network<u32> = Network::new(1, 3, 16, 16, 16);
        for i in 0..10 {
            n.send(i as Cycle, 0, i);
        }
        for now in 0..20 {
            n.step(now);
        }
        assert_eq!(n.pop(0).collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn probes_track_arrivals_blocks_and_horizon() {
        let mut n: Network<u32> = Network::new(2, 5, 1, 1, 4);
        assert!(!n.can_deliver(0));
        assert_eq!(n.earliest_arrival(0), None);
        n.send(0, 0, 1);
        n.send(0, 0, 2);
        n.send(3, 1, 3);
        // Nothing arrives before the latency elapses.
        assert!(!n.can_deliver(4));
        assert_eq!(n.earliest_arrival(4), Some(5));
        assert!(n.can_deliver(5));
        n.step(5);
        assert!(n.has_ejected());
        // dst 0's second message arrived but its 1-deep queue is full.
        assert_eq!(n.blocked_heads(5), 1);
        assert!(!n.can_deliver(5), "only the blocked head remains at 5");
        // dst 1's message is the sole future arrival.
        assert_eq!(n.earliest_arrival(5), Some(8));
        assert_eq!(n.pop_one(0), Some(1));
        assert!(n.can_deliver(5), "freed slot unblocks the head");
    }

    #[test]
    fn credit_aware_horizon_skips_backpressured_links() {
        let mut n: Network<u32> = Network::new(2, 5, 1, 1, 4);
        n.send(0, 0, 1); // arrives at 5
        n.send(0, 0, 2); // arrives at 5, will block behind the first
        n.step(5);
        assert_eq!(n.pop_one(0), Some(1));
        n.step(5); // message 2 takes the freed credit: dst 0 full again
        n.send(5, 0, 3); // arrives at 10 behind a creditless queue
        n.send(7, 1, 4); // arrives at 12 on a free link
        // Plain arrival horizon sees dst 0's t=10; the credit-aware one
        // knows dst 0 cannot progress and reports dst 1's t=12.
        assert_eq!(n.earliest_arrival(6), Some(10));
        assert_eq!(n.earliest_progress(6), Some(12));
        // Bulk window accounting: dst 0's head arrives at 10 and blocks
        // for cycles 10 and 11 of the window 6..12.
        let before = n.stall_events();
        n.account_skipped_window(6, 12);
        assert_eq!(n.stall_events() - before, 2);
    }

    #[test]
    fn ejected_count_stays_consistent_across_drain_paths() {
        let mut n: Network<u32> = Network::new(2, 0, 4, 2, 8);
        for i in 0..4 {
            n.send(0, (i % 2) as usize, i);
        }
        n.step(0);
        assert_eq!(n.in_flight(), 4);
        assert!(n.has_ejected());
        let _ = n.pop(0).collect::<Vec<_>>(); // iterator path
        assert_eq!(n.in_flight(), 2);
        let _ = n.pop_one(1); // single-pop path
        assert_eq!(n.in_flight(), 1);
        let _ = n.pop_one(1);
        assert!(!n.has_ejected());
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn in_flight_counts_pipe_and_eject() {
        let mut n: Network<u32> = Network::new(1, 5, 4, 1, 4);
        n.send(0, 0, 1);
        n.send(0, 0, 2);
        assert_eq!(n.in_flight(), 2);
        for now in 0..=5 {
            n.step(now);
        }
        assert_eq!(n.in_flight(), 2); // now in eject queue
        let _ = n.pop(0).next();
        assert_eq!(n.in_flight(), 1);
    }

    #[test]
    fn link_sharding_view_matches_whole_network_stepping() {
        // Stepping links individually through `links_mut` (as the
        // parallel engine does) must behave exactly like `Network::step`.
        let mut whole: Network<u32> = Network::new(3, 2, 2, 1, 8);
        let mut sharded: Network<u32> = Network::new(3, 2, 2, 1, 8);
        for i in 0..9u32 {
            whole.send(0, (i % 3) as usize, i);
            sharded.send(0, (i % 3) as usize, i);
        }
        for now in 0..8 {
            whole.step(now);
            for link in sharded.links_mut() {
                link.step(now);
            }
            for d in 0..3 {
                assert_eq!(whole.peek(d), sharded.peek(d), "dst {d} at {now}");
                assert_eq!(whole.pop_one(d), sharded.links_mut()[d].pop_one());
            }
        }
        assert_eq!(whole.stall_events(), sharded.stall_events());
        assert_eq!(whole.in_flight(), sharded.in_flight());
    }

    #[test]
    fn snapshot_aggregates_links() {
        let mut n: Network<u32> = Network::new(2, 0, 1, 1, 2);
        for i in 0..3 {
            n.send(0, 0, i);
        }
        n.step(0);
        let s = n.snapshot();
        assert!(s.high_water >= 2, "pipe held 3 before stepping");
        assert!(s.credit_stalls > 0, "blocked head counts an eject stall");
        assert!(s.grows > 0, "pipe capacity 2 overflowed");
    }
}
