//! Property tests on the memory-system components: DRAM conservation
//! and ordering, network delivery, and partition request/reply pairing.

use caps_gpu_sim::config::GpuConfig;
use caps_gpu_sim::dram::{DramChannel, DramRequest};
use caps_gpu_sim::interconnect::{MemRequest, Network};
use caps_gpu_sim::partition::MemoryPartition;
use caps_gpu_sim::types::AccessKind;
use proptest::prelude::*;

proptest! {
    /// DRAM conservation: every read pushed eventually completes exactly
    /// once, regardless of bank/row mix; writes complete but produce no
    /// reply.
    #[test]
    fn dram_completes_every_request(
        lines in proptest::collection::vec((0u64..1 << 16, prop::bool::ANY), 1..40),
    ) {
        let cfg = GpuConfig::fermi_gtx480();
        let mut chan = DramChannel::new(&cfg);
        let mut pushed_reads = 0u64;
        let mut pushed_writes = 0u64;
        let mut done = Vec::new();
        let mut now = 0u64;
        let mut it = lines.iter();
        let mut pending: Option<(u64, bool)> = None;
        loop {
            if pending.is_none() {
                pending = it.next().map(|&(l, w)| (l * 128, w));
            }
            if let Some((line, is_write)) = pending {
                if chan.can_accept() {
                    chan.push(DramRequest {
                        line,
                        is_write,
                        is_prefetch: false,
                        partition: 0,
                        arrival: now,
                    });
                    if is_write {
                        pushed_writes += 1;
                    } else {
                        pushed_reads += 1;
                    }
                    pending = None;
                }
            }
            chan.step(now, &mut done);
            now += 1;
            if pending.is_none() && it.len() == 0 && chan.pending() == 0 {
                break;
            }
            prop_assert!(now < 1_000_000, "DRAM did not drain");
        }
        prop_assert_eq!(chan.reads, pushed_reads);
        prop_assert_eq!(chan.writes, pushed_writes);
        prop_assert_eq!(done.len() as u64, pushed_reads, "one completion per read");
        prop_assert_eq!(chan.row_hits + chan.row_misses, pushed_reads + pushed_writes);
    }

    /// Network delivery: every message sent arrives exactly once, in
    /// per-destination FIFO order, never earlier than the pipe latency.
    #[test]
    fn network_delivers_everything_in_order(
        msgs in proptest::collection::vec(0usize..4, 1..120),
        latency in 0u32..40,
        depth in 1usize..8,
    ) {
        let mut net: Network<(usize, usize)> = Network::new(4, latency, depth, 1, 8);
        let mut sent: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let mut got: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let mut now = 0u64;
        for (seq, &dst) in msgs.iter().enumerate() {
            net.send(now, dst, (dst, seq));
            sent[dst].push(seq);
            now += 1;
        }
        let total = msgs.len();
        let mut received = 0usize;
        while received < total {
            net.step(now);
            for (d, bucket) in got.iter_mut().enumerate() {
                // Bandwidth 1 per destination per cycle.
                if let Some((dst, seq)) = net.pop_one(d) {
                    prop_assert_eq!(dst, d, "misrouted message");
                    bucket.push(seq);
                    received += 1;
                }
            }
            now += 1;
            prop_assert!(now < 1_000_000);
        }
        prop_assert_eq!(got, sent, "per-destination FIFO order preserved");
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Partition request/reply pairing: every accepted load eventually
    /// produces exactly one reply for its SM; stores produce none.
    #[test]
    fn partition_replies_match_requests(
        reqs in proptest::collection::vec((0u64..256, 0usize..4, prop::bool::ANY), 1..50),
    ) {
        let cfg = GpuConfig::fermi_gtx480();
        let mut p = MemoryPartition::new(0, &cfg);
        let mut d = DramChannel::new(&cfg);
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut replies: Vec<(u64, usize)> = Vec::new();
        let mut now = 0u64;
        let mut it = reqs.iter();
        let mut pending = None;
        let mut done = Vec::new();
        loop {
            if pending.is_none() {
                pending = it.next().copied();
            }
            if let Some((l, sm, is_store)) = pending {
                let kind = if is_store { AccessKind::Store } else { AccessKind::DemandLoad };
                if p.can_accept(kind) {
                    let line = l * 128;
                    p.accept(now, MemRequest { line, kind, sm });
                    if !is_store {
                        expected.push((line, sm));
                    }
                    pending = None;
                }
            }
            done.clear();
            d.step(now, &mut done);
            p.step(now, &mut d, &done);
            while let Some(r) = p.reply_out.pop() {
                replies.push((r.line, r.sm));
            }
            now += 1;
            if pending.is_none() && it.len() == 0 && p.idle() && d.pending() == 0 {
                break;
            }
            prop_assert!(now < 2_000_000, "partition did not drain");
        }
        expected.sort_unstable();
        replies.sort_unstable();
        prop_assert_eq!(replies, expected);
    }
}
