//! Property tests for the unified port layer: the preallocated ring and
//! the credit-counted [`Port`] are checked against a `VecDeque` reference
//! model under arbitrary operation sequences, including wrap-around,
//! ordered removal, and full/empty boundary behaviour.

use caps_gpu_sim::port::{Port, Ring};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// FIFO equivalence across wrap-around: an arbitrary interleaving of
    /// pushes and pops on a deliberately tiny ring matches a `VecDeque`
    /// element for element, forcing head/tail to lap the storage many
    /// times.
    #[test]
    fn ring_matches_vecdeque_across_wraps(
        ops in proptest::collection::vec((0u32..1000, prop::bool::ANY), 1..200),
    ) {
        let mut ring: Ring<u32> = Ring::with_capacity(2);
        let mut model: VecDeque<u32> = VecDeque::new();
        for &(v, is_push) in &ops {
            if is_push {
                ring.push_back(v);
                model.push_back(v);
            } else {
                prop_assert_eq!(ring.pop_front(), model.pop_front());
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.front(), model.front());
            prop_assert!(ring.is_empty() == model.is_empty());
        }
        // Residue drains in the same order.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop_front(), Some(want));
        }
        prop_assert_eq!(ring.pop_front(), None);
    }

    /// Ordered removal: `Ring::remove(i)` behaves exactly like
    /// `VecDeque::remove(i)` — later elements shift left, relative order
    /// is preserved (the property DRAM FR-FCFS tie-breaking relies on).
    #[test]
    fn ring_ordered_remove_matches_vecdeque(
        seed in proptest::collection::vec(0u32..1000, 1..40),
        removals in proptest::collection::vec(0usize..40, 1..40),
        churn in 0usize..8,
    ) {
        let mut ring: Ring<u32> = Ring::with_capacity(4);
        let mut model: VecDeque<u32> = VecDeque::new();
        // Pre-rotate so removals cross the physical wrap point.
        for i in 0..churn {
            ring.push_back(i as u32);
            ring.pop_front();
        }
        for &v in &seed {
            ring.push_back(v);
            model.push_back(v);
        }
        for &r in &removals {
            if model.is_empty() {
                break;
            }
            let i = r % model.len();
            prop_assert_eq!(ring.remove(i), model.remove(i).unwrap());
            for k in 0..model.len() {
                prop_assert_eq!(ring.get(k), model.get(k), "order after remove({})", i);
            }
        }
    }

    /// Credit accounting: a `Port` under arbitrary try_push/pop traffic
    /// matches a reference model of a bounded `VecDeque`; credits plus
    /// occupancy always equal capacity, refusals hand the value back
    /// untouched, and the stall counter counts exactly the refusals.
    #[test]
    fn port_credits_match_bounded_vecdeque(
        capacity in 1usize..16,
        ops in proptest::collection::vec((0u32..1000, prop::bool::ANY), 1..200),
    ) {
        let mut port: Port<u32> = Port::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut refusals = 0u64;
        for &(v, is_push) in &ops {
            if is_push {
                if model.len() < capacity {
                    model.push_back(v);
                    prop_assert_eq!(port.try_push(v), Ok(()));
                } else {
                    refusals += 1;
                    prop_assert_eq!(port.try_push(v), Err(v), "full port must refuse");
                }
            } else {
                prop_assert_eq!(port.pop(), model.pop_front());
            }
            prop_assert_eq!(port.len(), model.len());
            prop_assert_eq!(port.credits(), capacity - model.len());
            prop_assert_eq!(port.peek(), model.front());
        }
        prop_assert_eq!(port.snapshot().credit_stalls, refusals);
        prop_assert!(port.snapshot().high_water <= capacity);
        prop_assert_eq!(port.snapshot().grows, 0, "try_push never grows");
    }

    /// Full/empty boundaries: filling to capacity zeroes credits and
    /// refuses further credit-checked pushes; the unconditional growth
    /// valve still accepts (and counts a grow once past the preallocated
    /// power of two); drain restores every credit and empties the port.
    #[test]
    fn port_full_empty_boundaries(capacity in 1usize..12, overflow in 1usize..8) {
        let mut port: Port<usize> = Port::new(capacity);
        prop_assert_eq!(port.credits(), capacity);
        prop_assert!(port.is_empty());
        for i in 0..capacity {
            prop_assert_eq!(port.try_push(i), Ok(()));
        }
        prop_assert_eq!(port.credits(), 0);
        prop_assert_eq!(port.try_push(99), Err(99));
        // The growth valve rides past the credit limit without dropping.
        for i in 0..overflow {
            port.push(capacity + i);
        }
        prop_assert_eq!(port.len(), capacity + overflow);
        prop_assert_eq!(port.credits(), 0, "over-full port has no credits");
        let drained: Vec<usize> = port.drain().collect();
        prop_assert_eq!(drained.len(), capacity + overflow);
        // FIFO order survived the overflow.
        for (i, v) in drained.iter().enumerate() {
            prop_assert_eq!(*v, i);
        }
        prop_assert!(port.is_empty());
        prop_assert_eq!(port.credits(), capacity);
        prop_assert_eq!(port.snapshot().high_water, capacity + overflow);
    }
}
