//! Differential property tests for the flat per-cycle data structures.
//!
//! PR 2 replaced the simulator's cycle-critical associative containers —
//! `HashMap` in the MSHR/L2-waiter/prefetch-inflight tables, `Vec`/
//! `VecDeque` in the warp schedulers — with flat indexed structures
//! (`LineMap`, `SlotList`). The contract is bit-identical observable
//! behaviour. This suite pins that down by driving the new structures
//! and reference models (std containers; the schedulers as implemented
//! in the seed commit, quirks included) through identical randomized
//! operation sequences and comparing every observable after every op.

use std::collections::HashMap;

use caps_gpu_sim::linemap::LineMap;
use caps_gpu_sim::sched::slotlist::SlotList;
use caps_gpu_sim::sched::{GtoScheduler, LrrScheduler, TwoLevelScheduler, WarpScheduler};
use caps_gpu_sim::types::WarpSlot;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// LineMap vs HashMap
// ---------------------------------------------------------------------

/// Key space deliberately small and 128-aligned (line addresses) so that
/// probe chains, backward-shift deletion, and repeated reinsertion of
/// the same key all get exercised.
fn op_key(raw: u64) -> u64 {
    (raw % 24) * 128
}

proptest! {
    /// Every observable of `LineMap` (get / contains / len / iterated
    /// entry set) matches `HashMap` under arbitrary interleavings of
    /// insert, remove, and O(1) clear.
    #[test]
    fn linemap_matches_hashmap(
        ops in proptest::collection::vec((0u8..8, 0u64..1 << 16, 0u64..1 << 16), 1..300),
    ) {
        let mut map: LineMap<u64> = LineMap::with_capacity(4);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for &(op, raw_key, val) in &ops {
            let key = op_key(raw_key);
            match op {
                // Insert dominates the mix so the table actually fills.
                0..=3 => {
                    prop_assert_eq!(map.insert(key, val), reference.insert(key, val));
                }
                4..=5 => {
                    prop_assert_eq!(map.remove(key), reference.remove(&key));
                }
                6 => {
                    // get_mut must observe and mutate the same entry.
                    let got = map.get_mut(key).map(|v| {
                        *v ^= 0x5555;
                        *v
                    });
                    let want = reference.get_mut(&key).map(|v| {
                        *v ^= 0x5555;
                        *v
                    });
                    prop_assert_eq!(got, want, "get_mut diverged on {:#x}", key);
                }
                _ => {
                    map.clear();
                    reference.clear();
                }
            }
            // Full observable check after every op: probe every key the
            // sequence can produce, not only the touched one.
            prop_assert_eq!(map.len(), reference.len());
            prop_assert_eq!(map.is_empty(), reference.is_empty());
            for probe in 0..24u64 {
                let k = probe * 128;
                prop_assert_eq!(map.contains(k), reference.contains_key(&k), "key {}", k);
                prop_assert_eq!(map.get(k), reference.get(&k), "key {}", k);
            }
        }
        // Iteration yields exactly the live entry set (order-free).
        let mut got: Vec<(u64, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
        let mut want: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Wide-key variant: uniform 64-bit-ish keys catch hash/masking bugs
    /// that the dense small-key driver cannot.
    #[test]
    fn linemap_matches_hashmap_wide_keys(
        ops in proptest::collection::vec((0u8..6, 0u64..=u64::MAX), 1..200),
    ) {
        let mut map: LineMap<u32> = LineMap::with_capacity(2);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut live: Vec<u64> = Vec::new();
        for (i, &(op, key)) in ops.iter().enumerate() {
            // Mix fresh keys with reuse of previously inserted ones so
            // removes actually hit.
            let key = if op % 2 == 0 || live.is_empty() {
                key
            } else {
                live[key as usize % live.len()]
            };
            match op {
                0..=3 => {
                    let v = i as u32;
                    prop_assert_eq!(map.insert(key, v), reference.insert(key, v));
                    live.push(key);
                }
                _ => {
                    prop_assert_eq!(map.remove(key), reference.remove(&key));
                }
            }
            prop_assert_eq!(map.len(), reference.len());
            prop_assert_eq!(map.get(key), reference.get(&key));
        }
        for &k in &live {
            prop_assert_eq!(map.get(k), reference.get(&k), "key {:#x}", k);
        }
    }

    // -----------------------------------------------------------------
    // SlotList vs Vec
    // -----------------------------------------------------------------

    /// `SlotList` keeps exactly the order a plain `Vec` (with `insert`/
    /// `remove`/`retain`) would, in both iteration directions, under
    /// arbitrary push/insert/remove interleavings.
    #[test]
    fn slotlist_matches_vec_order(
        ops in proptest::collection::vec((0u8..8, 0usize..24, 0usize..24), 1..300),
    ) {
        let mut list = SlotList::new();
        let mut reference: Vec<usize> = Vec::new();
        for &(op, w, anchor_sel) in &ops {
            match op {
                0..=2 => {
                    if !reference.contains(&w) {
                        list.push_back(w);
                        reference.push(w);
                    }
                }
                3 => {
                    if !reference.contains(&w) {
                        list.push_front(w);
                        reference.insert(0, w);
                    }
                }
                4 => {
                    if !reference.is_empty() && !reference.contains(&w) {
                        let pos = anchor_sel % reference.len();
                        let anchor = reference[pos];
                        list.insert_before(anchor, w);
                        reference.insert(pos, w);
                    }
                }
                5..=6 => {
                    let was = reference.contains(&w);
                    prop_assert_eq!(list.remove(w), was);
                    reference.retain(|&x| x != w);
                }
                _ => {
                    let head = reference.first().copied();
                    prop_assert_eq!(list.pop_front(), head);
                    if head.is_some() {
                        reference.remove(0);
                    }
                }
            }
            prop_assert_eq!(list.len(), reference.len());
            prop_assert_eq!(list.iter().collect::<Vec<_>>(), reference.clone());
            let mut rev = reference.clone();
            rev.reverse();
            prop_assert_eq!(list.iter_rev().collect::<Vec<_>>(), rev);
            prop_assert_eq!(list.front(), reference.first().copied());
            prop_assert_eq!(list.back(), reference.last().copied());
            for probe in 0..24usize {
                prop_assert_eq!(list.contains(probe), reference.contains(&probe));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Schedulers vs seed reference implementations
// ---------------------------------------------------------------------

/// The seed's LRR: a `Vec` plus integer cursor with `(cursor + off) % n`
/// rotation — including the "cursor stuck at len" quirk after the tail
/// warp retires. The `SlotList` port must reproduce it exactly.
#[derive(Default)]
struct RefLrr {
    warps: Vec<WarpSlot>,
    cursor: usize,
}

impl RefLrr {
    fn on_launch(&mut self, w: WarpSlot) {
        self.warps.push(w);
    }

    fn on_finish(&mut self, w: WarpSlot) {
        if let Some(i) = self.warps.iter().position(|&x| x == w) {
            self.warps.remove(i);
            if self.cursor > i {
                self.cursor -= 1;
            }
        }
    }

    fn pick(&mut self, can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> Option<WarpSlot> {
        if self.warps.is_empty() {
            return None;
        }
        let n = self.warps.len();
        for off in 0..n {
            let idx = (self.cursor + off) % n;
            let w = self.warps[idx];
            if can_issue(w) {
                self.cursor = (idx + 1) % n;
                return Some(w);
            }
        }
        None
    }
}

/// Scripted scheduler driver: interprets `(kind, warp, mask)` tuples as
/// lifecycle events plus `pick` calls with a bitmask `can_issue`. Slots
/// cycle through launch/finish so the same slot index is reused, which
/// is exactly what the SM does.
fn issue_mask(mask: u32) -> impl FnMut(WarpSlot) -> bool {
    move |w| mask & (1 << (w % 32)) != 0
}

proptest! {
    /// The `SlotList`-based LRR reproduces the seed's rotation decision
    /// for every pick, under arbitrary launch/finish/pick interleavings.
    #[test]
    fn lrr_matches_seed_reference(
        ops in proptest::collection::vec((0u8..8, 0usize..12, 0u32..=u32::MAX), 1..250),
    ) {
        let mut new = LrrScheduler::default();
        let mut reference = RefLrr::default();
        let mut resident = [false; 12];
        for &(kind, w, mask) in &ops {
            match kind {
                0..=1 => {
                    if !resident[w] {
                        resident[w] = true;
                        new.on_launch(w, false, 0);
                        reference.on_launch(w);
                    }
                }
                2 => {
                    if resident[w] {
                        resident[w] = false;
                        new.on_finish(w);
                        reference.on_finish(w);
                    }
                }
                _ => {
                    let got = new.pick(0, &mut issue_mask(mask));
                    let want = reference.pick(&mut issue_mask(mask));
                    prop_assert_eq!(got, want, "pick diverged (mask {:#x})", mask);
                }
            }
        }
    }

    /// GTO (plain and PAS variant) against the same sequence replayed on
    /// a pair: since the seed GTO used simple Vec scans with identical
    /// iteration order, equivalence of the two *current* variants to the
    /// documented greedy-then-oldest contract is checked directly: the
    /// pick is always `current` if issuable, else the oldest issuable
    /// (leading warps first under PAS).
    #[test]
    fn gto_pick_respects_greedy_then_oldest(
        ops in proptest::collection::vec((0u8..10, 0usize..12, 0u32..=u32::MAX), 1..250),
        pas in prop::bool::ANY,
    ) {
        let mut s = if pas {
            GtoScheduler::with_leading_priority()
        } else {
            GtoScheduler::new()
        };
        let mut launch_order: Vec<WarpSlot> = Vec::new();
        let mut leading_set: Vec<WarpSlot> = Vec::new();
        let mut current: Option<WarpSlot> = None;
        for &(kind, w, mask) in &ops {
            match kind {
                0..=2 => {
                    if !launch_order.contains(&w) {
                        let leading = w % 3 == 0;
                        s.on_launch(w, leading, 0);
                        launch_order.push(w);
                        if pas && leading {
                            leading_set.push(w);
                        }
                    }
                }
                3 => {
                    if launch_order.contains(&w) {
                        s.on_finish(w);
                        launch_order.retain(|&x| x != w);
                        leading_set.retain(|&x| x != w);
                        if current == Some(w) {
                            current = None;
                        }
                    }
                }
                4 => {
                    s.on_long_latency(w);
                    if current == Some(w) {
                        current = None;
                    }
                }
                5 => {
                    s.on_leading_done(w);
                    leading_set.retain(|&x| x != w);
                }
                _ => {
                    let got = s.pick(0, &mut issue_mask(mask));
                    let mut f = issue_mask(mask);
                    let want = leading_set
                        .iter()
                        .copied()
                        .find(|&x| f(x))
                        .or_else(|| current.filter(|&c| f(c)))
                        .or_else(|| launch_order.iter().copied().find(|&x| f(x)));
                    prop_assert_eq!(got, want, "pick diverged (mask {:#x})", mask);
                    // Model the greedy-current update: a non-leading pick
                    // from the launch-order scan becomes current.
                    if let Some(g) = got {
                        let from_leading = leading_set.contains(&g);
                        if !from_leading && current != Some(g) {
                            current = Some(g);
                        }
                    }
                }
            }
        }
    }
}

/// The seed's two-level scheduler, `VecDeque`s and all, verbatim from
/// the seed commit. Kept here as the executable specification the
/// `SlotList` port is diffed against.
struct RefTwoLevel {
    capacity: usize,
    ready: std::collections::VecDeque<WarpSlot>,
    pending: std::collections::VecDeque<WarpSlot>,
    info: Vec<RefWarpInfo>,
    pas: bool,
    grouped: bool,
    wakeup: bool,
    last_group: u8,
    wakeups: u64,
}

#[derive(Clone, Copy, Default)]
struct RefWarpInfo {
    resident: bool,
    in_ready: bool,
    eligible: bool,
    leading: bool,
    group: u8,
    wake_armed: bool,
}

impl RefTwoLevel {
    fn new(capacity: usize, pas: bool, grouped: bool, wakeup: bool) -> Self {
        RefTwoLevel {
            capacity,
            ready: Default::default(),
            pending: Default::default(),
            info: Vec::new(),
            pas,
            grouped,
            wakeup,
            last_group: u8::MAX,
            wakeups: 0,
        }
    }

    fn info_mut(&mut self, w: WarpSlot) -> &mut RefWarpInfo {
        if self.info.len() <= w {
            self.info.resize(w + 1, RefWarpInfo::default());
        }
        &mut self.info[w]
    }

    fn ready_insert(&mut self, w: WarpSlot) {
        let leading = self.info[w].leading;
        self.info[w].in_ready = true;
        if self.pas && leading {
            let pos = self.ready.iter().position(|&x| !self.info[x].leading);
            match pos {
                Some(p) => self.ready.insert(p, w),
                None => self.ready.push_back(w),
            }
        } else {
            self.ready.push_back(w);
        }
    }

    fn ready_remove(&mut self, w: WarpSlot) {
        if let Some(i) = self.ready.iter().position(|&x| x == w) {
            self.ready.remove(i);
        }
        self.info[w].in_ready = false;
    }

    fn promotion_candidate(&self) -> Option<usize> {
        let eligible =
            |w: WarpSlot| self.info[w].resident && self.info[w].eligible && !self.info[w].in_ready;
        if self.pas {
            if let Some(i) = self
                .pending
                .iter()
                .position(|&w| eligible(w) && self.info[w].leading)
            {
                return Some(i);
            }
        }
        if self.grouped {
            if let Some(i) = self
                .pending
                .iter()
                .position(|&w| eligible(w) && self.info[w].group != self.last_group)
            {
                return Some(i);
            }
        }
        self.pending.iter().position(|&w| eligible(w))
    }

    fn promote(&mut self) {
        while self.ready.len() < self.capacity {
            let Some(i) = self.promotion_candidate() else {
                break;
            };
            let w = self.pending.remove(i).expect("candidate index valid");
            self.last_group = self.info[w].group;
            self.ready_insert(w);
        }
    }

    fn displace_one(&mut self) -> bool {
        let victim = self
            .ready
            .iter()
            .rev()
            .copied()
            .find(|&x| !self.info[x].leading)
            .or_else(|| self.ready.back().copied());
        let Some(v) = victim else { return false };
        self.ready_remove(v);
        self.info[v].eligible = true;
        self.pending.push_front(v);
        true
    }

    fn force_into_ready(&mut self, w: WarpSlot) -> bool {
        self.pending.retain(|&x| x != w);
        if self.ready.len() < self.capacity {
            self.ready_insert(w);
        } else {
            self.pending.push_front(w);
        }
        true
    }

    fn on_launch(&mut self, w: WarpSlot, leading: bool, group: u8) {
        *self.info_mut(w) = RefWarpInfo {
            resident: true,
            in_ready: false,
            eligible: true,
            leading,
            group,
            wake_armed: false,
        };
        if self.ready.len() < self.capacity {
            self.ready_insert(w);
            self.last_group = group;
        } else if self.pas && leading {
            if self.displace_one() {
                self.ready_insert(w);
            } else {
                self.pending.push_back(w);
            }
        } else {
            self.pending.push_back(w);
        }
    }

    fn on_finish(&mut self, w: WarpSlot) {
        self.ready_remove(w);
        self.pending.retain(|&x| x != w);
        self.info[w] = RefWarpInfo::default();
        self.promote();
    }

    fn on_long_latency(&mut self, w: WarpSlot) {
        self.ready_remove(w);
        self.info[w].eligible = false;
        if !self.pending.contains(&w) {
            self.pending.push_back(w);
        }
        self.promote();
    }

    fn on_ready_again(&mut self, w: WarpSlot) {
        if !self.info[w].resident {
            return;
        }
        self.info[w].eligible = true;
        if self.info[w].wake_armed && !self.info[w].in_ready {
            self.info[w].wake_armed = false;
            if self.force_into_ready(w) {
                self.wakeups += 1;
            }
            return;
        }
        self.promote();
    }

    fn on_prefetch_fill(&mut self, w: WarpSlot) -> bool {
        if !self.pas || !self.wakeup {
            return false;
        }
        let Some(info) = self.info.get(w).copied() else {
            return false;
        };
        if !info.resident || info.in_ready {
            return false;
        }
        if !info.eligible {
            self.info[w].wake_armed = true;
            return false;
        }
        if self.force_into_ready(w) {
            self.wakeups += 1;
            return true;
        }
        false
    }

    fn on_leading_done(&mut self, w: WarpSlot) {
        if let Some(info) = self.info.get_mut(w) {
            info.leading = false;
        }
    }

    fn pick(&mut self, can_issue: &mut dyn FnMut(WarpSlot) -> bool) -> Option<WarpSlot> {
        self.ready.iter().copied().find(|&w| can_issue(w))
    }
}

proptest! {
    /// The `SlotList` two-level port diffed against the seed `VecDeque`
    /// implementation: after every event, both queues hold the same
    /// warps in the same order, every pick agrees, and the wakeup
    /// counter (a stats surface) matches — for all four policy variants.
    #[test]
    fn two_level_matches_seed_reference(
        ops in proptest::collection::vec((0u8..12, 0usize..16, 0u32..=u32::MAX), 1..250),
        variant in 0u8..4,
    ) {
        let (pas, grouped, wakeup) = match variant {
            0 => (false, false, false), // TLV
            1 => (true, false, true),   // PAS
            2 => (true, false, false),  // PAS without wakeup
            _ => (false, true, false),  // ORCH-grouped
        };
        let capacity = 4;
        let mut new = if variant == 2 {
            TwoLevelScheduler::without_wakeup(capacity)
        } else {
            TwoLevelScheduler::new(capacity, pas, grouped)
        };
        let mut reference = RefTwoLevel::new(capacity, pas, grouped, wakeup);
        let mut resident = [false; 16];
        for &(kind, w, mask) in &ops {
            match kind {
                0..=2 => {
                    if !resident[w] {
                        resident[w] = true;
                        let leading = w % 4 == 0;
                        let group = (w % 3) as u8;
                        new.on_launch(w, leading, group);
                        reference.on_launch(w, leading, group);
                    }
                }
                3 => {
                    if resident[w] {
                        resident[w] = false;
                        new.on_finish(w);
                        reference.on_finish(w);
                    }
                }
                4..=5 => {
                    if resident[w] {
                        new.on_long_latency(w);
                        reference.on_long_latency(w);
                    }
                }
                6..=7 => {
                    if resident[w] {
                        new.on_ready_again(w);
                        reference.on_ready_again(w);
                    }
                }
                8 => {
                    if resident[w] {
                        let got = new.on_prefetch_fill(w);
                        let want = reference.on_prefetch_fill(w);
                        prop_assert_eq!(got, want, "prefetch-fill result diverged");
                    }
                }
                9 => {
                    if resident[w] {
                        new.on_leading_done(w);
                        reference.on_leading_done(w);
                    }
                }
                _ => {
                    let got = new.pick(0, &mut issue_mask(mask));
                    let want = reference.pick(&mut issue_mask(mask));
                    prop_assert_eq!(got, want, "pick diverged (mask {:#x})", mask);
                }
            }
            prop_assert_eq!(
                new.ready_order(),
                reference.ready.iter().copied().collect::<Vec<_>>(),
                "ready order diverged"
            );
            prop_assert_eq!(
                new.pending_order(),
                reference.pending.iter().copied().collect::<Vec<_>>(),
                "pending order diverged"
            );
            prop_assert_eq!(new.wakeups, reference.wakeups, "wakeup count diverged");
        }
    }
}
