//! # caps-json — dependency-free JSON for result export
//!
//! A small JSON document model with a recursive-descent parser and a
//! pretty-printer, replacing `serde_json` so the workspace builds with no
//! network access. Design points that matter for the harness:
//!
//! * objects preserve insertion order (stable, diffable exports);
//! * unsigned integers round-trip exactly ([`Value::UInt`] is kept separate
//!   from floats, so `u64` counters never pass through `f64`);
//! * floats print via Rust's shortest-roundtrip formatting (`{:?}`), so a
//!   parse of the output reproduces the bits exactly.

#![warn(missing_docs)]

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer literal (no `.`, `e`, or sign), e.g. counters.
    UInt(u64),
    /// Any other numeric literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Error raised by [`Value::parse`] or by schema accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    /// Human-readable description of what went wrong.
    pub msg: String,
    /// Byte offset in the input where the problem was detected (parse only).
    pub at: Option<usize>,
}

impl Error {
    /// A schema-level error (wrong shape, missing key), not tied to an offset.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error { msg: msg.into(), at: None }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "json error at byte {at}: {}", self.msg),
            None => write!(f, "json error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = Parser { b: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but a missing key is a schema [`Error`].
    pub fn require(&self, key: &str) -> Result<&Value, Error> {
        self.get(key).ok_or_else(|| Error::schema(format!("missing key `{key}`")))
    }

    /// The value as a `u64` counter.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(n) => Ok(n),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
            ref v => Err(Error::schema(format!("expected unsigned integer, got {v:?}"))),
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::UInt(n) => Ok(n as f64),
            Value::Float(f) => Ok(f),
            ref v => Err(Error::schema(format!("expected number, got {v:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            v => Err(Error::schema(format!("expected string, got {v:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            v => Err(Error::schema(format!("expected array, got {v:?}"))),
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest representation that
                    // round-trips the exact bit pattern through `parse`.
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no Inf/NaN; export as null like serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for an ordered object.
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), at: Some(self.pos) }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.b[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&c) = self.b.get(self.pos) {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.b[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our exports.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error { msg: format!("bad number `{text}`"), at: Some(start) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let v = obj(vec![
            ("name", Value::Str("mm \"small\"".into())),
            ("count", Value::UInt(u64::MAX)),
            ("ratio", Value::Float(0.1 + 0.2)),
            ("neg", Value::Float(-1.25e-12)),
            ("flag", Value::Bool(true)),
            ("items", Value::Arr(vec![Value::UInt(1), Value::Null])),
            ("empty", Value::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_counters_are_exact() {
        for n in [0u64, 1, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let text = Value::UInt(n).pretty();
            assert_eq!(Value::parse(&text).unwrap().as_u64().unwrap(), n);
        }
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for f in [0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, -0.0] {
            let text = Value::Float(f).pretty();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        for bad in ["{", "[1,", "\"oops", "{\"a\" 1}", "12 34", "nul"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} parsed");
        }
    }
}
