//! Diagnostic: per-benchmark baseline characterization (cycles, IPC,
//! stall fraction, miss rates, DRAM utilization) side by side with the
//! CAPS result — the table used to calibrate the workload suite.
//!
//! ```text
//! cargo run --release -p caps-metrics --example characterize
//! ```

use caps_metrics::{run_one, Engine, RunSpec};
use caps_workloads::all_workloads;

fn main() {
    println!(
        "{:<5} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6}  | CAPS: {:>6} {:>6} {:>6} {:>6} {:>6}",
        "bench",
        "cycles",
        "ipc/sm",
        "stallF",
        "l1miss",
        "l2hit",
        "dramU",
        "spd",
        "cov",
        "acc",
        "dist",
        "early"
    );
    for w in all_workloads() {
        let b = run_one(&RunSpec::paper(w, Engine::Baseline));
        let s = &b.stats;
        let n = 15.0 * s.cycles as f64;
        let c = run_one(&RunSpec::paper(w, Engine::Caps));
        let cs = &c.stats;
        println!(
            "{:<5} {:>9} {:>6.3} {:>6.2} {:>6.2} {:>6.2} {:>6.2}  |      {:>6.3} {:>6.3} {:>6.2} {:>6.0} {:>6.3}",
            b.workload,
            s.cycles,
            s.warp_instructions as f64 / n,
            s.stall_cycles as f64 / n,
            s.l1d_miss_rate(),
            s.l2_hits as f64 / s.l2_accesses.max(1) as f64,
            (s.dram_reads + s.dram_writes) as f64 * 7.0 / (s.cycles as f64 * 6.0),
            s.cycles as f64 / cs.cycles as f64,
            cs.coverage(),
            cs.accuracy(),
            cs.mean_prefetch_distance(),
            cs.early_prefetch_ratio()
        );
    }
}
