//! One-off probe: print the per-subsystem LinkReport for a workload.
use caps_metrics::{run_one_with_opts, Engine, RunOpts, RunSpec};
use caps_workloads::{all_workloads, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let w = all_workloads()
        .into_iter()
        .find(|w| w.abbr().eq_ignore_ascii_case(&args[0]))
        .unwrap();
    let engine = if args[1] == "caps" { Engine::Caps } else { Engine::Baseline };
    let mut spec = RunSpec::paper(w, engine);
    spec.scale = Scale::Full;
    let r = run_one_with_opts(&spec, &RunOpts { fast_forward: Some(true), sim_threads: Some(1), ..RunOpts::default() });
    println!("{:#?}", r.links);
}
