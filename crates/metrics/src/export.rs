//! Result serialization: run records round-trip through JSON so figure
//! data can be archived, diffed, and post-processed outside Rust.
//!
//! Built on the in-repo [`caps_json`] crate (the build runs with no
//! registry access): a field-list macro generates both directions of the
//! conversion, so adding a counter to [`Stats`] only requires extending
//! one list here. `u64` counters round-trip exactly; floats go through
//! shortest-roundtrip formatting and come back bit-identical.

use std::io::Write as _;
use std::path::Path;

use caps_gpu_sim::port::PortSnapshot;
use caps_gpu_sim::stats::{LinkReport, Stats};
use caps_json::{obj, Error, Value};

use crate::energy::EnergyBreakdown;
use crate::harness::RunRecord;

/// Apply a macro to every `Stats` field (all `u64`).
macro_rules! for_each_stats_field {
    ($m:ident) => {
        $m!(
            cycles,
            warp_instructions,
            stall_cycles,
            mem_wait_cycles,
            l1d_demand_accesses,
            l1d_demand_hits,
            l1d_demand_misses,
            l1d_mshr_merges,
            l1d_reservation_fails,
            store_accesses,
            prefetch_issued,
            prefetch_dropped,
            prefetch_useful,
            prefetch_late,
            prefetch_early_evicted,
            prefetch_unused_resident,
            prefetch_distance_sum,
            prefetch_distance_count,
            prefetch_table_accesses,
            prefetch_mispredicts,
            prefetch_wakeups,
            icnt_requests,
            icnt_replies,
            icnt_stalls,
            l2_accesses,
            l2_hits,
            l2_misses,
            dram_reads,
            dram_writes,
            dram_row_hits,
            dram_row_misses,
            dram_queue_stalls,
            ctas_launched,
            ctas_completed
        )
    };
}

/// Apply a macro to every `EnergyBreakdown` field (all `f64`).
macro_rules! for_each_energy_field {
    ($m:ident) => {
        $m!(core_mj, l1_mj, l2_mj, dram_mj, icnt_mj, static_mj, caps_mj)
    };
}

fn stats_to_value(s: &Stats) -> Value {
    macro_rules! emit {
        ($($f:ident),*) => {
            obj(vec![$((stringify!($f), Value::UInt(s.$f)),)*])
        };
    }
    for_each_stats_field!(emit)
}

fn stats_from_value(v: &Value) -> Result<Stats, Error> {
    let mut s = Stats::default();
    macro_rules! read {
        ($($f:ident),*) => {
            $(s.$f = v.require(stringify!($f))?.as_u64()?;)*
        };
    }
    for_each_stats_field!(read);
    Ok(s)
}

fn energy_to_value(e: &EnergyBreakdown) -> Value {
    macro_rules! emit {
        ($($f:ident),*) => {
            obj(vec![$((stringify!($f), Value::Float(e.$f)),)*])
        };
    }
    for_each_energy_field!(emit)
}

fn energy_from_value(v: &Value) -> Result<EnergyBreakdown, Error> {
    let mut e = EnergyBreakdown::default();
    macro_rules! read {
        ($($f:ident),*) => {
            $(e.$f = v.require(stringify!($f))?.as_f64()?;)*
        };
    }
    for_each_energy_field!(read);
    Ok(e)
}

/// Apply a macro to every `LinkReport` subsystem (all [`PortSnapshot`]).
macro_rules! for_each_link_field {
    ($m:ident) => {
        $m!(
            req_net,
            pf_req_net,
            reply_net,
            pf_reply_net,
            sm_ports,
            partition_ports,
            dram_queues,
            staging
        )
    };
}

fn snapshot_to_value(s: &PortSnapshot) -> Value {
    obj(vec![
        ("high_water", Value::UInt(s.high_water as u64)),
        ("credit_stalls", Value::UInt(s.credit_stalls)),
        ("grows", Value::UInt(s.grows)),
    ])
}

fn snapshot_from_value(v: &Value) -> Result<PortSnapshot, Error> {
    Ok(PortSnapshot {
        high_water: v.require("high_water")?.as_u64()? as usize,
        credit_stalls: v.require("credit_stalls")?.as_u64()?,
        grows: v.require("grows")?.as_u64()?,
    })
}

fn links_to_value(l: &LinkReport) -> Value {
    macro_rules! emit {
        ($($f:ident),*) => {
            obj(vec![$((stringify!($f), snapshot_to_value(&l.$f)),)*])
        };
    }
    for_each_link_field!(emit)
}

fn links_from_value(v: &Value) -> Result<LinkReport, Error> {
    let mut l = LinkReport::default();
    macro_rules! read {
        ($($f:ident),*) => {
            $(l.$f = snapshot_from_value(v.require(stringify!($f))?)?;)*
        };
    }
    for_each_link_field!(read);
    Ok(l)
}

/// Serialize one record (shared with the result cache's entry files).
pub(crate) fn record_to_value(r: &RunRecord) -> Value {
    obj(vec![
        ("workload", Value::Str(r.workload.clone())),
        ("engine", Value::Str(r.engine.clone())),
        ("stats", stats_to_value(&r.stats)),
        ("energy", energy_to_value(&r.energy)),
        ("links", links_to_value(&r.links)),
    ])
}

/// Parse one record (shared with the result cache's entry files).
pub(crate) fn record_from_value(v: &Value) -> Result<RunRecord, Error> {
    Ok(RunRecord {
        workload: v.require("workload")?.as_str()?.to_string(),
        engine: v.require("engine")?.as_str()?.to_string(),
        stats: stats_from_value(v.require("stats")?)?,
        energy: energy_from_value(v.require("energy")?)?,
        // Absent in records archived before the port layer existed.
        links: match v.get("links") {
            Some(lv) => links_from_value(lv)?,
            None => LinkReport::default(),
        },
    })
}

/// Serialize records to a JSON string (pretty-printed, stable field
/// order from the field-list macros above).
pub fn to_json(records: &[RunRecord]) -> String {
    Value::Arr(records.iter().map(record_to_value).collect()).pretty()
}

/// Parse records back from JSON.
pub fn from_json(s: &str) -> Result<Vec<RunRecord>, Error> {
    Value::parse(s)?.as_arr()?.iter().map(record_from_value).collect()
}

/// Write records to `path` as JSON.
pub fn save(records: &[RunRecord], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(records).as_bytes())
}

/// Load records from `path`.
pub fn load(path: &Path) -> std::io::Result<Vec<RunRecord>> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::harness::{run_one, RunSpec};
    use caps_workloads::Workload;

    #[test]
    fn records_round_trip_through_json() {
        let r = run_one(&RunSpec::small(Workload::Scn, Engine::Caps));
        let json = to_json(std::slice::from_ref(&r));
        let back = from_json(&json).expect("parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].workload, r.workload);
        assert_eq!(back[0].engine, r.engine);
        assert_eq!(back[0].stats, r.stats);
        assert!((back[0].energy.total_mj() - r.energy.total_mj()).abs() < 1e-12);
    }

    #[test]
    fn save_and_load_files() {
        let r = run_one(&RunSpec::small(Workload::Scn, Engine::Baseline));
        let dir = std::env::temp_dir().join("caps-export-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("records.json");
        save(std::slice::from_ref(&r), &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back[0].stats, r.stats);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{not json").is_err());
    }

    #[test]
    fn missing_stats_field_is_an_error() {
        let r = run_one(&RunSpec::small(Workload::Scn, Engine::Baseline));
        let json = to_json(&[r]).replace("\"cycles\"", "\"cycels\"");
        assert!(from_json(&json).is_err());
    }
}
