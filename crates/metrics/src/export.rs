//! Result serialization: run records round-trip through JSON so figure
//! data can be archived, diffed, and post-processed outside Rust.

use std::io::Write as _;
use std::path::Path;

use crate::harness::RunRecord;

/// Serialize records to a JSON string (pretty-printed, stable field
/// order via serde).
pub fn to_json(records: &[RunRecord]) -> String {
    serde_json::to_string_pretty(records).expect("run records always serialize")
}

/// Parse records back from JSON.
pub fn from_json(s: &str) -> Result<Vec<RunRecord>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Write records to `path` as JSON.
pub fn save(records: &[RunRecord], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(records).as_bytes())
}

/// Load records from `path`.
pub fn load(path: &Path) -> std::io::Result<Vec<RunRecord>> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::harness::{run_one, RunSpec};
    use caps_workloads::Workload;

    #[test]
    fn records_round_trip_through_json() {
        let r = run_one(&RunSpec::small(Workload::Scn, Engine::Caps));
        let json = to_json(std::slice::from_ref(&r));
        let back = from_json(&json).expect("parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].workload, r.workload);
        assert_eq!(back[0].engine, r.engine);
        assert_eq!(back[0].stats, r.stats);
        assert!((back[0].energy.total_mj() - r.energy.total_mj()).abs() < 1e-12);
    }

    #[test]
    fn save_and_load_files() {
        let r = run_one(&RunSpec::small(Workload::Scn, Engine::Baseline));
        let dir = std::env::temp_dir().join("caps-export-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("records.json");
        save(&[r.clone()], &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back[0].stats, r.stats);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{not json").is_err());
    }
}
