//! GPUWattch-style activity-based energy model (Fig. 15).
//!
//! The paper estimates GPU energy with GPUWattch \[32\] and adds CAPS's
//! table costs from RTL synthesis + CACTI (§V-D): 15.07 pJ per table
//! access and 550 µW static per SM. We reproduce the same first-order
//! computation: per-event dynamic energies × activity counts, plus
//! static power × runtime. The absolute per-event constants are
//! GPUWattch-magnitude estimates for a 40/45 nm Fermi-class part; the
//! figure reports energy *normalized to the baseline*, so only relative
//! magnitudes matter.

use caps_core::hardware::{CAPS_ENERGY_PER_ACCESS_PJ, CAPS_STATIC_POWER_UW};
use caps_gpu_sim::stats::Stats;
/// Per-event dynamic energies (nJ) and static power (W).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per warp instruction (32 lanes of decode+execute), nJ.
    pub inst_nj: f64,
    /// Energy per L1/shared access, nJ.
    pub l1_nj: f64,
    /// Energy per L2 access, nJ.
    pub l2_nj: f64,
    /// Energy per DRAM line transfer, nJ.
    pub dram_nj: f64,
    /// Energy per interconnect traversal, nJ.
    pub icnt_nj: f64,
    /// Whole-GPU static (leakage + constant clocking) power, W.
    pub static_w: f64,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Number of SMs (scales the CAPS static adder).
    pub num_sms: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // GPUWattch-magnitude constants for a Fermi-class part, scaled
        // so that at this simulator's typical activity density the
        // static share lands near 40% — the regime in which Fig. 15's
        // 2% saving emerges from an 8% cycle reduction.
        EnergyModel {
            inst_nj: 1.9,
            l1_nj: 0.6,
            l2_nj: 1.1,
            dram_nj: 16.0,
            icnt_nj: 1.3,
            static_w: 13.0,
            clock_hz: 1.4e9,
            num_sms: 15.0,
        }
    }
}

/// Energy breakdown of one run, in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Core dynamic (instruction) energy.
    pub core_mj: f64,
    /// L1 dynamic energy.
    pub l1_mj: f64,
    /// L2 dynamic energy.
    pub l2_mj: f64,
    /// DRAM dynamic energy.
    pub dram_mj: f64,
    /// Interconnect dynamic energy.
    pub icnt_mj: f64,
    /// Static energy (power × runtime).
    pub static_mj: f64,
    /// CAPS table energy (dynamic + static), zero without CAP.
    pub caps_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.core_mj
            + self.l1_mj
            + self.l2_mj
            + self.dram_mj
            + self.icnt_mj
            + self.static_mj
            + self.caps_mj
    }
}

impl EnergyModel {
    /// Evaluate the model on a run's statistics. `with_cap_tables` adds
    /// the CAPS hardware costs (§V-D).
    pub fn evaluate(&self, stats: &Stats, with_cap_tables: bool) -> EnergyBreakdown {
        let nj = 1e-6; // nJ → mJ
        let seconds = stats.cycles as f64 / self.clock_hz;
        let l1_events = stats.l1d_demand_accesses + stats.store_accesses + stats.prefetch_issued;
        let mut b = EnergyBreakdown {
            core_mj: stats.warp_instructions as f64 * self.inst_nj * nj,
            l1_mj: l1_events as f64 * self.l1_nj * nj,
            l2_mj: stats.l2_accesses as f64 * self.l2_nj * nj,
            dram_mj: (stats.dram_reads + stats.dram_writes) as f64 * self.dram_nj * nj,
            icnt_mj: (stats.icnt_requests + stats.icnt_replies) as f64 * self.icnt_nj * nj,
            static_mj: self.static_w * seconds * 1e3,
            caps_mj: 0.0,
        };
        if with_cap_tables {
            let dynamic = stats.prefetch_table_accesses as f64 * CAPS_ENERGY_PER_ACCESS_PJ * 1e-9;
            let static_ = CAPS_STATIC_POWER_UW * 1e-6 * self.num_sms * seconds * 1e3;
            b.caps_mj = dynamic + static_;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        // Activity density representative of a full 15-SM run
        // (~4 warp-instructions and ~1.5 L1 accesses per GPU cycle).
        Stats {
            cycles: 1_400_000, // 1 ms at 1.4 GHz
            warp_instructions: 5_500_000,
            l1d_demand_accesses: 2_000_000,
            store_accesses: 200_000,
            l2_accesses: 800_000,
            dram_reads: 400_000,
            dram_writes: 100_000,
            icnt_requests: 1_000_000,
            icnt_replies: 900_000,
            prefetch_issued: 300_000,
            prefetch_table_accesses: 4_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let b = m.evaluate(&stats(), true);
        let manual =
            b.core_mj + b.l1_mj + b.l2_mj + b.dram_mj + b.icnt_mj + b.static_mj + b.caps_mj;
        assert!((b.total_mj() - manual).abs() < 1e-12);
        assert!(b.total_mj() > 0.0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::default();
        let mut s = stats();
        let e1 = m.evaluate(&s, false).static_mj;
        s.cycles *= 2;
        let e2 = m.evaluate(&s, false).static_mj;
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cap_tables_add_little_energy() {
        // §V-D: the tables must be a tiny fraction of total energy.
        let m = EnergyModel::default();
        let b = m.evaluate(&stats(), true);
        assert!(b.caps_mj > 0.0);
        assert!(b.caps_mj / b.total_mj() < 0.01, "CAPS adder must be <1%");
    }

    #[test]
    fn fewer_cycles_mean_less_energy_despite_tables() {
        // The Fig. 15 mechanism: an 8% faster run saves static energy
        // that dwarfs the table adder.
        let m = EnergyModel::default();
        let base = m.evaluate(&stats(), false);
        let mut faster = stats();
        faster.cycles = (faster.cycles as f64 * 0.92) as u64;
        let caps = m.evaluate(&faster, true);
        assert!(caps.total_mj() < base.total_mj());
    }

    #[test]
    fn static_share_is_plausible_for_fermi() {
        let m = EnergyModel::default();
        let b = m.evaluate(&stats(), false);
        let share = b.static_mj / b.total_mj();
        assert!(share > 0.2 && share < 0.7, "static share {share}");
    }
}
