//! # caps-metrics — experiment harness, energy model, and reporting
//!
//! Ties the simulator, the CAPS implementation, the baseline prefetchers
//! and the workload suite together into the paper's evaluation matrix:
//!
//! * [`engine::Engine`] — the prefetcher×scheduler configurations of
//!   Fig. 10–15 (plus the Fig. 1/14 probes and ablations);
//! * [`harness`] — a deterministic, order-stable matrix runner;
//! * [`farm`] — the work-stealing run service behind the harness, with
//!   content-keyed submission dedup;
//! * [`cache`] — the persistent content-addressed result cache keyed by
//!   structural digests ([`caps_gpu_sim::digest`]) salted with a
//!   build-time source fingerprint;
//! * [`energy`] — the GPUWattch-style activity×energy model with the
//!   paper's CAPS table costs;
//! * [`report`] — ASCII renderers for the figure regenerators.

#![warn(missing_docs)]

pub mod cache;
pub mod energy;
pub mod engine;
pub mod export;
pub mod farm;
pub mod harness;
pub mod report;
pub mod sweep;

pub use cache::{job_digest, CacheCounters, CacheMode, ResultCache};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::Engine;
pub use export::{from_json, load, save, to_json};
pub use farm::{Farm, FarmJob, FarmStats, PruneSet};
pub use harness::{
    run_matrix, run_matrix_with_threads, run_one, run_one_with_fast_forward, run_one_with_opts,
    set_default_threads, RunOpts, RunRecord, RunSpec,
};
pub use report::{f3, geomean, mean, pct, Table};
pub use sweep::{
    standard_axes, sweep, sweep_jobs, sweep_on, sweep_pruned, SweepPoint, SweepResult,
};
