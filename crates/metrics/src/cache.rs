//! Persistent content-addressed result cache.
//!
//! Every run is keyed by a [`Digest`] over the complete run identity —
//! engine variant, workload, scale, full [`GpuConfig`], the materialized
//! kernel IR, and the effective cycle ceiling — salted with the build's
//! simulator-source fingerprint (`CAPS_SIM_FINGERPRINT`, computed by
//! `build.rs`) and the cache schema version. Two consequences:
//!
//! * overlapping sweeps never simulate the same `(config, kernel)` point
//!   twice — the farm resolves repeats from memory or disk, and cached
//!   records are bit-identical to fresh runs (`u64` counters round-trip
//!   exactly through `caps_json`; floats via shortest-roundtrip
//!   formatting);
//! * entries written by a *different build* of the simulator can never
//!   hit (their keys differ), so a code change silently invalidates the
//!   cache instead of serving stale statistics.
//!
//! On-disk layout: one `<dir>/<32-hex-key>.json` per record, written
//! atomically (unique tmp file + rename) so concurrent writers and
//! killed processes can never leave a torn entry. Reads treat any
//! malformed or mismatched file as a miss.
//!
//! Environment knobs (read once, on first use of the global cache):
//!
//! * `GPU_SIM_CACHE` — `rw` (default: read and write), `ro` (read-only),
//!   `off` (bypass entirely);
//! * `GPU_SIM_CACHE_DIR` — cache directory (default `.sim-cache`).
//!
//! The execution-mode fields of [`RunOpts`] (`fast_forward`,
//! `sim_threads`) are deliberately **excluded** from the key: they are
//! host-execution-only and bit-identity across them is enforced by the
//! differential suites, so a record computed by any engine mode
//! satisfies every other. `max_cycles` *is* keyed — a lower ceiling
//! truncates runs. The only per-record field exempt from bit-identity is
//! the [`LinkReport`](caps_gpu_sim::stats::LinkReport) observability
//! block, which may legitimately differ across execution modes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use caps_gpu_sim::digest::{Digest, Hashable};
use caps_json::{obj, Value};

use crate::harness::{RunOpts, RunRecord, RunSpec};

/// Version of the on-disk entry layout. Bump when the JSON shape of a
/// cache entry changes (the *content* key already tracks simulator
/// source through the build fingerprint).
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// FNV-1a fingerprint of the simulator-stack sources, baked in by
/// `build.rs`. Part of every cache key.
pub const SIM_FINGERPRINT: &str = env!("CAPS_SIM_FINGERPRINT");

/// Cache behaviour, from `GPU_SIM_CACHE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No lookups, no stores — every job simulates.
    Off,
    /// Read hits and persist fresh results (the default).
    ReadWrite,
    /// Read hits but never write the disk (shared/CI artifact caches).
    ReadOnly,
}

impl CacheMode {
    /// Parse `GPU_SIM_CACHE` (`off`/`0`/`no`, `rw`/`on`/`1`, `ro`);
    /// unset or unrecognized values mean [`CacheMode::ReadWrite`].
    pub fn from_env() -> Self {
        match std::env::var("GPU_SIM_CACHE").as_deref() {
            Ok("off") | Ok("0") | Ok("no") => CacheMode::Off,
            Ok("ro") => CacheMode::ReadOnly,
            _ => CacheMode::ReadWrite,
        }
    }
}

/// Cache directory: `GPU_SIM_CACHE_DIR`, default `.sim-cache`.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("GPU_SIM_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".sim-cache"),
    }
}

/// Which tier served a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// In-process index.
    Memory,
    /// Parsed from a `<key>.json` file.
    Disk,
}

/// Monotonic counters for one [`ResultCache`] (process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Hits served from the in-memory index.
    pub mem_hits: u64,
    /// Hits parsed from disk (then promoted to the index).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Failed disk writes (cache stays best-effort; the run result is
    /// unaffected).
    pub store_errors: u64,
}

/// The canonical content key of one job: everything that determines the
/// run's statistics, salted with schema version and build fingerprint.
pub fn job_digest(spec: &RunSpec, opts: &RunOpts) -> u128 {
    let mut d = Digest::with_salt(SIM_FINGERPRINT);
    d.write_u64(CACHE_SCHEMA_VERSION);
    spec.engine.digest_into(&mut d);
    d.write_str(spec.workload.abbr());
    d.write_tag(match spec.scale {
        caps_workloads::Scale::Full => 0,
        caps_workloads::Scale::Small => 1,
    });
    spec.base_config.digest_into(&mut d);
    // The materialized kernel IR: any change to a workload's program,
    // geometry, or scaling lands here even if the enum name is stable.
    spec.workload.kernel(spec.scale).digest_into(&mut d);
    d.write_u64(
        opts.max_cycles
            .unwrap_or(caps_gpu_sim::gpu::DEFAULT_MAX_CYCLES),
    );
    d.finish()
}

/// A persistent, thread-safe, content-addressed store of [`RunRecord`]s.
pub struct ResultCache {
    mode: CacheMode,
    dir: PathBuf,
    index: Mutex<HashMap<u128, RunRecord>>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    store_errors: AtomicU64,
    tmp_seq: AtomicU64,
}

static GLOBAL: OnceLock<ResultCache> = OnceLock::new();

impl ResultCache {
    /// A cache over `dir` with explicit behaviour.
    pub fn new(mode: CacheMode, dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            mode,
            dir: dir.into(),
            index: Mutex::new(HashMap::new()),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// Cache configured from the environment (`GPU_SIM_CACHE`,
    /// `GPU_SIM_CACHE_DIR`).
    pub fn from_env() -> Self {
        Self::new(CacheMode::from_env(), default_cache_dir())
    }

    /// The process-wide shared cache used by [`run_matrix`] and
    /// [`sweep`] (environment-configured, built on first use).
    ///
    /// [`run_matrix`]: crate::harness::run_matrix
    /// [`sweep`]: crate::sweep::sweep
    pub fn global() -> &'static ResultCache {
        GLOBAL.get_or_init(ResultCache::from_env)
    }

    /// The cache's behaviour mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.json"))
    }

    /// Look up a record, reporting which tier served it.
    pub fn lookup_tiered(&self, key: u128) -> Option<(RunRecord, CacheTier)> {
        if self.mode == CacheMode::Off {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if let Some(rec) = self.index.lock().unwrap().get(&key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some((rec.clone(), CacheTier::Memory));
        }
        if let Some(rec) = self.load_from_disk(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.index.lock().unwrap().insert(key, rec.clone());
            return Some((rec, CacheTier::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Look up a record by content key.
    pub fn lookup(&self, key: u128) -> Option<RunRecord> {
        self.lookup_tiered(key).map(|(rec, _)| rec)
    }

    /// Publish a fresh result under `key`: always into the in-memory
    /// index (except in `Off` mode), and onto disk in `ReadWrite` mode.
    pub fn insert(&self, key: u128, record: &RunRecord) {
        match self.mode {
            CacheMode::Off => return,
            CacheMode::ReadOnly => {}
            CacheMode::ReadWrite => self.store_to_disk(key, record),
        }
        self.index.lock().unwrap().insert(key, record.clone());
    }

    /// Forget everything in the in-memory index (disk untouched). Lets
    /// tests and the farm bench exercise the disk path deliberately.
    pub fn drop_index(&self) {
        self.index.lock().unwrap().clear();
    }

    fn load_from_disk(&self, key: u128) -> Option<RunRecord> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let doc = Value::parse(&text).ok()?;
        // Any mismatch (schema bump, truncated write that still parses,
        // hand-edited file) is a miss, never an error.
        if doc.get("schema")?.as_u64().ok()? != CACHE_SCHEMA_VERSION {
            return None;
        }
        if doc.get("key")?.as_str().ok()? != format!("{key:032x}") {
            return None;
        }
        crate::export::record_from_value(doc.get("record")?).ok()
    }

    fn store_to_disk(&self, key: u128, record: &RunRecord) {
        let doc = obj(vec![
            ("schema", Value::UInt(CACHE_SCHEMA_VERSION)),
            ("key", Value::Str(format!("{key:032x}"))),
            ("fingerprint", Value::Str(SIM_FINGERPRINT.to_string())),
            ("record", crate::export::record_to_value(record)),
        ]);
        let final_path = self.entry_path(key);
        // Unique tmp name per (process, store): concurrent writers of
        // the same key each rename a complete file into place.
        let tmp = self.dir.join(format!(
            ".tmp-{key:032x}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&tmp, doc.pretty())?;
            std::fs::rename(&tmp, &final_path)
        };
        match write() {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use caps_workloads::{Scale, Workload};

    fn spec() -> RunSpec {
        RunSpec::small(Workload::Jc1, Engine::Baseline)
    }

    #[test]
    fn job_digest_is_stable_and_spec_sensitive() {
        let a = job_digest(&spec(), &RunOpts::default());
        assert_eq!(a, job_digest(&spec(), &RunOpts::default()));

        let mut other = spec();
        other.scale = Scale::Full;
        assert_ne!(a, job_digest(&other, &RunOpts::default()));

        let mut other = spec();
        other.engine = Engine::Caps;
        assert_ne!(a, job_digest(&other, &RunOpts::default()));

        let mut other = spec();
        other.base_config.l1d.mshr_entries = 16;
        assert_ne!(a, job_digest(&other, &RunOpts::default()));

        let ceiling = RunOpts {
            max_cycles: Some(1000),
            ..RunOpts::default()
        };
        assert_ne!(a, job_digest(&spec(), &ceiling));
    }

    #[test]
    fn execution_mode_does_not_change_the_key() {
        let a = job_digest(&spec(), &RunOpts::default());
        let modes = RunOpts {
            fast_forward: Some(false),
            sim_threads: Some(4),
            max_cycles: None,
            adaptive: Some(false),
            pin: Some(false),
            shard_rebalance_window: Some(7),
            shard_plan: Some(vec![0, 1, 1, 2, 2]),
        };
        assert_eq!(a, job_digest(&spec(), &modes));
    }

    #[test]
    fn mode_parsing_defaults_to_rw() {
        // Avoid set_var races with parallel tests: only check that the
        // ambient environment yields *some* valid mode and that the
        // default path is ReadWrite when the variable is unset.
        if std::env::var("GPU_SIM_CACHE").is_err() {
            assert_eq!(CacheMode::from_env(), CacheMode::ReadWrite);
        }
    }

    #[test]
    fn off_mode_never_touches_disk() {
        let dir = std::env::temp_dir().join(format!("caps-cache-off-{}", std::process::id()));
        let cache = ResultCache::new(CacheMode::Off, &dir);
        let key = 42u128;
        let rec = crate::harness::run_one(&spec());
        cache.insert(key, &rec);
        assert!(cache.lookup(key).is_none());
        assert!(!dir.exists(), "Off mode must not create the cache dir");
        assert_eq!(cache.counters().stores, 0);
    }
}
