//! Parallel experiment harness.
//!
//! Parallelism exists at two levels. The evaluation matrix — engines ×
//! benchmarks × configuration sweeps — is embarrassingly parallel, and
//! [`run_matrix`] fans runs out through the [sweep farm](crate::farm),
//! which adds work-stealing workers, content-addressed result caching,
//! and submission dedup while keeping results order-stable and every
//! run deterministic. A single simulation can additionally use the
//! phase-split parallel cycle engine (`RunOpts::sim_threads`, or the
//! `GPU_SIM_THREADS` environment variable), which is bit-identical to
//! sequential stepping for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use caps_gpu_sim::config::GpuConfig;
use caps_gpu_sim::gpu::Gpu;
use caps_gpu_sim::stats::{LinkReport, Stats};
use caps_workloads::{Scale, Workload};

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::engine::Engine;

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Benchmark.
    pub workload: Workload,
    /// Prefetcher×scheduler configuration.
    pub engine: Engine,
    /// Base GPU configuration (the engine overrides the scheduler).
    pub base_config: GpuConfig,
    /// Kernel scale.
    pub scale: Scale,
}

impl RunSpec {
    /// Paper-default run: Fermi base config at full scale.
    pub fn paper(workload: Workload, engine: Engine) -> Self {
        RunSpec {
            workload,
            engine,
            base_config: GpuConfig::fermi_gtx480(),
            scale: Scale::Full,
        }
    }

    /// Fast run for tests.
    pub fn small(workload: Workload, engine: Engine) -> Self {
        RunSpec {
            workload,
            engine,
            base_config: GpuConfig::fermi_gtx480(),
            scale: Scale::Small,
        }
    }
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Benchmark abbreviation.
    pub workload: String,
    /// Engine label.
    pub engine: String,
    /// Raw statistics.
    pub stats: Stats,
    /// Energy breakdown under the default model.
    pub energy: EnergyBreakdown,
    /// Port/link occupancy and backpressure summary (host-side
    /// observability; exempt from the bit-identity contract, unlike
    /// `stats`).
    pub links: LinkReport,
}

impl RunRecord {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Per-run overrides for [`run_one_with_opts`]; `None`/default leaves
/// the environment-derived behavior untouched. Every field is
/// host-execution-only: no combination changes a run's statistics.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Event-horizon fast-forward on/off (overrides `GPU_SIM_NO_SKIP`).
    pub fast_forward: Option<bool>,
    /// Intra-simulation worker count for the phase-split engine
    /// (overrides `GPU_SIM_THREADS`; 1 = sequential).
    pub sim_threads: Option<usize>,
    /// Cycle ceiling override (default [`caps_gpu_sim::gpu::DEFAULT_MAX_CYCLES`]);
    /// the differential suite uses it to bound full-scale runs.
    pub max_cycles: Option<u64>,
    /// Measured seq-vs-par engine selection on/off (overrides
    /// `GPU_SIM_ADAPT`). Benches force `Some(false)` so a requested
    /// thread count is actually exercised.
    pub adaptive: Option<bool>,
    /// Pin phase-split workers to distinct cores (default on; the
    /// `GPU_SIM_NO_PIN` environment opt-out still wins when set).
    pub pin: Option<bool>,
    /// Cycles between load-aware shard-plan rebalances.
    pub shard_rebalance_window: Option<u64>,
    /// Explicit initial shard plan (`sim_threads + 1` ascending SM
    /// boundaries); the differential suite uses skewed plans to prove
    /// any contiguous split is bit-identical.
    pub shard_plan: Option<Vec<usize>>,
}

/// Execute one spec (blocking).
pub fn run_one(spec: &RunSpec) -> RunRecord {
    run_one_with_opts(spec, &RunOpts::default())
}

/// Execute one spec with event-horizon fast-forward explicitly on or
/// off, overriding the `GPU_SIM_NO_SKIP` environment default. Both
/// settings produce bit-identical records; differential tests and the
/// throughput benchmark compare the two.
pub fn run_one_with_fast_forward(spec: &RunSpec, fast_forward: bool) -> RunRecord {
    run_one_with_opts(
        spec,
        &RunOpts {
            fast_forward: Some(fast_forward),
            ..RunOpts::default()
        },
    )
}

/// Execute one spec with explicit engine overrides ([`RunOpts`]).
pub fn run_one_with_opts(spec: &RunSpec, opts: &RunOpts) -> RunRecord {
    let kernel = spec.workload.kernel(spec.scale);
    let cfg = spec.engine.configure(&spec.base_config);
    let factory = spec.engine.factory();
    let mut gpu = Gpu::new(cfg, kernel, &*factory);
    if let Some(on) = opts.fast_forward {
        gpu.set_fast_forward(on);
    }
    if let Some(n) = opts.sim_threads {
        gpu.set_sim_threads(n);
    }
    if let Some(on) = opts.adaptive {
        gpu.set_adaptive(on);
    }
    if let Some(on) = opts.pin {
        gpu.set_pinning(on);
    }
    if let Some(w) = opts.shard_rebalance_window {
        gpu.set_shard_rebalance_window(w);
    }
    if let Some(plan) = &opts.shard_plan {
        gpu.set_shard_plan(plan.clone());
    }
    let launches = match spec.scale {
        Scale::Full => spec.workload.launches(),
        Scale::Small => 1,
    };
    let max_cycles = opts
        .max_cycles
        .unwrap_or(caps_gpu_sim::gpu::DEFAULT_MAX_CYCLES);
    let stats = gpu.run_launches(launches, max_cycles);
    let energy = EnergyModel::default().evaluate(&stats, spec.engine.uses_cap_tables());
    RunRecord {
        workload: spec.workload.abbr().to_string(),
        engine: spec.engine.label().to_string(),
        stats,
        energy,
        links: gpu.link_report(),
    }
}

/// Worker-count override for [`run_matrix`]: 0 = auto-detect.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker count used by [`run_matrix`] (and everything built on
/// it — the figure modules, the sweep driver). `0` restores the default
/// auto-detection from `available_parallelism`. Binaries expose this as
/// a `--threads N` flag.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Execute a matrix of specs in parallel; results are index-aligned with
/// the input order regardless of completion order. A thin client of the
/// [sweep farm](crate::farm): repeated specs dedup to one simulation and
/// previously-computed points resolve from the result cache.
pub fn run_matrix(specs: &[RunSpec]) -> Vec<RunRecord> {
    run_matrix_with_threads(specs, default_threads())
}

/// Parallel runner with an explicit worker count.
pub fn run_matrix_with_threads(specs: &[RunSpec], threads: usize) -> Vec<RunRecord> {
    let jobs: Vec<crate::farm::FarmJob> = specs
        .iter()
        .map(|s| crate::farm::FarmJob::new(s.clone()))
        .collect();
    crate::farm::Farm::global(threads).run(&jobs).0
}

pub(crate) fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_consistent_record() {
        let r = run_one(&RunSpec::small(Workload::Jc1, Engine::Baseline));
        assert_eq!(r.workload, "JC1");
        assert_eq!(r.engine, "BASE");
        assert!(r.stats.cycles > 0);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.stats.prefetch_issued, 0);
    }

    #[test]
    fn matrix_results_are_input_ordered_and_deterministic() {
        let specs = vec![
            RunSpec::small(Workload::Jc1, Engine::Baseline),
            RunSpec::small(Workload::Mm, Engine::Caps),
            RunSpec::small(Workload::Jc1, Engine::Baseline),
        ];
        let a = run_matrix_with_threads(&specs, 3);
        assert_eq!(a[0].workload, "JC1");
        assert_eq!(a[1].workload, "MM");
        assert_eq!(a[1].engine, "CAPS");
        // Same spec → identical stats, and parallel == serial.
        assert_eq!(a[0].stats, a[2].stats);
        let b = run_matrix_with_threads(&specs, 1);
        assert_eq!(a[0].stats, b[0].stats);
        assert_eq!(a[1].stats, b[1].stats);
    }

    #[test]
    fn pas_gto_configuration_runs() {
        let r = run_one(&RunSpec::small(Workload::Jc1, Engine::CapsOnPasGto));
        assert_eq!(r.engine, "CAPS@GTO");
        assert!(r.stats.ctas_completed > 0);
        assert!(r.stats.prefetch_issued > 0, "CAP engine active on PA-GTO");
    }

    #[test]
    fn caps_runs_issue_prefetches_on_stride_kernels() {
        let r = run_one(&RunSpec::small(Workload::Cnv, Engine::Caps));
        assert!(r.stats.prefetch_issued > 0, "CAPS must prefetch on CNV");
        assert!(r.energy.caps_mj > 0.0);
    }
}
