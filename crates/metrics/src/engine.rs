//! The prefetcher×scheduler configurations evaluated in the paper.
//!
//! Each [`Engine`] bundles a prefetch-engine factory with the warp
//! scheduler it is defined to run on: the baseline and all simple
//! prefetchers use the two-level scheduler (Table III), ORCH pairs LAP
//! with group-interleaved scheduling, and CAPS pairs CAP with PAS.
//! Fig. 14's ablations expose CAP on other schedulers and PAS without
//! the eager wake-up.

use caps_core::{caps_factory, CtaAwarePrefetcher};
use caps_gpu_sim::config::{GpuConfig, SchedulerKind};
use caps_gpu_sim::prefetch::{null_factory, PrefetcherFactory};
use caps_prefetchers as base;
/// One evaluated configuration (a bar color in Fig. 10–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Two-level scheduler, no prefetching (the normalization baseline).
    Baseline,
    /// Intra-warp stride prefetching.
    Intra,
    /// Inter-warp stride prefetching (CTA-oblivious).
    Inter,
    /// Inter-warp stride probing a fixed warp distance (Fig. 1).
    InterAtDistance(u32),
    /// Many-thread-aware prefetching (Lee et al.).
    Mta,
    /// Next-line prefetching.
    Nlp,
    /// Locality-aware (macro-block) prefetching (Jog et al.).
    Lap,
    /// LAP + group-interleaved scheduling (orchestrated; Jog et al.).
    Orch,
    /// CTA-aware prefetcher + prefetch-aware scheduler (the paper).
    Caps,
    /// CAPS with the eager warp wake-up disabled (Fig. 14a).
    CapsNoWakeup,
    /// CAP engine on an unmodified loose round-robin scheduler (Fig. 14b).
    CapsOnLrr,
    /// CAP engine on the unmodified two-level scheduler (Fig. 14b).
    CapsOnTlv,
    /// CAP engine on GTO with PAS leading-warp priority (§V-A's GTO
    /// adaptation — an extension experiment).
    CapsOnPasGto,
}

impl Engine {
    /// The seven configurations of Fig. 10/11/12/13.
    pub const FIGURE10: [Engine; 7] = [
        Engine::Intra,
        Engine::Inter,
        Engine::Mta,
        Engine::Nlp,
        Engine::Lap,
        Engine::Orch,
        Engine::Caps,
    ];

    /// Paper legend label.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Baseline => "BASE",
            Engine::Intra => "INTRA",
            Engine::Inter | Engine::InterAtDistance(_) => "INTER",
            Engine::Mta => "MTA",
            Engine::Nlp => "NLP",
            Engine::Lap => "LAP",
            Engine::Orch => "ORCH",
            Engine::Caps => "CAPS",
            Engine::CapsNoWakeup => "CAPS-NW",
            Engine::CapsOnLrr => "CAPS@LRR",
            Engine::CapsOnTlv => "CAPS@TLV",
            Engine::CapsOnPasGto => "CAPS@GTO",
        }
    }

    /// The prefetch-engine factory for this configuration.
    pub fn factory(self) -> Box<PrefetcherFactory> {
        match self {
            Engine::Baseline => null_factory(),
            Engine::Intra => base::intra_factory(),
            Engine::Inter => base::inter_factory(),
            Engine::InterAtDistance(d) => base::inter_distance_factory(d),
            Engine::Mta => base::mta_factory(),
            Engine::Nlp => base::nlp_factory(),
            Engine::Lap => base::lap_factory(),
            Engine::Orch => base::orch_factory(),
            Engine::Caps
            | Engine::CapsNoWakeup
            | Engine::CapsOnLrr
            | Engine::CapsOnTlv
            | Engine::CapsOnPasGto => caps_factory(),
        }
    }

    /// The warp scheduler this configuration is defined on.
    pub fn scheduler(self) -> SchedulerKind {
        match self {
            Engine::Orch => SchedulerKind::OrchGrouped,
            Engine::Caps => SchedulerKind::Pas,
            Engine::CapsNoWakeup => SchedulerKind::PasNoWakeup,
            Engine::CapsOnLrr => SchedulerKind::Lrr,
            Engine::CapsOnPasGto => SchedulerKind::PasGto,
            _ => SchedulerKind::TwoLevel,
        }
    }

    /// Apply this configuration to a base GPU config.
    pub fn configure(self, base: &GpuConfig) -> GpuConfig {
        let mut cfg = base.clone();
        cfg.scheduler = self.scheduler();
        cfg
    }

    /// Whether this engine carries CAP tables (for energy accounting).
    pub fn uses_cap_tables(self) -> bool {
        matches!(
            self,
            Engine::Caps
                | Engine::CapsNoWakeup
                | Engine::CapsOnLrr
                | Engine::CapsOnTlv
                | Engine::CapsOnPasGto
        )
    }
}

// --- content hashing (sweep-farm result cache keys) -------------------

use caps_gpu_sim::digest::{Digest, Hashable};

impl Hashable for Engine {
    /// Variant identity, not the display label: `Inter` and
    /// `InterAtDistance(d)` share the `"INTER"` label but select
    /// different prefetch engines, so the digest tags the discriminant
    /// and streams variant payloads explicitly.
    fn digest_into(&self, d: &mut Digest) {
        match *self {
            Engine::Baseline => d.write_tag(0),
            Engine::Intra => d.write_tag(1),
            Engine::Inter => d.write_tag(2),
            Engine::InterAtDistance(dist) => {
                d.write_tag(3);
                d.write_u32(dist);
            }
            Engine::Mta => d.write_tag(4),
            Engine::Nlp => d.write_tag(5),
            Engine::Lap => d.write_tag(6),
            Engine::Orch => d.write_tag(7),
            Engine::Caps => d.write_tag(8),
            Engine::CapsNoWakeup => d.write_tag(9),
            Engine::CapsOnLrr => d.write_tag(10),
            Engine::CapsOnTlv => d.write_tag(11),
            Engine::CapsOnPasGto => d.write_tag(12),
        }
    }
}

/// Keep a reference to the concrete CAP type so the public API surfaces
/// it (diagnostics in examples construct it directly).
pub type Cap = CtaAwarePrefetcher;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_order_matches_paper_legend() {
        let labels: Vec<_> = Engine::FIGURE10.iter().map(|e| e.label()).collect();
        assert_eq!(
            labels,
            vec!["INTRA", "INTER", "MTA", "NLP", "LAP", "ORCH", "CAPS"]
        );
    }

    #[test]
    fn schedulers_match_definitions() {
        assert_eq!(Engine::Baseline.scheduler(), SchedulerKind::TwoLevel);
        assert_eq!(Engine::Caps.scheduler(), SchedulerKind::Pas);
        assert_eq!(Engine::CapsNoWakeup.scheduler(), SchedulerKind::PasNoWakeup);
        assert_eq!(Engine::Orch.scheduler(), SchedulerKind::OrchGrouped);
        assert_eq!(Engine::CapsOnLrr.scheduler(), SchedulerKind::Lrr);
        assert_eq!(Engine::Lap.scheduler(), SchedulerKind::TwoLevel);
    }

    #[test]
    fn factories_build() {
        for e in [
            Engine::Baseline,
            Engine::Caps,
            Engine::InterAtDistance(3),
            Engine::Orch,
        ] {
            let f = e.factory();
            let _ = f(0);
        }
    }

    #[test]
    fn engine_digest_distinguishes_same_label_variants() {
        use caps_gpu_sim::digest::fingerprint;
        assert_eq!(Engine::Inter.label(), Engine::InterAtDistance(3).label());
        assert_ne!(
            fingerprint(&Engine::Inter),
            fingerprint(&Engine::InterAtDistance(3))
        );
        assert_ne!(
            fingerprint(&Engine::InterAtDistance(3)),
            fingerprint(&Engine::InterAtDistance(4))
        );
        assert_eq!(fingerprint(&Engine::Caps), fingerprint(&Engine::Caps));
    }

    #[test]
    fn cap_table_flag() {
        assert!(Engine::Caps.uses_cap_tables());
        assert!(Engine::CapsOnLrr.uses_cap_tables());
        assert!(!Engine::Lap.uses_cap_tables());
    }
}
