//! Parameter-sensitivity sweeps.
//!
//! The paper fixes Table III and sweeps only the concurrent-CTA count
//! (Fig. 11). For a library release the natural follow-up questions are
//! "how sensitive is the CAPS benefit to the cache budget, the MSHR
//! count, the ready-queue size, the prefetch-queue depth?" — this module
//! answers them with one generic sweep primitive.

use caps_gpu_sim::config::GpuConfig;
use caps_workloads::{Scale, Workload};

use crate::engine::Engine;
use crate::farm::{Farm, FarmJob, FarmStats, PruneSet};
use crate::harness::{default_threads, RunSpec};
use crate::report::mean;

/// One swept parameter point: label plus the config it produces.
pub struct SweepPoint {
    /// Axis label, e.g. `"l1=32KB"`.
    pub label: String,
    /// The configuration at this point.
    pub config: GpuConfig,
}

/// The result of a sweep: per point, the mean baseline-normalized IPC of
/// the swept engine across the workload set.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Which knob was swept.
    pub axis: String,
    /// Point labels.
    pub labels: Vec<String>,
    /// Mean CAPS speedup at each point (engine IPC / baseline IPC,
    /// both at that point's configuration).
    pub speedup: Vec<f64>,
}

/// Run `engine` and the baseline at every point, over `workloads`, on
/// the process-wide farm (environment-configured cache, default worker
/// count).
pub fn sweep(
    axis: &str,
    points: Vec<SweepPoint>,
    workloads: &[Workload],
    engine: Engine,
    scale: Scale,
) -> SweepResult {
    sweep_on(&Farm::global(default_threads()), axis, points, workloads, engine, scale).0
}

/// [`sweep`] on an explicit farm, also returning the batch statistics
/// (simulations run, cache hits, points deduplicated). Duplicate sweep
/// points — overlapping axes that both contain the base configuration,
/// or caller-supplied repeats — collapse to one simulation each via the
/// farm's content-keyed submission dedup.
pub fn sweep_on(
    farm: &Farm,
    axis: &str,
    points: Vec<SweepPoint>,
    workloads: &[Workload],
    engine: Engine,
    scale: Scale,
) -> (SweepResult, FarmStats) {
    sweep_pruned(farm, axis, points, workloads, engine, scale, &PruneSet::new())
}

/// [`sweep_on`] against a [`PruneSet`] archive: any `(point, workload,
/// engine)` job whose content key appears in the archive is skipped
/// entirely. A point with *any* pruned job gets a `NaN` speedup and a
/// `"(pruned)"`-suffixed label — callers distinguish "measured here"
/// from "already covered elsewhere" without re-simulating the latter.
#[allow(clippy::too_many_arguments)]
pub fn sweep_pruned(
    farm: &Farm,
    axis: &str,
    points: Vec<SweepPoint>,
    workloads: &[Workload],
    engine: Engine,
    scale: Scale,
    prune: &PruneSet,
) -> (SweepResult, FarmStats) {
    let jobs = sweep_jobs(&points, workloads, engine, scale);
    let (recs, stats) = farm.run_pruned(&jobs, prune);
    let per_point = workloads.len() * 2;
    let mut speedup = Vec::new();
    let mut pruned_points = Vec::new();
    for (pi, _) in points.iter().enumerate() {
        let vals: Option<Vec<f64>> = (0..workloads.len())
            .map(|wi| {
                let base = recs[pi * per_point + wi * 2].as_ref()?.ipc();
                let eng = recs[pi * per_point + wi * 2 + 1].as_ref()?.ipc();
                Some(eng / base)
            })
            .collect();
        match vals {
            Some(vals) => {
                speedup.push(mean(&vals));
                pruned_points.push(false);
            }
            None => {
                speedup.push(f64::NAN);
                pruned_points.push(true);
            }
        }
    }
    let labels = points
        .into_iter()
        .zip(&pruned_points)
        .map(|(p, &was_pruned)| {
            if was_pruned {
                format!("{} (pruned)", p.label)
            } else {
                p.label
            }
        })
        .collect();
    let result = SweepResult {
        axis: axis.to_string(),
        labels,
        speedup,
    };
    (result, stats)
}

/// The farm jobs a sweep submits, in submission order: `points ×
/// workloads × [baseline, engine]`, point-major. Public so sweep
/// drivers can archive the batch's content keys ([`FarmJob::digest`])
/// and prune them from later invocations.
pub fn sweep_jobs(
    points: &[SweepPoint],
    workloads: &[Workload],
    engine: Engine,
    scale: Scale,
) -> Vec<FarmJob> {
    let mut jobs = Vec::new();
    for p in points {
        for &w in workloads {
            for e in [Engine::Baseline, engine] {
                let mut s = RunSpec::paper(w, e);
                s.scale = scale;
                s.base_config = p.config.clone();
                jobs.push(FarmJob::new(s));
            }
        }
    }
    jobs
}

/// The four standard sensitivity axes, centred on Table III.
pub fn standard_axes() -> Vec<(String, Vec<SweepPoint>)> {
    let base = GpuConfig::fermi_gtx480;
    let mut axes = Vec::new();

    let l1: Vec<SweepPoint> = [8u32, 16, 32, 64]
        .iter()
        .map(|&kb| {
            let mut c = base();
            c.l1d.size_bytes = kb * 1024;
            SweepPoint {
                label: format!("{kb}KB"),
                config: c,
            }
        })
        .collect();
    axes.push(("L1D size".to_string(), l1));

    let mshr: Vec<SweepPoint> = [8u32, 16, 32, 64]
        .iter()
        .map(|&n| {
            let mut c = base();
            c.l1d.mshr_entries = n;
            SweepPoint {
                label: format!("{n}"),
                config: c,
            }
        })
        .collect();
    axes.push(("L1 MSHR entries".to_string(), mshr));

    let rq: Vec<SweepPoint> = [4usize, 8, 16]
        .iter()
        .map(|&n| {
            let mut c = base();
            c.ready_queue_size = n;
            SweepPoint {
                label: format!("{n}"),
                config: c,
            }
        })
        .collect();
    axes.push(("ready-queue size".to_string(), rq));

    let pfq: Vec<SweepPoint> = [16usize, 64, 256]
        .iter()
        .map(|&n| {
            let mut c = base();
            c.prefetch_queue_depth = n;
            SweepPoint {
                label: format!("{n}"),
                config: c,
            }
        })
        .collect();
    axes.push(("prefetch-queue depth".to_string(), pfq));

    axes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_are_consistent() {
        let axes = standard_axes();
        assert_eq!(axes.len(), 4);
        for (_, points) in &axes {
            assert!(points.len() >= 3);
        }
        let (axis, points) = axes.into_iter().next().expect("non-empty");
        let r = sweep(&axis, points, &[Workload::Scn], Engine::Caps, Scale::Small);
        assert_eq!(r.labels.len(), 4);
        assert_eq!(r.speedup.len(), 4);
        assert!(
            r.speedup.iter().all(|&s| s > 0.3 && s < 3.0),
            "{:?}",
            r.speedup
        );
    }

    #[test]
    fn sweep_dedups_repeated_points() {
        use crate::cache::{CacheMode, ResultCache};
        let cache = ResultCache::new(CacheMode::Off, std::env::temp_dir().join("caps-sweep-unused"));
        let farm = Farm::new(&cache, 4);
        let base = GpuConfig::fermi_gtx480;
        // Two identical points plus one distinct, mimicking overlapping
        // axes that both contain the base configuration.
        let mut big = base();
        big.l1d.size_bytes = 64 * 1024;
        let points = vec![
            SweepPoint { label: "base".into(), config: base() },
            SweepPoint { label: "base-again".into(), config: base() },
            SweepPoint { label: "64KB".into(), config: big },
        ];
        let (r, stats) = sweep_on(
            &farm,
            "dup-axis",
            points,
            &[Workload::Scn],
            Engine::Caps,
            Scale::Small,
        );
        // 3 points × 1 workload × 2 engines = 6 jobs, but the repeated
        // point's pair dedups: only 4 simulations, deterministically.
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.sims, 4);
        assert_eq!(stats.dedup, 2);
        assert_eq!(stats.hits(), 0, "cache off: dedup alone collapses repeats");
        assert_eq!(r.speedup[0], r.speedup[1], "identical points, identical result");
    }

    #[test]
    fn pruned_sweep_marks_covered_points() {
        use crate::cache::{CacheMode, ResultCache};
        use crate::farm::FarmJob;
        let cache = ResultCache::new(CacheMode::Off, std::env::temp_dir().join("caps-sweep-unused"));
        let farm = Farm::new(&cache, 2);
        let base = GpuConfig::fermi_gtx480;
        let mut big = base();
        big.l1d.size_bytes = 64 * 1024;
        let points = vec![
            SweepPoint { label: "base".into(), config: base() },
            SweepPoint { label: "64KB".into(), config: big.clone() },
        ];
        // Archive covers the base point's baseline job: the whole point
        // is reported as pruned, the other point still measures.
        let mut prune = PruneSet::new();
        let mut covered = RunSpec::paper(Workload::Scn, Engine::Baseline);
        covered.scale = Scale::Small;
        covered.base_config = base();
        prune.insert(FarmJob::new(covered).digest());
        let (r, stats) = sweep_pruned(
            &farm,
            "axis",
            points,
            &[Workload::Scn],
            Engine::Caps,
            Scale::Small,
            &prune,
        );
        assert_eq!(stats.pruned, 1);
        assert_eq!(r.labels[0], "base (pruned)");
        assert!(r.speedup[0].is_nan());
        assert_eq!(r.labels[1], "64KB");
        assert!(r.speedup[1] > 0.0);
    }

    #[test]
    fn standard_axes_stay_valid_configs() {
        for (_, points) in standard_axes() {
            for p in points {
                p.config.validate();
            }
        }
    }
}
