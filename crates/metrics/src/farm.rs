//! The sweep farm: a work-stealing run service over whole simulations.
//!
//! Whole runs are embarrassingly parallel (and on this host parallelize
//! far better than intra-simulation threading), so the farm schedules at
//! run granularity: a batch of heterogeneous [`FarmJob`]s is drained by
//! a pool of workers stealing jobs off a shared atomic index, and every
//! job resolves through three tiers:
//!
//! 1. **Submission dedup** — jobs are keyed by [`job_digest`]; a job
//!    whose content key already appears earlier in the batch never
//!    reaches a worker. It attaches to the first occurrence and receives
//!    a clone of its record, so overlapping sweep axes that repeat a
//!    `(config, kernel, engine)` point cost one simulation, not N.
//!    Dedup is deterministic: it depends only on batch content, never on
//!    worker timing or cache mode.
//! 2. **Result cache** ([`ResultCache`]) — content-addressed lookups;
//!    hits stream back immediately without simulating.
//! 3. **Simulation** — [`run_one_with_opts`], after which the record is
//!    published to the cache.
//!
//! Results are collected over a channel on the submitting thread (no
//! per-slot locks) and returned index-aligned with the input batch;
//! [`Farm::run_streaming`] additionally delivers each `(index, record)`
//! to a callback the moment it completes, in completion order.
//!
//! [`run_matrix`](crate::harness::run_matrix) and
//! [`sweep`](crate::sweep::sweep) are thin clients of this module, so
//! every figure binary and the bench harness inherit caching and dedup
//! without code changes.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::cache::{job_digest, CacheTier, ResultCache};
use crate::harness::{run_one_with_opts, RunOpts, RunRecord, RunSpec};

/// A set of job content keys that have already been computed elsewhere
/// — a previous sweep's result archive, another machine's cache
/// directory — used to skip resubmitting those points entirely.
///
/// Unlike the result cache (which still *answers* for a hit), a pruned
/// job produces no record at all: the caller asked "run whatever this
/// archive doesn't already cover".
#[derive(Debug, Clone, Default)]
pub struct PruneSet {
    keys: HashSet<u128>,
}

impl PruneSet {
    /// An empty set (prunes nothing).
    pub fn new() -> Self {
        PruneSet::default()
    }

    /// Add one content key.
    pub fn insert(&mut self, key: u128) {
        self.keys.insert(key);
    }

    /// Whether `key` is covered by the archive.
    pub fn contains(&self, key: u128) -> bool {
        self.keys.contains(&key)
    }

    /// Number of keys loaded.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the set prunes nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Load keys from a results archive at `path`.
    ///
    /// * A **directory** is treated as a result-cache directory: every
    ///   `<32-hex-key>.json` file contributes its stem.
    /// * A **file** is scanned for quoted 32-hex-digit strings, which
    ///   covers both a bare JSON array of keys and any report carrying a
    ///   `"job_keys"` list (e.g. `BENCH_farm.json`), without needing a
    ///   full JSON parser.
    pub fn load(path: &Path) -> std::io::Result<PruneSet> {
        let mut set = PruneSet::new();
        if path.is_dir() {
            for entry in std::fs::read_dir(path)? {
                let p = entry?.path();
                if p.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                if let Some(key) = p
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(parse_hex_key)
                {
                    set.insert(key);
                }
            }
        } else {
            let text = std::fs::read_to_string(path)?;
            for piece in text.split('"').skip(1).step_by(2) {
                if let Some(key) = parse_hex_key(piece) {
                    set.insert(key);
                }
            }
        }
        Ok(set)
    }
}

/// `"<32 hex digits>"` → key; anything else → `None`.
fn parse_hex_key(s: &str) -> Option<u128> {
    if s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        u128::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

/// One unit of farm work: a spec plus per-run engine overrides.
#[derive(Debug, Clone)]
pub struct FarmJob {
    /// What to simulate.
    pub spec: RunSpec,
    /// Host-execution overrides (fast-forward, intra-sim threads, cycle
    /// ceiling). Only `max_cycles` participates in the content key.
    pub opts: RunOpts,
}

impl FarmJob {
    /// A job with default execution options.
    pub fn new(spec: RunSpec) -> Self {
        FarmJob {
            spec,
            opts: RunOpts::default(),
        }
    }

    /// A job with explicit execution options.
    pub fn with_opts(spec: RunSpec, opts: RunOpts) -> Self {
        FarmJob { spec, opts }
    }

    /// The job's content key (see [`job_digest`]).
    pub fn digest(&self) -> u128 {
        job_digest(&self.spec, &self.opts)
    }
}

/// What one farm batch did, job by job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that ran a fresh simulation.
    pub sims: u64,
    /// Jobs served from the in-memory cache index.
    pub mem_hits: u64,
    /// Jobs served from a cache file on disk.
    pub disk_hits: u64,
    /// Jobs that attached to an identical job earlier in the batch.
    pub dedup: u64,
    /// Jobs skipped because their content key appeared in a caller-
    /// supplied [`PruneSet`] archive (no record produced).
    pub pruned: u64,
}

impl FarmStats {
    /// Cache hits of either tier.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Jobs avoided entirely (cache hits + submission dedup).
    pub fn avoided(&self) -> u64 {
        self.hits() + self.dedup
    }

    /// Fraction of jobs served from the cache (0 when the batch was
    /// empty).
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.hits() as f64 / self.jobs as f64
        }
    }
}

/// A run service bound to a result cache and a worker count.
pub struct Farm<'c> {
    cache: &'c ResultCache,
    threads: usize,
}

impl<'c> Farm<'c> {
    /// A farm over an explicit cache. `threads` is clamped to
    /// `[1, unique batch size]` per call.
    pub fn new(cache: &'c ResultCache, threads: usize) -> Self {
        Farm { cache, threads }
    }

    /// A farm over the process-wide environment-configured cache.
    pub fn global(threads: usize) -> Farm<'static> {
        Farm::new(ResultCache::global(), threads)
    }

    /// The cache this farm resolves through.
    pub fn cache(&self) -> &ResultCache {
        self.cache
    }

    /// Execute a batch; results are index-aligned with `jobs` regardless
    /// of completion order.
    pub fn run(&self, jobs: &[FarmJob]) -> (Vec<RunRecord>, FarmStats) {
        self.run_streaming(jobs, |_, _| {})
    }

    /// Execute a batch, invoking `on_result(index, record)` on the
    /// calling thread as each job completes (completion order, not
    /// submission order; deduplicated copies arrive with their owner).
    /// Returns the index-aligned records plus the batch statistics.
    pub fn run_streaming(
        &self,
        jobs: &[FarmJob],
        on_result: impl FnMut(usize, &RunRecord),
    ) -> (Vec<RunRecord>, FarmStats) {
        let (results, stats) = self.run_inner(jobs, &PruneSet::default(), on_result);
        let records = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no record")))
            .collect();
        (records, stats)
    }

    /// Execute a batch, skipping every job whose content key appears in
    /// `prune` (an archive of already-computed points). Pruned slots
    /// come back as `None`; everything else behaves exactly like
    /// [`Farm::run`]. `stats.pruned` counts the skips.
    pub fn run_pruned(
        &self,
        jobs: &[FarmJob],
        prune: &PruneSet,
    ) -> (Vec<Option<RunRecord>>, FarmStats) {
        self.run_inner(jobs, prune, |_, _| {})
    }

    fn run_inner(
        &self,
        jobs: &[FarmJob],
        prune: &PruneSet,
        mut on_result: impl FnMut(usize, &RunRecord),
    ) -> (Vec<Option<RunRecord>>, FarmStats) {
        if jobs.is_empty() {
            return (Vec::new(), FarmStats::default());
        }
        // Submission dedup: only the first job with a given content key
        // executes; later identical jobs attach to it as waiters. Keys
        // are cheap (hashing, no simulation) but not free (the kernel IR
        // is materialized), so each is computed once, up front. Pruned
        // keys never enter the dedup map at all: they own nothing, wait
        // on nothing, and produce no record.
        let mut first: HashMap<u128, usize> = HashMap::new();
        let mut owners: Vec<usize> = Vec::new();
        let mut waiters: Vec<Vec<usize>> = jobs.iter().map(|_| Vec::new()).collect();
        let mut pruned = 0u64;
        for (i, key) in jobs.iter().map(FarmJob::digest).enumerate() {
            if prune.contains(key) {
                pruned += 1;
                continue;
            }
            match first.entry(key) {
                Entry::Vacant(v) => {
                    v.insert(i);
                    owners.push(i);
                }
                Entry::Occupied(o) => waiters[*o.get()].push(i),
            }
        }
        let dedup = jobs.len() as u64 - owners.len() as u64 - pruned;
        if owners.is_empty() {
            let stats = FarmStats {
                jobs: jobs.len() as u64,
                pruned,
                dedup,
                ..FarmStats::default()
            };
            return (jobs.iter().map(|_| None).collect(), stats);
        }
        let keys: HashMap<usize, u128> = first.into_iter().map(|(k, i)| (i, k)).collect();

        let threads = self.threads.clamp(1, owners.len());
        let next = AtomicUsize::new(0);
        let sims = AtomicU64::new(0);
        let mem_hits = AtomicU64::new(0);
        let disk_hits = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunRecord)>();

        let mut results: Vec<Option<RunRecord>> = jobs.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let (next, keys, owners) = (&next, &keys, &owners);
                let (sims, mem_hits, disk_hits) = (&sims, &mem_hits, &disk_hits);
                scope.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= owners.len() {
                        break;
                    }
                    let i = owners[slot];
                    let key = keys[&i];
                    let rec = match self.cache.lookup_tiered(key) {
                        Some((rec, tier)) => {
                            match tier {
                                CacheTier::Memory => mem_hits.fetch_add(1, Ordering::Relaxed),
                                CacheTier::Disk => disk_hits.fetch_add(1, Ordering::Relaxed),
                            };
                            rec
                        }
                        None => {
                            let rec = run_one_with_opts(&jobs[i].spec, &jobs[i].opts);
                            sims.fetch_add(1, Ordering::Relaxed);
                            self.cache.insert(key, &rec);
                            rec
                        }
                    };
                    let _ = tx.send((i, rec));
                });
            }
            drop(tx);
            // Collector: the submitting thread owns the result slots, so
            // workers never contend on them (no per-slot locks) and the
            // streaming callback needs neither `Send` nor `Sync`.
            while let Ok((i, rec)) = rx.recv() {
                for &w in &waiters[i] {
                    on_result(w, &rec);
                    results[w] = Some(rec.clone());
                }
                on_result(i, &rec);
                results[i] = Some(rec);
            }
        });

        let stats = FarmStats {
            jobs: jobs.len() as u64,
            sims: sims.into_inner(),
            mem_hits: mem_hits.into_inner(),
            disk_hits: disk_hits.into_inner(),
            dedup,
            pruned,
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheMode;
    use crate::engine::Engine;
    use caps_workloads::Workload;

    fn off_cache() -> ResultCache {
        ResultCache::new(CacheMode::Off, std::env::temp_dir().join("caps-farm-unused"))
    }

    #[test]
    fn batch_results_are_input_aligned() {
        let cache = off_cache();
        let farm = Farm::new(&cache, 3);
        let jobs = vec![
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline)),
            FarmJob::new(RunSpec::small(Workload::Mm, Engine::Caps)),
        ];
        let (recs, stats) = farm.run(&jobs);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].workload, "JC1");
        assert_eq!(
            (recs[1].workload.as_str(), recs[1].engine.as_str()),
            ("MM", "CAPS")
        );
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.sims, 2);
        assert_eq!(stats.avoided(), 0);
    }

    #[test]
    fn identical_jobs_dedup_at_submission() {
        let cache = off_cache();
        let farm = Farm::new(&cache, 4);
        let job = FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline));
        let jobs = vec![
            job.clone(),
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Caps)),
            job.clone(),
            job,
        ];
        let (recs, stats) = farm.run(&jobs);
        // Deterministic regardless of worker timing or cache mode: the
        // three identical jobs collapse to one simulation.
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.sims, 2);
        assert_eq!(stats.dedup, 2);
        assert_eq!(stats.hits(), 0, "cache is off");
        assert_eq!(recs[2].stats, recs[0].stats);
        assert_eq!(recs[3].stats, recs[0].stats);
        assert_eq!(recs[1].engine, "CAPS");
    }

    #[test]
    fn streaming_delivers_every_completion() {
        let cache = off_cache();
        let farm = Farm::new(&cache, 2);
        let jobs = vec![
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline)),
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Caps)),
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline)),
        ];
        let mut seen = Vec::new();
        let (recs, _) = farm.run_streaming(&jobs, |i, rec| seen.push((i, rec.stats.cycles)));
        seen.sort_unstable();
        assert_eq!(seen.len(), 3, "dedup copies also stream");
        for (i, cycles) in seen {
            assert_eq!(cycles, recs[i].stats.cycles);
        }
    }

    #[test]
    fn pruned_jobs_are_skipped_without_records() {
        let cache = off_cache();
        let farm = Farm::new(&cache, 2);
        let jobs = vec![
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline)),
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Caps)),
            FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline)),
        ];
        let mut prune = PruneSet::new();
        prune.insert(jobs[0].digest());
        let (recs, stats) = farm.run_pruned(&jobs, &prune);
        // Both BASE jobs share the pruned key: neither runs, and the
        // duplicate counts as pruned, not dedup.
        assert!(recs[0].is_none() && recs[2].is_none());
        assert_eq!(recs[1].as_ref().map(|r| r.engine.as_str()), Some("CAPS"));
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.pruned, 2);
        assert_eq!(stats.dedup, 0);
        assert_eq!(stats.sims, 1);
    }

    #[test]
    fn fully_pruned_batch_runs_nothing() {
        let cache = off_cache();
        let farm = Farm::new(&cache, 4);
        let jobs = vec![FarmJob::new(RunSpec::small(Workload::Jc1, Engine::Baseline))];
        let mut prune = PruneSet::new();
        prune.insert(jobs[0].digest());
        let (recs, stats) = farm.run_pruned(&jobs, &prune);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].is_none());
        assert_eq!(stats.pruned, 1);
        assert_eq!(stats.sims, 0);
    }

    #[test]
    fn prune_set_loads_from_file_and_directory() {
        let dir = std::env::temp_dir().join(format!("caps-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key_a = 0x00112233445566778899aabbccddeeffu128;
        let key_b = 0xfeedfacecafebeef0123456789abcdefu128;

        // Directory form: result-cache layout, one <32-hex>.json per
        // record; stray files are ignored.
        std::fs::write(dir.join(format!("{key_a:032x}.json")), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignore me").unwrap();
        std::fs::write(dir.join("short.json"), "{}").unwrap();
        let set = PruneSet::load(&dir).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.contains(key_a) && !set.contains(key_b));

        // File form: any report carrying quoted 32-hex keys, e.g. a
        // farm summary with a job_keys array.
        let report = dir.join("BENCH_farm.json");
        std::fs::write(
            &report,
            format!(
                "{{\"pruned\": 0, \"job_keys\": [\"{key_a:032x}\", \"{key_b:032x}\"], \"note\": \"x\"}}"
            ),
        )
        .unwrap();
        let set = PruneSet::load(&report).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(key_a) && set.contains(key_b));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cache = off_cache();
        let (recs, stats) = Farm::new(&cache, 8).run(&[]);
        assert!(recs.is_empty());
        assert_eq!(stats, FarmStats::default());
    }
}
