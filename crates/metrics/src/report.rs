//! ASCII table/series rendering for the figure regenerators, plus the
//! mean helpers the paper uses (per-group arithmetic means of normalized
//! metrics).

use std::fmt::Write as _;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice (requires positive inputs).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(xs.iter().all(|&x| x > 0.0));
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A simple fixed-width table renderer for figure output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Format a float with 3 decimals (normalized metrics).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "IPC"]);
        t.row(vec!["CNV".into(), "1.270".into()]);
        t.row(vec!["LPS".into(), "1.090".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].contains("CNV"));
        assert!(lines[2].contains("1.270"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.0812), "8.1%");
    }
}
