//! Differential property test for event-horizon fast-forward.
//!
//! The simulator's run loop may jump over quiescent windows (cycles in
//! which no component can make progress) in a single hop. The contract
//! is strict: every [`caps_gpu_sim::stats::Stats`] field — and therefore
//! every derived metric and energy number — must be **bit-identical** to
//! naive cycle-by-cycle stepping, on every workload and engine.
//!
//! This suite runs the full workload suite at small scale under a
//! representative cross-section of engines and compares the two modes
//! field by field.

use caps_metrics::{run_one_with_fast_forward, Engine, RunSpec};
use caps_workloads::all_workloads;

fn assert_modes_agree(spec: &RunSpec) {
    let fast = run_one_with_fast_forward(spec, true);
    let naive = run_one_with_fast_forward(spec, false);
    assert_eq!(
        fast.stats, naive.stats,
        "stats diverged on {} / {}",
        fast.workload, fast.engine
    );
    assert_eq!(
        fast.energy.total_mj(),
        naive.energy.total_mj(),
        "energy diverged on {} / {}",
        fast.workload,
        fast.engine
    );
}

/// Every workload under the baseline (no prefetcher): exercises pure
/// scheduler/memory-system quiescence.
#[test]
fn fast_forward_matches_naive_on_all_workloads_baseline() {
    for w in all_workloads() {
        assert_modes_agree(&RunSpec::small(w, Engine::Baseline));
    }
}

/// Every workload under the full CAPS engine: exercises prefetch queues,
/// the prefetch virtual channels, and age-out deadlines.
#[test]
fn fast_forward_matches_naive_on_all_workloads_caps() {
    for w in all_workloads() {
        assert_modes_agree(&RunSpec::small(w, Engine::Caps));
    }
}

/// A cross-section of the remaining engines (alternative prefetchers and
/// schedulers) over a memory-bound and a compute-bound workload each.
#[test]
fn fast_forward_matches_naive_across_engines() {
    use caps_workloads::Workload;
    let engines = [
        Engine::Intra,
        Engine::Inter,
        Engine::Mta,
        Engine::Nlp,
        Engine::Lap,
        Engine::Orch,
        Engine::CapsNoWakeup,
        Engine::CapsOnLrr,
        Engine::CapsOnTlv,
        Engine::CapsOnPasGto,
    ];
    for engine in engines {
        assert_modes_agree(&RunSpec::small(Workload::Bfs, engine));
        assert_modes_agree(&RunSpec::small(Workload::Mm, engine));
    }
}
