//! The result cache's core contract: a record served from the cache —
//! from the in-memory index, or parsed back out of a JSON entry written
//! by a *different* cache instance — is bit-identical to a fresh
//! simulation of the same spec. Plus the mode lattice (`rw`/`ro`/`off`)
//! and the torn/mismatched-entry miss behaviour.

use caps_metrics::{
    job_digest, run_one, CacheMode, Engine, Farm, FarmJob, ResultCache, RunOpts, RunSpec,
};
use caps_workloads::Workload;

/// A unique throwaway cache directory per test (tests run in parallel
/// within one process).
fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("caps-farm-cache-{tag}-{}", std::process::id()))
}

/// Representative (workload, engine) pairs: the baseline scheduler, the
/// paper configuration, and a simple prefetcher on a second workload.
fn pairs() -> [(Workload, Engine); 3] {
    [
        (Workload::Scn, Engine::Baseline),
        (Workload::Scn, Engine::Caps),
        (Workload::Mrq, Engine::Nlp),
    ]
}

#[test]
fn cached_records_are_bit_identical_to_fresh_runs() {
    let dir = tmp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    for (w, e) in pairs() {
        let spec = RunSpec::small(w, e);
        let fresh = run_one(&spec);

        // Writer process stand-in: simulate once, persisting to disk.
        let writer = ResultCache::new(CacheMode::ReadWrite, &dir);
        let (recs, stats) = Farm::new(&writer, 2).run(&[FarmJob::new(spec.clone())]);
        assert_eq!(stats.sims, 1, "{w:?}/{e:?}: cold farm must simulate");
        assert_eq!(recs[0].stats, fresh.stats, "{w:?}/{e:?}: farm == direct run");

        // Reader process stand-in: a fresh instance with an empty index
        // must reconstruct the record from the JSON entry alone.
        let reader = ResultCache::new(CacheMode::ReadWrite, &dir);
        let (recs, stats) = Farm::new(&reader, 2).run(&[FarmJob::new(spec.clone())]);
        assert_eq!(stats.sims, 0, "{w:?}/{e:?}: warm farm must not simulate");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(
            recs[0].stats, fresh.stats,
            "{w:?}/{e:?}: disk round-trip must be bit-identical"
        );
        assert_eq!(recs[0].workload, fresh.workload);
        assert_eq!(recs[0].engine, fresh.engine);
        let de = (recs[0].energy.total_mj() - fresh.energy.total_mj()).abs();
        assert_eq!(de, 0.0, "{w:?}/{e:?}: energy floats round-trip exactly");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_mode_reads_but_never_writes() {
    let dir = tmp_dir("ro");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = RunSpec::small(Workload::Scn, Engine::Baseline);
    let key = job_digest(&spec, &RunOpts::default());

    let ro = ResultCache::new(CacheMode::ReadOnly, &dir);
    let (_, stats) = Farm::new(&ro, 1).run(&[FarmJob::new(spec.clone())]);
    assert_eq!(stats.sims, 1);
    assert!(!dir.exists(), "ro mode must not create entries");
    // ...but it does populate the in-process index.
    let (_, stats) = Farm::new(&ro, 1).run(&[FarmJob::new(spec.clone())]);
    assert_eq!((stats.sims, stats.mem_hits), (0, 1));

    // Seed the directory with a rw cache; a fresh ro instance reads it.
    let rw = ResultCache::new(CacheMode::ReadWrite, &dir);
    Farm::new(&rw, 1).run(&[FarmJob::new(spec.clone())]);
    assert!(rw.lookup(key).is_some());
    let ro2 = ResultCache::new(CacheMode::ReadOnly, &dir);
    let (_, stats) = Farm::new(&ro2, 1).run(&[FarmJob::new(spec)]);
    assert_eq!((stats.sims, stats.disk_hits), (0, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_mismatched_entries_read_as_misses() {
    let dir = tmp_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = RunSpec::small(Workload::Scn, Engine::Baseline);
    let key = job_digest(&spec, &RunOpts::default());
    let rw = ResultCache::new(CacheMode::ReadWrite, &dir);
    Farm::new(&rw, 1).run(&[FarmJob::new(spec.clone())]);
    let entry = dir.join(format!("{key:032x}.json"));
    assert!(entry.exists(), "entry file written");

    // Truncate mid-JSON: a torn write that bypassed the tmp+rename
    // protocol must read as a miss, not an error.
    let text = std::fs::read_to_string(&entry).unwrap();
    std::fs::write(&entry, &text[..text.len() / 2]).unwrap();
    let fresh = ResultCache::new(CacheMode::ReadWrite, &dir);
    assert!(fresh.lookup(key).is_none(), "torn entry is a miss");

    // An entry whose embedded key disagrees with its filename (renamed
    // by hand, or a digest-scheme change) is also a miss.
    let other = dir.join(format!("{:032x}.json", key ^ 1));
    std::fs::write(&other, &text).unwrap();
    let fresh = ResultCache::new(CacheMode::ReadWrite, &dir);
    assert!(fresh.lookup(key ^ 1).is_none(), "key mismatch is a miss");
    // And the farm recovers by re-simulating and re-writing.
    let (recs, stats) = Farm::new(&fresh, 1).run(&[FarmJob::new(spec.clone())]);
    assert_eq!(stats.sims, 1);
    assert_eq!(recs[0].stats, run_one(&spec).stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn off_mode_always_simulates() {
    let dir = tmp_dir("off");
    let _ = std::fs::remove_dir_all(&dir);
    let off = ResultCache::new(CacheMode::Off, &dir);
    let spec = RunSpec::small(Workload::Scn, Engine::Baseline);
    let jobs = [FarmJob::new(spec.clone()), FarmJob::new(spec)];
    let (_, s1) = Farm::new(&off, 1).run(&jobs);
    let (_, s2) = Farm::new(&off, 1).run(&jobs);
    // Within a batch, submission dedup still collapses the repeat; but
    // nothing carries across batches.
    assert_eq!((s1.sims, s1.dedup, s1.hits()), (1, 1, 0));
    assert_eq!((s2.sims, s2.dedup, s2.hits()), (1, 1, 0));
    assert!(!dir.exists());
}
