//! Differential property test for the phase-split parallel cycle
//! engine.
//!
//! The contract mirrors the fast-forward suite but along the other
//! axis: for any `sim_threads` value, every [`caps_gpu_sim::stats::Stats`]
//! field — cycles included — must be **bit-identical** to the
//! sequential engine (`sim_threads = 1`), on every workload and engine,
//! with fast-forward both on and off.
//!
//! Small-scale runs cover the full workload × {BASE, CAPS} grid to
//! completion; full-scale runs cover the same grid under a cycle cap so
//! the suite stays fast while still exercising the real 15-SM / 12-
//! partition / 6-channel geometry (and with it multi-partition channel
//! groups and non-uniform shard ranges).

use caps_metrics::{run_one_with_opts, Engine, RunOpts, RunSpec};
use caps_workloads::all_workloads;

/// Thread counts under test. The host may have fewer cores (CI runs on
/// 1–4); the engine must stay correct — and identical — regardless.
const THREADS: [usize; 3] = [1, 2, 4];

fn assert_thread_counts_agree(spec: &RunSpec, max_cycles: Option<u64>, ff_modes: &[bool]) {
    for &fast_forward in ff_modes {
        let mut reference = None;
        for threads in THREADS {
            let opts = RunOpts {
                fast_forward: Some(fast_forward),
                sim_threads: Some(threads),
                max_cycles,
            };
            let r = run_one_with_opts(spec, &opts);
            match &reference {
                None => reference = Some(r),
                Some(want) => {
                    assert_eq!(
                        r.stats, want.stats,
                        "stats diverged on {} / {} at sim_threads={} (fast_forward={})",
                        r.workload, r.engine, threads, fast_forward
                    );
                    assert_eq!(
                        r.energy.total_mj(),
                        want.energy.total_mj(),
                        "energy diverged on {} / {} at sim_threads={}",
                        r.workload,
                        r.engine,
                        threads
                    );
                }
            }
        }
    }
}

/// Full workload grid × {BASE, CAPS} at small scale, run to completion
/// under the production engine configuration (fast-forward on). The
/// naive-stepping axis is covered by the cross-section below and by the
/// fast-forward differential suite; crossing it with the full grid
/// would triple the wall-clock of the slowest CI job for no added
/// sharding coverage.
#[test]
fn parallel_engine_matches_sequential_small_scale_grid() {
    for w in all_workloads() {
        for engine in [Engine::Baseline, Engine::Caps] {
            assert_thread_counts_agree(&RunSpec::small(w, engine), None, &[true]);
        }
    }
}

/// Full workload grid × {BASE, CAPS} at full scale (real Fermi
/// geometry), cycle-capped: caps of this size land mid-flight in every
/// workload, so the comparison covers warm steady-state behavior —
/// in-flight interconnect traffic, populated MSHRs, active FR-FCFS
/// reordering — not just drained end states.
#[test]
fn parallel_engine_matches_sequential_full_scale_capped() {
    for w in all_workloads() {
        for engine in [Engine::Baseline, Engine::Caps] {
            assert_thread_counts_agree(&RunSpec::paper(w, engine), Some(60_000), &[true]);
        }
    }
}

/// Engine cross-section (alternative prefetchers and schedulers) on one
/// memory-bound and one compute-bound workload, with fast-forward both
/// on and off: prefetch virtual channels, scheduler variants, and the
/// naive-stepping engine must shard identically too.
#[test]
fn parallel_engine_matches_sequential_across_engines() {
    use caps_workloads::Workload;
    let engines = [
        Engine::Intra,
        Engine::Mta,
        Engine::Orch,
        Engine::CapsOnPasGto,
    ];
    for engine in engines {
        assert_thread_counts_agree(&RunSpec::small(Workload::Bfs, engine), None, &[true, false]);
        assert_thread_counts_agree(&RunSpec::small(Workload::Mm, engine), None, &[true, false]);
    }
}
