//! Differential property test for the phase-split parallel cycle
//! engine.
//!
//! The contract mirrors the fast-forward suite but along the other
//! axis: for any `sim_threads` value, every [`caps_gpu_sim::stats::Stats`]
//! field — cycles included — must be **bit-identical** to the
//! sequential engine (`sim_threads = 1`), on every workload and engine,
//! with fast-forward both on and off.
//!
//! Small-scale runs cover the full workload × {BASE, CAPS} grid to
//! completion; full-scale runs cover the same grid under a cycle cap so
//! the suite stays fast while still exercising the real 15-SM / 12-
//! partition / 6-channel geometry (and with it multi-partition channel
//! groups and non-uniform shard ranges).

use caps_metrics::{run_one_with_opts, Engine, RunOpts, RunSpec};
use caps_workloads::all_workloads;

/// Thread counts under test, including an odd count whose equal split
/// cannot be uniform. The host may have fewer cores (CI runs on 1–4);
/// the engine must stay correct — and identical — regardless.
const THREADS: [usize; 4] = [1, 2, 3, 4];

fn assert_thread_counts_agree(spec: &RunSpec, max_cycles: Option<u64>, ff_modes: &[bool]) {
    for &fast_forward in ff_modes {
        let mut reference = None;
        for threads in THREADS {
            let opts = RunOpts {
                fast_forward: Some(fast_forward),
                sim_threads: Some(threads),
                max_cycles,
                // Keep the requested thread count actually parallel:
                // the adaptive controller would otherwise fall back to
                // sequential on small hosts and the shards would never
                // run.
                adaptive: Some(false),
                ..RunOpts::default()
            };
            let r = run_one_with_opts(spec, &opts);
            match &reference {
                None => reference = Some(r),
                Some(want) => {
                    assert_eq!(
                        r.stats, want.stats,
                        "stats diverged on {} / {} at sim_threads={} (fast_forward={})",
                        r.workload, r.engine, threads, fast_forward
                    );
                    assert_eq!(
                        r.energy.total_mj(),
                        want.energy.total_mj(),
                        "energy diverged on {} / {} at sim_threads={}",
                        r.workload,
                        r.engine,
                        threads
                    );
                }
            }
        }
    }
}

/// Full workload grid × {BASE, CAPS} at small scale, run to completion
/// under the production engine configuration (fast-forward on). The
/// naive-stepping axis is covered by the cross-section below and by the
/// fast-forward differential suite; crossing it with the full grid
/// would triple the wall-clock of the slowest CI job for no added
/// sharding coverage.
#[test]
fn parallel_engine_matches_sequential_small_scale_grid() {
    for w in all_workloads() {
        for engine in [Engine::Baseline, Engine::Caps] {
            assert_thread_counts_agree(&RunSpec::small(w, engine), None, &[true]);
        }
    }
}

/// Full workload grid × {BASE, CAPS} at full scale (real Fermi
/// geometry), cycle-capped: caps of this size land mid-flight in every
/// workload, so the comparison covers warm steady-state behavior —
/// in-flight interconnect traffic, populated MSHRs, active FR-FCFS
/// reordering — not just drained end states.
#[test]
fn parallel_engine_matches_sequential_full_scale_capped() {
    for w in all_workloads() {
        for engine in [Engine::Baseline, Engine::Caps] {
            assert_thread_counts_agree(&RunSpec::paper(w, engine), Some(60_000), &[true]);
        }
    }
}

/// Engine cross-section (alternative prefetchers and schedulers) on one
/// memory-bound and one compute-bound workload, with fast-forward both
/// on and off: prefetch virtual channels, scheduler variants, and the
/// naive-stepping engine must shard identically too.
#[test]
fn parallel_engine_matches_sequential_across_engines() {
    use caps_workloads::Workload;
    let engines = [
        Engine::Intra,
        Engine::Mta,
        Engine::Orch,
        Engine::CapsOnPasGto,
    ];
    for engine in engines {
        assert_thread_counts_agree(&RunSpec::small(Workload::Bfs, engine), None, &[true, false]);
        assert_thread_counts_agree(&RunSpec::small(Workload::Mm, engine), None, &[true, false]);
    }
}

/// Shared sequential baseline for the shard-shape tests below.
fn seq_stats(spec: &RunSpec, max_cycles: Option<u64>) -> caps_metrics::RunRecord {
    run_one_with_opts(
        spec,
        &RunOpts {
            fast_forward: Some(true),
            sim_threads: Some(1),
            max_cycles,
            adaptive: Some(false),
            ..RunOpts::default()
        },
    )
}

/// Skewed explicit shard plans at full scale (15 SMs): one worker takes
/// a single SM while another takes most of the machine. Any contiguous
/// ascending plan preserves the serial staged-request order, so every
/// split must be bit-identical to sequential.
#[test]
fn skewed_shard_plans_match_sequential() {
    use caps_workloads::Workload;
    let spec = RunSpec::paper(Workload::Ste, Engine::Caps);
    let cap = Some(40_000);
    let want = seq_stats(&spec, cap);
    for plan in [vec![0, 1, 2, 15], vec![0, 13, 14, 15], vec![0, 5, 10, 15]] {
        let r = run_one_with_opts(
            &spec,
            &RunOpts {
                fast_forward: Some(true),
                sim_threads: Some(3),
                max_cycles: cap,
                adaptive: Some(false),
                shard_plan: Some(plan.clone()),
                // Keep the skew in place for the whole run.
                shard_rebalance_window: Some(1 << 40),
                ..RunOpts::default()
            },
        );
        assert_eq!(r.stats, want.stats, "plan {plan:?} diverged");
    }
}

/// A rebalance window far below the default forces many mid-run plan
/// recomputations from live load measurements; none of them may perturb
/// the statistics.
#[test]
fn frequent_rebalancing_matches_sequential() {
    use caps_workloads::Workload;
    let spec = RunSpec::small(Workload::Scn, Engine::Caps);
    let want = seq_stats(&spec, None);
    let r = run_one_with_opts(
        &spec,
        &RunOpts {
            fast_forward: Some(true),
            sim_threads: Some(4),
            max_cycles: None,
            adaptive: Some(false),
            shard_rebalance_window: Some(64),
            ..RunOpts::default()
        },
    );
    assert_eq!(r.stats, want.stats);
}

/// Worker pinning is a host-scheduling concern only: with pinning
/// explicitly on and explicitly off, statistics are identical.
#[test]
fn pinning_choice_matches_sequential() {
    use caps_workloads::Workload;
    let spec = RunSpec::small(Workload::Hst, Engine::Baseline);
    let want = seq_stats(&spec, None);
    for pin in [false, true] {
        let r = run_one_with_opts(
            &spec,
            &RunOpts {
                fast_forward: Some(true),
                sim_threads: Some(2),
                max_cycles: None,
                adaptive: Some(false),
                pin: Some(pin),
                ..RunOpts::default()
            },
        );
        assert_eq!(r.stats, want.stats, "pin={pin} diverged");
    }
}

/// The adaptive controller may switch between the sequential and
/// parallel engines mid-run on measured timings; whatever nondeterministic
/// schedule of switches the host produces, the statistics must not move.
#[test]
fn adaptive_engine_selection_matches_sequential() {
    use caps_workloads::Workload;
    let spec = RunSpec::small(Workload::Fft, Engine::Caps);
    let want = seq_stats(&spec, None);
    let r = run_one_with_opts(
        &spec,
        &RunOpts {
            fast_forward: Some(true),
            sim_threads: Some(4),
            max_cycles: None,
            adaptive: Some(true),
            ..RunOpts::default()
        },
    );
    assert_eq!(r.stats, want.stats);
}
