//! Property tests for the sweep-farm content keys.
//!
//! The cache is only sound if [`caps_metrics::job_digest`] is a faithful
//! function of run identity: equal specs must produce equal keys (or
//! repeats re-simulate and the cache is useless), and *any* single-field
//! change — a `GpuConfig` knob, the engine, the scale, a kernel-IR
//! instruction — must change the key (or a sweep silently serves stale
//! results for a different configuration).

use caps_gpu_sim::config::{GpuConfig, SchedulerKind};
use caps_gpu_sim::digest::fingerprint;
use caps_gpu_sim::isa::{AddrPattern, AffinePattern, CtaTerm, ProgramBuilder};
use caps_gpu_sim::kernel::Kernel;
use caps_metrics::{job_digest, Engine, RunOpts, RunSpec};
use caps_workloads::{all_workloads, Scale};
use proptest::prelude::*;

/// A named single-field perturbation (`bump` is a small positive
/// delta).
type Mutator = (&'static str, fn(&mut GpuConfig, u32));

/// One mutator per digested `GpuConfig` field (nested structs
/// included).
fn config_mutators() -> Vec<Mutator> {
    vec![
        ("num_sms", |c, b| c.num_sms += b as usize),
        ("simt_width", |c, b| c.simt_width += b),
        ("max_warps_per_sm", |c, b| c.max_warps_per_sm += b as usize),
        ("max_ctas_per_sm", |c, b| c.max_ctas_per_sm += b as usize),
        ("scheduler", |c, _| {
            c.scheduler = if c.scheduler == SchedulerKind::Lrr {
                SchedulerKind::Gto
            } else {
                SchedulerKind::Lrr
            }
        }),
        ("ready_queue_size", |c, b| c.ready_queue_size += b as usize),
        ("l1d.size_bytes", |c, b| c.l1d.size_bytes += b * 1024),
        ("l1d.line_size", |c, b| c.l1d.line_size += b),
        ("l1d.assoc", |c, b| c.l1d.assoc += b),
        ("l1d.mshr_entries", |c, b| c.l1d.mshr_entries += b),
        ("l1d.mshr_merge", |c, b| c.l1d.mshr_merge += b),
        ("l1d.hit_latency", |c, b| c.l1d.hit_latency += b),
        ("l2.size_bytes", |c, b| c.l2.size_bytes += b * 1024),
        ("l2.line_size", |c, b| c.l2.line_size += b),
        ("l2.assoc", |c, b| c.l2.assoc += b),
        ("l2.mshr_entries", |c, b| c.l2.mshr_entries += b),
        ("l2.mshr_merge", |c, b| c.l2.mshr_merge += b),
        ("l2.hit_latency", |c, b| c.l2.hit_latency += b),
        ("num_partitions", |c, b| c.num_partitions += b as usize),
        ("num_dram_channels", |c, b| c.num_dram_channels += b as usize),
        ("dram_banks", |c, b| c.dram_banks += b as usize),
        ("dram_queue_entries", |c, b| c.dram_queue_entries += b as usize),
        ("dram_timing.t_cl", |c, b| c.dram_timing.t_cl += b),
        ("dram_timing.t_rp", |c, b| c.dram_timing.t_rp += b),
        ("dram_timing.t_rc", |c, b| c.dram_timing.t_rc += b),
        ("dram_timing.t_ras", |c, b| c.dram_timing.t_ras += b),
        ("dram_timing.t_rcd", |c, b| c.dram_timing.t_rcd += b),
        ("dram_timing.t_rrd", |c, b| c.dram_timing.t_rrd += b),
        ("dram_timing.t_cdlr", |c, b| c.dram_timing.t_cdlr += b),
        ("dram_timing.t_wr", |c, b| c.dram_timing.t_wr += b),
        ("dram_timing.t_burst", |c, b| c.dram_timing.t_burst += b),
        ("core_clock_mhz", |c, b| c.core_clock_mhz += b),
        ("dram_clock_mhz", |c, b| c.dram_clock_mhz += b),
        ("icnt_latency", |c, b| c.icnt_latency += b),
        ("icnt_bandwidth", |c, b| c.icnt_bandwidth += b),
        ("icnt_queue_depth", |c, b| c.icnt_queue_depth += b as usize),
        ("issue_width", |c, b| c.issue_width += b),
        ("ldst_queue_depth", |c, b| c.ldst_queue_depth += b as usize),
        ("prefetch_queue_depth", |c, b| c.prefetch_queue_depth += b as usize),
        ("prefetch_issue_per_cycle", |c, b| c.prefetch_issue_per_cycle += b),
        ("prefetch_max_age", |c, b| c.prefetch_max_age += b),
    ]
}

/// Every single-field flip changes the key, and no two flips collide
/// with each other (exhaustive, not sampled: a missing field in the
/// digest impl fails here by name).
#[test]
fn every_config_field_is_key_sensitive() {
    let spec = RunSpec::small(all_workloads()[0], Engine::Caps);
    let opts = RunOpts::default();
    let base = job_digest(&spec, &opts);
    let mut seen = vec![("<base>", base)];
    for (name, mutate) in config_mutators() {
        let mut s = spec.clone();
        mutate(&mut s.base_config, 1);
        let key = job_digest(&s, &opts);
        for (other, k) in &seen {
            assert_ne!(key, *k, "flipping {name} collides with {other}");
        }
        seen.push((name, key));
    }
}

/// A kernel that differs from `base` in exactly one instruction's
/// parameter must fingerprint differently.
fn linear_kernel(ops: &[(u32, u64)], flip: Option<(usize, u64)>) -> Kernel {
    let mut b = ProgramBuilder::new();
    for (i, &(alu_cycles, ld_base)) in ops.iter().enumerate() {
        let ld_base = match flip {
            Some((fi, delta)) if fi == i => ld_base + delta,
            _ => ld_base,
        };
        b = b.alu(alu_cycles).ld(AddrPattern::Affine(AffinePattern::dense(
            ld_base,
            CtaTerm::Linear { pitch: 4096 },
        )));
    }
    Kernel::new("prop", (4, 1), 64, b.wait().build())
}

proptest! {
    /// Structurally equal specs always produce equal keys, for every
    /// workload, engine pairing, and scale.
    #[test]
    fn equal_specs_produce_equal_keys(
        wi in 0usize..16,
        ei in 0usize..4,
        small in proptest::bool::ANY,
        ceiling in proptest::bool::ANY,
    ) {
        let engines = [Engine::Baseline, Engine::Caps, Engine::Orch, Engine::InterAtDistance(4)];
        let w = all_workloads()[wi % all_workloads().len()];
        let mut spec = RunSpec::paper(w, engines[ei]);
        if small {
            spec.scale = Scale::Small;
        }
        let opts = RunOpts {
            max_cycles: if ceiling { Some(123_456) } else { None },
            ..RunOpts::default()
        };
        prop_assert_eq!(job_digest(&spec, &opts), job_digest(&spec.clone(), &opts.clone()));
    }

    /// Any random single-field perturbation of the config changes the
    /// key (sampled companion to the exhaustive flip test).
    #[test]
    fn random_field_flip_changes_the_key(
        field in 0usize..42,
        bump in 1u32..17,
        wi in 0usize..16,
    ) {
        let muts = config_mutators();
        prop_assume!(field < muts.len());
        let spec = RunSpec::small(all_workloads()[wi % all_workloads().len()], Engine::Caps);
        let mut flipped = spec.clone();
        (muts[field].1)(&mut flipped.base_config, bump);
        let opts = RunOpts::default();
        prop_assert_ne!(job_digest(&spec, &opts), job_digest(&flipped, &opts));
    }

    /// Flipping one instruction's operand anywhere in a program changes
    /// the kernel fingerprint; identical rebuilds do not.
    #[test]
    fn kernel_ir_is_fingerprint_sensitive(
        n_ops in 1usize..12,
        flip_at in 0usize..12,
        delta in 1u64..1024,
        seed in 0u64..1 << 32,
    ) {
        let ops: Vec<(u32, u64)> = (0..n_ops)
            .map(|i| {
                let r = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i as u32);
                (1 + (r % 7) as u32, (r >> 8) % (1 << 30))
            })
            .collect();
        let base = linear_kernel(&ops, None);
        prop_assert_eq!(fingerprint(&base), fingerprint(&linear_kernel(&ops, None)));
        let flipped = linear_kernel(&ops, Some((flip_at % n_ops, delta * 4)));
        prop_assert_ne!(fingerprint(&base), fingerprint(&flipped));
    }
}
