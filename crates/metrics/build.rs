//! Build-time source fingerprint for the sweep-farm result cache.
//!
//! Cached `RunRecord`s are only valid for the simulator build that
//! produced them: a change anywhere in the simulation stack (gpu-sim,
//! the CAP implementation, the baseline prefetchers, the workload IR, or
//! the metrics/energy layer itself) can change results without changing
//! any `GpuConfig` field, so no structural digest can catch it. This
//! script folds every `.rs` source of those crates into an FNV-1a
//! fingerprint and bakes it into the binary as `CAPS_SIM_FINGERPRINT`;
//! the cache salts every content key with it, so entries written by a
//! different build simply never hit — no manual version bump to forget.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose source can influence a run's statistics or energy.
const SIM_CRATES: &[&str] = &["gpu-sim", "core", "prefetchers", "workloads", "metrics"];

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").expect("CARGO_MANIFEST_DIR");
    let crates_root = Path::new(&manifest).parent().expect("crates/").to_path_buf();

    let mut files = Vec::new();
    for krate in SIM_CRATES {
        let src = crates_root.join(krate).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        collect(&src, &mut files);
    }
    files.sort();

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for f in &files {
        // Hash the path relative to crates/ so out-of-tree checkouts of
        // identical source agree on the fingerprint.
        let rel = f.strip_prefix(&crates_root).unwrap_or(f);
        absorb(rel.to_string_lossy().as_bytes());
        absorb(&[0]);
        absorb(&fs::read(f).unwrap_or_default());
        println!("cargo:rerun-if-changed={}", f.display());
    }
    println!("cargo:rustc-env=CAPS_SIM_FINGERPRINT={h:016x}");
}
