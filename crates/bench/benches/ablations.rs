//! Ablation benches for the design choices DESIGN.md calls out: the
//! misprediction threshold, the table sizes/replacement policy, the
//! scheduler pairing, and the eager wake-up. Criterion times the runs
//! (results themselves are deterministic per configuration).

use caps_core::{caps_factory_with, CapConfig};
use caps_gpu_sim::gpu::{Gpu, DEFAULT_MAX_CYCLES};
use caps_metrics::{run_one, Engine, RunSpec};
use caps_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_cap_config(cfg: CapConfig) -> caps_gpu_sim::stats::Stats {
    let kernel = Workload::Jc1.kernel(Scale::Small);
    let gcfg = caps_core::caps_config(&caps_gpu_sim::config::GpuConfig::fermi_gtx480());
    let factory = caps_factory_with(cfg);
    Gpu::new(gcfg, kernel, &*factory).run_launches(1, DEFAULT_MAX_CYCLES)
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Misprediction-threshold sweep (paper default 128).
    for threshold in [2u8, 128] {
        g.bench_function(format!("mispredict_threshold/{threshold}"), |b| {
            b.iter(|| {
                run_cap_config(CapConfig {
                    mispredict_threshold: threshold,
                    ..CapConfig::default()
                })
            })
        });
    }

    // PerCTA entry-count sweep (paper default 4).
    for entries in [2usize, 4, 8] {
        g.bench_function(format!("per_cta_entries/{entries}"), |b| {
            b.iter(|| {
                run_cap_config(CapConfig {
                    per_cta_entries: entries,
                    ..CapConfig::default()
                })
            })
        });
    }

    // Replacement policy: pinning (default) vs. the paper's LRU text.
    for (name, lru) in [("pinned", false), ("lru", true)] {
        g.bench_function(format!("table_replacement/{name}"), |b| {
            b.iter(|| {
                run_cap_config(CapConfig {
                    lru_replacement: lru,
                    ..CapConfig::default()
                })
            })
        });
    }

    // Scheduler pairing for the CAP engine (Fig. 14b as an ablation).
    for (name, engine) in [
        ("lrr", Engine::CapsOnLrr),
        ("tlv", Engine::CapsOnTlv),
        ("pas", Engine::Caps),
        ("pas_no_wakeup", Engine::CapsNoWakeup),
    ] {
        g.bench_function(format!("cap_scheduler/{name}"), |b| {
            b.iter(|| run_one(&RunSpec::small(Workload::Jc1, engine)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
