//! Component microbenchmarks: the hot structures on the simulator's
//! per-cycle path (cache, MSHR, coalescer, CAP tables, scheduler).

use caps_core::{CapConfig, CtaAwarePrefetcher};
use caps_gpu_sim::cache::Cache;
use caps_gpu_sim::coalescer::coalesce;
use caps_gpu_sim::config::GpuConfig;
use caps_gpu_sim::isa::{AddrPattern, AffinePattern, CtaTerm};
use caps_gpu_sim::mshr::{MshrFile, Waiter};
use caps_gpu_sim::prefetch::{DemandObservation, Prefetcher};
use caps_gpu_sim::sched::{TwoLevelScheduler, WarpScheduler};
use caps_gpu_sim::types::CtaCoord;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::fermi_gtx480();
    c.bench_function("cache/l1_access_fill_cycle", |b| {
        let mut cache = Cache::new(cfg.l1d);
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 128) % (1 << 20);
            if matches!(
                cache.access(black_box(addr)),
                caps_gpu_sim::cache::Lookup::Miss
            ) {
                cache.fill(addr, None);
            }
        })
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("mshr/alloc_complete", |b| {
        let mut m = MshrFile::new(32, 8);
        let mut line = 0u64;
        let mut live: Vec<u64> = Vec::new();
        b.iter(|| {
            line = (line + 128) % (1 << 16);
            if m.free() == 0 {
                let victim = live.remove(0);
                m.complete(black_box(victim));
            }
            if !m.contains(line) {
                live.push(line);
            }
            let _ = m.demand_miss(line, Waiter { warp: 0 });
        })
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let dense = AddrPattern::Affine(AffinePattern::dense(0, CtaTerm::Linear { pitch: 4096 }));
    let divergent = AddrPattern::Affine(AffinePattern {
        base: 0,
        cta_term: CtaTerm::Linear { pitch: 4096 },
        warp_stride: 0,
        lane_stride: 128,
        iter_stride: 0,
    });
    let cta = CtaCoord::from_linear(7, 16);
    let mut out = Vec::new();
    c.bench_function("coalescer/dense_warp", |b| {
        b.iter(|| coalesce(black_box(&dense), cta, 3, 0, 32, 128, &mut out))
    });
    c.bench_function("coalescer/divergent_warp", |b| {
        b.iter(|| coalesce(black_box(&divergent), cta, 3, 0, 32, 128, &mut out))
    });
}

fn bench_cap_tables(c: &mut Criterion) {
    c.bench_function("cap/on_demand_trailing_verify", |b| {
        let mut cap = CtaAwarePrefetcher::with_config(CapConfig::default());
        let cta = CtaCoord::from_linear(0, 16);
        cap.on_cta_launch(0, cta);
        let mut out = Vec::new();
        // Register lead + stride once.
        for (w, a) in [(0u32, 0x1000u64), (1, 0x1200)] {
            let lines = [a];
            let obs = DemandObservation {
                cycle: 0,
                pc: 8,
                cta_slot: 0,
                cta,
                warp_in_cta: w,
                warp_slot: w as usize,
                warps_per_cta: 8,
                lines: &lines,
                is_affine: true,
                iter: 0,
            };
            cap.on_demand(&obs, &mut out);
        }
        let mut w = 2u32;
        b.iter(|| {
            w = 2 + (w + 1) % 6;
            let lines = [0x1000 + 0x200 * w as u64];
            let obs = DemandObservation {
                cycle: 0,
                pc: 8,
                cta_slot: 0,
                cta,
                warp_in_cta: w,
                warp_slot: w as usize,
                warps_per_cta: 8,
                lines: &lines,
                is_affine: true,
                iter: 0,
            };
            out.clear();
            cap.on_demand(black_box(&obs), &mut out);
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("sched/two_level_pick_demote_cycle", |b| {
        let mut s = TwoLevelScheduler::new(8, true, false);
        for w in 0..48 {
            s.on_launch(w, w % 8 == 0, (w % 2) as u8);
        }
        let mut i = 0usize;
        b.iter(|| {
            let mut any = |_w: usize| true;
            if let Some(w) = s.pick(0, &mut any) {
                if i.is_multiple_of(3) {
                    s.on_long_latency(w);
                    s.on_ready_again(w);
                }
            }
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_mshr,
    bench_coalescer,
    bench_cap_tables,
    bench_scheduler
);
criterion_main!(benches);
