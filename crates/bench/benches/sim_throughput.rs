//! Simulator throughput: wall-clock cost of whole-GPU simulation at
//! reduced scale, per engine. (Simulated-cycle results are deterministic;
//! this measures the *simulator*, not the GPU.)
//!
//! The `fastforward` group pits naive per-cycle stepping against
//! event-horizon fast-forward on the memory-bound workloads where idle
//! windows dominate. For paper-scale numbers and the exported
//! `BENCH_throughput.json`, use
//! `cargo run --release -p caps-bench --bin run -- --bench-throughput`.

use caps_metrics::{run_one, run_one_with_fast_forward, Engine, RunSpec};
use caps_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, engine) in [
        ("baseline", Engine::Baseline),
        ("caps", Engine::Caps),
        ("inter", Engine::Inter),
    ] {
        g.bench_function(format!("mm_small/{name}"), |b| {
            b.iter(|| run_one(&RunSpec::small(Workload::Mm, engine)))
        });
    }
    g.bench_function("jc1_small/caps", |b| {
        b.iter(|| run_one(&RunSpec::small(Workload::Jc1, Engine::Caps)))
    });
    g.finish();

    let mut g = c.benchmark_group("fastforward");
    g.sample_size(10);
    for (name, workload) in [
        ("bfs", Workload::Bfs),
        ("mrq", Workload::Mrq),
        ("scn", Workload::Scn),
    ] {
        let spec = RunSpec::small(workload, Engine::Baseline);
        g.bench_function(format!("{name}_small/naive"), |b| {
            b.iter(|| run_one_with_fast_forward(&spec, false))
        });
        g.bench_function(format!("{name}_small/fast"), |b| {
            b.iter(|| run_one_with_fast_forward(&spec, true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
