//! Simulator throughput: wall-clock cost of whole-GPU simulation at
//! reduced scale, per engine. (Simulated-cycle results are deterministic;
//! this measures the *simulator*, not the GPU.)

use caps_metrics::{run_one, Engine, RunSpec};
use caps_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, engine) in [
        ("baseline", Engine::Baseline),
        ("caps", Engine::Caps),
        ("inter", Engine::Inter),
    ] {
        g.bench_function(format!("mm_small/{name}"), |b| {
            b.iter(|| run_one(&RunSpec::small(Workload::Mm, engine)))
        });
    }
    g.bench_function("jc1_small/caps", |b| {
        b.iter(|| run_one(&RunSpec::small(Workload::Jc1, Engine::Caps)))
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
