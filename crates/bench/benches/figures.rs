//! Figure-harness benches: times the regeneration machinery of each
//! table/figure at reduced scale (the full-scale numbers are produced by
//! the `fig*` binaries; see EXPERIMENTS.md).

use caps_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_small");
    g.sample_size(10);
    let wl = [Workload::Jc1, Workload::Bfs];
    g.bench_function("fig01_distance_sweep", |b| {
        b.iter(|| caps_bench::fig01::compute(Scale::Small))
    });
    g.bench_function("fig04_static_analysis", |b| {
        b.iter(caps_bench::fig04::compute)
    });
    g.bench_function("fig05_premise_demo", |b| b.iter(caps_bench::fig05::compute));
    g.bench_function("fig10_ipc_matrix", |b| {
        b.iter(|| caps_bench::fig10::compute_for(&wl, Scale::Small))
    });
    g.bench_function("fig11_cta_sweep", |b| {
        b.iter(|| caps_bench::fig11::compute_for(&[Workload::Jc1], Scale::Small))
    });
    g.bench_function("fig12_coverage_accuracy", |b| {
        b.iter(|| caps_bench::fig12::compute_for(&wl, Scale::Small))
    });
    g.bench_function("fig13_bandwidth", |b| {
        b.iter(|| caps_bench::fig13::compute_for(&wl, Scale::Small))
    });
    g.bench_function("fig14_timeliness", |b| {
        b.iter(|| caps_bench::fig14::compute_for(&[Workload::Jc1], Scale::Small))
    });
    g.bench_function("fig15_energy", |b| {
        b.iter(|| caps_bench::fig15::compute_for(&wl, Scale::Small))
    });
    g.bench_function("tables_render", |b| {
        b.iter(|| {
            (
                caps_bench::tables::render_tables_1_2(),
                caps_bench::tables::render_table_3(),
                caps_bench::tables::render_table_4(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
