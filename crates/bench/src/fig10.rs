//! Figure 10 — normalized IPC of the seven prefetcher configurations
//! over the two-level-scheduler baseline, per benchmark plus the
//! regular / irregular / overall means.

use caps_metrics::{mean, Engine, Table};
use caps_workloads::{Scale, Workload};

use crate::run_grid;

/// One benchmark's normalized-IPC row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark abbreviation.
    pub workload: String,
    /// Whether the benchmark is in the irregular group.
    pub irregular: bool,
    /// Normalized IPC per engine, in [`Engine::FIGURE10`] order.
    pub normalized: Vec<f64>,
}

/// The full figure: per-benchmark rows plus the three mean rows.
#[derive(Debug, Clone)]
pub struct Figure10 {
    /// Engine labels (column headers).
    pub engines: Vec<&'static str>,
    /// Per-benchmark rows in paper order.
    pub rows: Vec<Row>,
    /// Mean over the 12 regular benchmarks.
    pub mean_regular: Vec<f64>,
    /// Mean over the 4 irregular benchmarks.
    pub mean_irregular: Vec<f64>,
    /// Mean over all 16.
    pub mean_all: Vec<f64>,
}

/// Run the full evaluation matrix and normalize.
pub fn compute(scale: Scale) -> Figure10 {
    compute_for(&crate::workloads(), scale)
}

/// Matrix over an explicit workload list (tests use a subset).
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure10 {
    let engines = crate::engines_with_baseline();
    let recs = run_grid(workloads, &engines, scale);
    let per = engines.len();
    let mut rows = Vec::new();
    for (i, &w) in workloads.iter().enumerate() {
        let base_ipc = recs[i * per].ipc();
        let normalized = (1..per)
            .map(|j| recs[i * per + j].ipc() / base_ipc)
            .collect();
        rows.push(Row {
            workload: w.abbr().to_string(),
            irregular: w.info().irregular,
            normalized,
        });
    }
    let col =
        |rows: &[&Row], j: usize| mean(&rows.iter().map(|r| r.normalized[j]).collect::<Vec<_>>());
    let reg: Vec<&Row> = rows.iter().filter(|r| !r.irregular).collect();
    let irr: Vec<&Row> = rows.iter().filter(|r| r.irregular).collect();
    let all: Vec<&Row> = rows.iter().collect();
    let n_engines = Engine::FIGURE10.len();
    Figure10 {
        engines: Engine::FIGURE10.iter().map(|e| e.label()).collect(),
        mean_regular: (0..n_engines).map(|j| col(&reg, j)).collect(),
        mean_irregular: (0..n_engines).map(|j| col(&irr, j)).collect(),
        mean_all: (0..n_engines).map(|j| col(&all, j)).collect(),
        rows,
    }
}

/// Render the paper's table: one row per benchmark, then the means.
pub fn render(fig: &Figure10) -> String {
    let mut header = vec!["bench"];
    header.extend(fig.engines.iter());
    let mut t = Table::new(&header);
    for r in &fig.rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.normalized.iter().map(|&x| format!("{x:.3}")));
        t.row(cells);
    }
    for (label, means) in [
        ("Mean(reg)", &fig.mean_regular),
        ("Mean(irreg)", &fig.mean_irregular),
        ("Mean(all)", &fig.mean_all),
    ] {
        let mut cells = vec![label.to_string()];
        cells.extend(means.iter().map(|&x| format!("{x:.3}")));
        t.row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_normalizes_against_baseline() {
        let fig = compute_for(&[Workload::Jc1, Workload::Bfs], Scale::Small);
        assert_eq!(fig.rows.len(), 2);
        assert_eq!(fig.rows[0].normalized.len(), 7);
        assert!(fig
            .rows
            .iter()
            .all(|r| r.normalized.iter().all(|&x| x > 0.0)));
        let s = render(&fig);
        assert!(s.contains("CAPS"));
        assert!(s.contains("Mean(all)"));
    }
}
