//! Regenerates Figure 14: early-prefetch ratio and prefetch distance.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig14::compute(scale);
    println!("Figure 14 — timeliness of prefetching\n");
    println!("{}", caps_bench::fig14::render(&fig));
}
