//! Sweep-farm driver and benchmark: run the standard sensitivity sweep
//! through the work-stealing farm and report cache/dedup counters.
//!
//! ```text
//! farm [--small] [--jobs N] [--cache-dir PATH] [--cache rw|ro|off]
//!      [--workloads A,B,..] [--out PATH] [--stats PATH]
//! farm --bench [--small] [--jobs N] [--workloads A,B,..] [--out PATH]
//! ```
//!
//! The default mode runs every `standard_axes()` sensitivity axis over
//! the selected workloads on one farm, prints the sweep tables, and
//! optionally writes the sweep summary (`--out`, stable JSON suitable
//! for byte-comparison across passes) and the farm/cache counters
//! (`--stats`). Two invocations sharing a `--cache-dir` exercise the
//! persistent path: the second pass should resolve (almost) entirely
//! from disk — the CI smoke job asserts a ≥90% hit rate and
//! byte-identical sweep output.
//!
//! `--bench` times three passes of the same sweep against a fresh
//! throwaway cache directory — cold (simulating + storing), warm from
//! disk (in-memory index dropped), warm from memory — and writes
//! `BENCH_farm.json` (override with `--out`) recording the timings,
//! speedups, per-pass counters, and a `host` header describing the
//! machine (cores, SMT, model, pinning, oversubscription).
//!
//! `--prune-against PATH` loads a results archive — a result-cache
//! directory, or any JSON carrying job keys such as a previous `--stats`
//! file or `BENCH_farm.json` — and skips every sweep job whose content
//! key it covers (reported as `pruned`; pruned sweep points render as
//! `NaN` with a `(pruned)` label). The `job_keys` array written by
//! `--stats` and per-pass bench entries makes any run's output usable
//! as such an archive.

use std::path::PathBuf;
use std::time::Instant;

use caps_json::{obj, Value};
use caps_metrics::{
    standard_axes, sweep_jobs, sweep_pruned, CacheMode, Engine, Farm, FarmStats, PruneSet,
    ResultCache, SweepResult, Table,
};
use caps_workloads::{all_workloads, Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: farm [--small] [--jobs N] [--cache-dir PATH] [--cache rw|ro|off]\n\
         \x20           [--workloads A,B,..] [--out PATH] [--stats PATH] [--prune-against PATH]\n\
         \x20      farm --bench [--small] [--jobs N] [--workloads A,B,..] [--out PATH]\n\
         \x20           [--prune-against PATH]\n\
         BENCH: {}",
        all_workloads()
            .iter()
            .map(|w| w.abbr())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
}

fn parse_workloads(args: &[String]) -> Vec<Workload> {
    match flag_value(args, "--workloads") {
        Some(list) => list
            .split(',')
            .map(|abbr| {
                all_workloads()
                    .into_iter()
                    .find(|w| w.abbr().eq_ignore_ascii_case(abbr.trim()))
                    .unwrap_or_else(|| {
                        eprintln!("unknown workload {abbr:?} in --workloads");
                        usage()
                    })
            })
            .collect(),
        None => all_workloads(),
    }
}

/// `--prune-against PATH`: load a results archive (cache directory or
/// any JSON carrying job keys) whose covered points are skipped.
fn parse_prune(args: &[String]) -> PruneSet {
    match flag_value(args, "--prune-against") {
        Some(path) => {
            let set = PruneSet::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
                eprintln!("--prune-against {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("pruning against {path}: {} known job keys", set.len());
            set
        }
        None => PruneSet::new(),
    }
}

fn parse_jobs(args: &[String]) -> usize {
    match flag_value(args, "--jobs") {
        Some(n) => n.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs requires a positive integer");
            usage()
        }),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    }
}

/// Run all standard axes on `farm`, skipping jobs covered by `prune`.
/// Returns the sweep summaries, the aggregated batch statistics, and
/// the submitted job content keys (pruned ones included) so the run's
/// own output can serve as a future `--prune-against` archive.
fn run_axes(
    farm: &Farm,
    workloads: &[Workload],
    scale: Scale,
    prune: &PruneSet,
) -> (Vec<SweepResult>, FarmStats, Vec<u128>) {
    let mut total = FarmStats::default();
    let mut results = Vec::new();
    let mut job_keys = Vec::new();
    for (axis, points) in standard_axes() {
        for job in sweep_jobs(&points, workloads, Engine::Caps, scale) {
            job_keys.push(job.digest());
        }
        let (r, s) = sweep_pruned(farm, &axis, points, workloads, Engine::Caps, scale, prune);
        total.jobs += s.jobs;
        total.sims += s.sims;
        total.mem_hits += s.mem_hits;
        total.disk_hits += s.disk_hits;
        total.dedup += s.dedup;
        total.pruned += s.pruned;
        results.push(r);
    }
    job_keys.sort_unstable();
    job_keys.dedup();
    (results, total, job_keys)
}

fn print_tables(results: &[SweepResult]) {
    for r in results {
        let mut t = Table::new(&["point", "CAPS speedup"]);
        for (label, s) in r.labels.iter().zip(&r.speedup) {
            t.row(vec![label.clone(), format!("{s:.3}")]);
        }
        println!("{}\n{}", r.axis, t.render());
    }
}

fn sweep_summary_json(results: &[SweepResult]) -> String {
    let axes: Vec<Value> = results
        .iter()
        .map(|r| {
            obj(vec![
                ("axis", Value::Str(r.axis.clone())),
                (
                    "labels",
                    Value::Arr(r.labels.iter().map(|l| Value::Str(l.clone())).collect()),
                ),
                (
                    "speedup",
                    Value::Arr(r.speedup.iter().map(|&s| Value::Float(s)).collect()),
                ),
            ])
        })
        .collect();
    Value::Arr(axes).pretty()
}

fn stats_json(stats: &FarmStats, cache: &ResultCache, seconds: f64, job_keys: &[u128]) -> Value {
    let c = cache.counters();
    obj(vec![
        ("jobs", Value::UInt(stats.jobs)),
        ("sims", Value::UInt(stats.sims)),
        ("mem_hits", Value::UInt(stats.mem_hits)),
        ("disk_hits", Value::UInt(stats.disk_hits)),
        ("hits", Value::UInt(stats.hits())),
        ("dedup", Value::UInt(stats.dedup)),
        ("pruned", Value::UInt(stats.pruned)),
        ("hit_rate", Value::Float(stats.hit_rate())),
        ("seconds", Value::Float(seconds)),
        ("cache_stores", Value::UInt(c.stores)),
        ("cache_store_errors", Value::UInt(c.store_errors)),
        ("cache_misses", Value::UInt(c.misses)),
        // The batch's content keys: feed this file (or any JSON
        // containing it) back via --prune-against to skip every job it
        // covers.
        (
            "job_keys",
            Value::Arr(
                job_keys
                    .iter()
                    .map(|k| Value::Str(format!("{k:032x}")))
                    .collect(),
            ),
        ),
    ])
}

fn bench(args: &[String]) {
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let workloads = parse_workloads(args);
    let jobs = parse_jobs(args);
    let out = flag_value(args, "--out").unwrap_or_else(|| "BENCH_farm.json".to_string());
    let prune = parse_prune(args);

    // A throwaway cache directory so the cold pass is genuinely cold and
    // the run leaves no state behind.
    let dir = std::env::temp_dir().join(format!("caps-farm-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(CacheMode::ReadWrite, &dir);
    let farm = Farm::new(&cache, jobs);

    let mut passes = Vec::new();
    let mut seconds = [0.0f64; 3];
    let mut cold_summary = String::new();
    for (pi, pass) in ["cold", "warm_disk", "warm_mem"].iter().enumerate() {
        if *pass == "warm_disk" {
            // Forget the in-memory index so every hit must parse disk.
            cache.drop_index();
        }
        let t0 = Instant::now();
        let (results, stats, job_keys) = run_axes(&farm, &workloads, scale, &prune);
        seconds[pi] = t0.elapsed().as_secs_f64();
        let summary = sweep_summary_json(&results);
        if pi == 0 {
            cold_summary = summary;
            print_tables(&results);
        } else {
            assert_eq!(
                summary, cold_summary,
                "{pass} pass produced different sweep output than the cold pass"
            );
        }
        eprintln!(
            "{pass}: {:.3}s  jobs={} sims={} mem={} disk={} dedup={} pruned={}",
            seconds[pi],
            stats.jobs,
            stats.sims,
            stats.mem_hits,
            stats.disk_hits,
            stats.dedup,
            stats.pruned
        );
        let mut entry = stats_json(&stats, &cache, seconds[pi], &job_keys);
        if let Value::Obj(fields) = &mut entry {
            fields.insert(0, ("pass".to_string(), Value::Str(pass.to_string())));
        }
        passes.push(entry);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let scale_str = if scale == Scale::Small { "small" } else { "full" };
    let doc = obj(vec![
        ("bench", Value::Str("sweep_farm".to_string())),
        ("host", caps_bench::host_json(jobs)),
        (
            "timing",
            Value::Str(
                "standard_axes sweep, three passes on one farm: cold, warm from disk \
                 (index dropped), warm from memory"
                    .to_string(),
            ),
        ),
        ("scale", Value::Str(scale_str.to_string())),
        (
            "workloads",
            Value::Arr(
                workloads
                    .iter()
                    .map(|w| Value::Str(w.abbr().to_string()))
                    .collect(),
            ),
        ),
        ("farm_workers", Value::UInt(jobs as u64)),
        ("warm_disk_speedup", Value::Float(seconds[0] / seconds[1])),
        ("warm_mem_speedup", Value::Float(seconds[0] / seconds[2])),
        ("passes", Value::Arr(passes)),
    ]);
    std::fs::write(&out, doc.pretty()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "\nwrote {out} (warm-from-disk {:.1}x, warm-from-memory {:.1}x)",
        seconds[0] / seconds[1],
        seconds[0] / seconds[2]
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench") {
        bench(&args);
        return;
    }
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let workloads = parse_workloads(&args);
    let jobs = parse_jobs(&args);
    let mode = match flag_value(&args, "--cache").as_deref() {
        None | Some("rw") => CacheMode::ReadWrite,
        Some("ro") => CacheMode::ReadOnly,
        Some("off") => CacheMode::Off,
        Some(other) => {
            eprintln!("unknown cache mode {other:?} (rw|ro|off)");
            usage()
        }
    };
    let dir = flag_value(&args, "--cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(caps_metrics::cache::default_cache_dir);
    let cache = ResultCache::new(mode, dir);
    let farm = Farm::new(&cache, jobs);
    let prune = parse_prune(&args);

    let t0 = Instant::now();
    let (results, stats, job_keys) = run_axes(&farm, &workloads, scale, &prune);
    let seconds = t0.elapsed().as_secs_f64();
    print_tables(&results);
    eprintln!(
        "{:.3}s  jobs={} sims={} mem={} disk={} dedup={} pruned={}  (hit rate {:.1}%, cache dir {})",
        seconds,
        stats.jobs,
        stats.sims,
        stats.mem_hits,
        stats.disk_hits,
        stats.dedup,
        stats.pruned,
        stats.hit_rate() * 100.0,
        cache.dir().display(),
    );

    if let Some(out) = flag_value(&args, "--out") {
        std::fs::write(&out, sweep_summary_json(&results))
            .unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("wrote {out}");
    }
    if let Some(path) = flag_value(&args, "--stats") {
        let mut doc = stats_json(&stats, &cache, seconds, &job_keys);
        if let Value::Obj(fields) = &mut doc {
            fields.insert(0, ("host".to_string(), caps_bench::host_json(jobs)));
        }
        std::fs::write(&path, doc.pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
