//! Regenerates Figure 3's CTA-distribution example: round-robin initial
//! assignment followed by demand-driven refill, shown as the actual
//! launch timeline of a simulated run.

use caps_gpu_sim::config::GpuConfig;
use caps_gpu_sim::gpu::Gpu;
use caps_gpu_sim::prefetch::{NullPrefetcher, Prefetcher};
use caps_gpu_sim::trace::{Event, TraceBuffer, TracingPrefetcher};
use caps_metrics::Table;
use caps_workloads::{Scale, Workload};

fn main() {
    // The Fig. 3 scenario in miniature: a small grid over 3 "SMs" with
    // 2 CTA slots each — then the real 15-SM machine on a benchmark.
    // One trace buffer per SM so launches can be attributed.
    let bufs: Vec<TraceBuffer> = (0..3).map(|_| TraceBuffer::new(1 << 16)).collect();
    let bufs2 = bufs.clone();
    let factory = move |sm: usize| -> Box<dyn Prefetcher> {
        Box::new(TracingPrefetcher::new(NullPrefetcher, bufs2[sm].clone()))
    };
    let mut cfg = GpuConfig::test_small();
    cfg.num_sms = 3;
    cfg.max_ctas_per_sm = 2;
    let kernel = Workload::Jc1.kernel(Scale::Small);
    let mut gpu = Gpu::new(cfg, kernel, &factory);
    let _ = gpu.run(5_000_000);

    println!("Figure 3 — CTA distribution (3 SMs × 2 slots, demand-driven refill)\n");
    let mut t = Table::new(&["SM", "CTAs received (in launch order)"]);
    for (sm, buf) in bufs.iter().enumerate() {
        let ids: Vec<String> = buf
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::CtaLaunch { cta, .. } => Some(format!("{}", cta.linear)),
                _ => None,
            })
            .collect();
        t.row(vec![format!("SM {sm}"), ids.join(", ")]);
    }
    println!("{}", t.render());
    println!(
        "The first 6 launches follow the round-robin fill; later CTAs go to\n\
         whichever SM finishes one first (launch order is demand-driven)."
    );
}
