//! Regenerates Figure 11: performance vs. maximum concurrent CTAs.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig11::compute(scale);
    println!("Figure 11 — mean IPC vs concurrent CTAs (normalized to 8-CTA baseline)\n");
    println!("{}", caps_bench::fig11::render(&fig));
    println!(
        "CAPS improves with CTA count: {}",
        caps_bench::fig11::caps_improves_with_ctas(&fig)
    );
}
