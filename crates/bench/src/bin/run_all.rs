//! Regenerate every table and figure in one go, writing the rendered
//! text to `results/` and the raw Figure-10 records to JSON.
//!
//! ```text
//! cargo run --release -p caps-bench --bin run_all [-- --small] [--threads N]
//! ```
//!
//! `--threads N` caps the harness worker count (default: one worker per
//! available core).
//!
//! After the figures, the binary runs an engine-determinism smoke: every
//! workload once per stepping engine — naive, fast (event-horizon), and
//! fast+parallel (phase-split, 4 workers) — prints the per-workload
//! timing table, and **exits non-zero if any stats field differs between
//! engines**, so CI catches determinism drift cheaply.

use std::fs;
use std::path::Path;
use std::time::Instant;

use caps_metrics::{run_one_with_opts, save, Engine, RunOpts, RunSpec, Table};
use caps_workloads::Scale;

fn write(dir: &Path, name: &str, contents: String) {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

fn main() {
    let scale = caps_bench::scale_from_args();
    caps_bench::apply_threads_from_args();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results/");

    write(dir, "fig01_distance.txt", {
        let pts = caps_bench::fig01::compute(scale);
        format!(
            "{}\nCTA-boundary cliff: {}\n",
            caps_bench::fig01::render(&pts),
            caps_bench::fig01::shows_cta_boundary_cliff(&pts)
        )
    });
    write(
        dir,
        "fig04_iterations.txt",
        caps_bench::fig04::render(&caps_bench::fig04::compute()),
    );
    write(dir, "fig05_cta_strides.txt", {
        let d = caps_bench::fig05::compute();
        caps_bench::fig05::render(&d)
    });
    let fig10 = caps_bench::fig10::compute(scale);
    write(dir, "fig10_ipc.txt", caps_bench::fig10::render(&fig10));
    write(
        dir,
        "fig11_cta_sweep.txt",
        caps_bench::fig11::render(&caps_bench::fig11::compute(scale)),
    );
    write(
        dir,
        "fig12_coverage_accuracy.txt",
        caps_bench::fig12::render(&caps_bench::fig12::compute(scale)),
    );
    write(
        dir,
        "fig13_bandwidth.txt",
        caps_bench::fig13::render(&caps_bench::fig13::compute(scale)),
    );
    write(
        dir,
        "fig14_timeliness.txt",
        caps_bench::fig14::render(&caps_bench::fig14::compute(scale)),
    );
    write(
        dir,
        "fig15_energy.txt",
        caps_bench::fig15::render(&caps_bench::fig15::compute(scale)),
    );
    write(
        dir,
        "table12_hardware.txt",
        caps_bench::tables::render_tables_1_2(),
    );
    write(dir, "table34_config.txt", {
        format!(
            "{}{}",
            caps_bench::tables::render_table_3(),
            caps_bench::tables::render_table_4()
        )
    });

    // Raw Figure-10 matrix as JSON for external post-processing.
    let mut specs = Vec::new();
    for w in caps_bench::workloads() {
        for e in caps_bench::engines_with_baseline() {
            let mut s = RunSpec::paper(w, e);
            s.scale = scale;
            specs.push(s);
        }
    }
    let recs = caps_metrics::run_matrix(&specs);
    save(&recs, &dir.join("fig10_records.json")).expect("save JSON");
    println!("wrote {}", dir.join("fig10_records.json").display());

    // A one-line verdict for CI-style smoke checks.
    let caps_col = fig10
        .engines
        .iter()
        .position(|&e| e == "CAPS")
        .expect("CAPS");
    println!(
        "\nCAPS mean speedup (all 16 benchmarks): {:.3} — {}",
        fig10.mean_all[caps_col],
        if scale == Scale::Small {
            "small scale"
        } else {
            "paper scale"
        }
    );

    // Engine-determinism smoke: every workload once per stepping engine.
    // The three engines must agree on every stats field; timing columns
    // double as a coarse per-workload throughput report. The three
    // trailing columns summarise the parallel run's port-layer report:
    // the deepest ring high-water mark, total credit-stall events, and
    // growth-valve activations (0 = the preallocated sizing held and the
    // memory path ran allocation-free).
    const PAR_THREADS: usize = 4;
    println!("\nStepping-engine determinism (CAPS; naive vs fast vs parallel x{PAR_THREADS}):");
    let mut table = Table::new(&[
        "bench", "cycles", "naive s", "fast s", "par s", "fast x", "par x", "q hw", "cr stall",
        "grows",
    ]);
    let mut drift = Vec::new();
    for w in caps_bench::workloads() {
        let mut spec = RunSpec::paper(w, Engine::Caps);
        spec.scale = scale;
        let time = |ff: bool, threads: usize| {
            let opts = RunOpts {
                fast_forward: Some(ff),
                sim_threads: Some(threads),
                // Pin the engine choice: this table compares the three
                // stepping engines, so the adaptive controller must not
                // silently swap one for another.
                adaptive: Some(false),
                ..RunOpts::default()
            };
            let t0 = Instant::now();
            let rec = run_one_with_opts(&spec, &opts);
            (rec, t0.elapsed().as_secs_f64())
        };
        let (naive, naive_s) = time(false, 1);
        let (fast, fast_s) = time(true, 1);
        let (par, par_s) = time(true, PAR_THREADS);
        if fast.stats != naive.stats {
            drift.push(format!("{}: fast engine diverged from naive", naive.workload));
        }
        if par.stats != naive.stats {
            drift.push(format!(
                "{}: parallel engine (x{PAR_THREADS}) diverged from naive",
                naive.workload
            ));
        }
        let ports = par.links.total();
        table.row(vec![
            naive.workload.clone(),
            format!("{}", naive.stats.cycles),
            format!("{naive_s:.3}"),
            format!("{fast_s:.3}"),
            format!("{par_s:.3}"),
            format!("{:.2}", naive_s / fast_s),
            format!("{:.2}", naive_s / par_s),
            format!("{}", ports.high_water),
            format!("{}", ports.credit_stalls),
            format!("{}", ports.grows),
        ]);
    }
    println!("{}", table.render());
    if !drift.is_empty() {
        for d in &drift {
            eprintln!("DETERMINISM DRIFT — {d}");
        }
        std::process::exit(1);
    }
    println!("determinism: all engines bit-identical on every workload");
}
