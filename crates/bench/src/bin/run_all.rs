//! Regenerate every table and figure in one go, writing the rendered
//! text to `results/` and the raw Figure-10 records to JSON.
//!
//! ```text
//! cargo run --release -p caps-bench --bin run_all [-- --small] [--threads N]
//! ```
//!
//! `--threads N` caps the harness worker count (default: one worker per
//! available core).

use std::fs;
use std::path::Path;

use caps_metrics::{save, RunSpec};
use caps_workloads::Scale;

fn write(dir: &Path, name: &str, contents: String) {
    let path = dir.join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("wrote {}", path.display());
}

fn main() {
    let scale = caps_bench::scale_from_args();
    caps_bench::apply_threads_from_args();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results/");

    write(dir, "fig01_distance.txt", {
        let pts = caps_bench::fig01::compute(scale);
        format!(
            "{}\nCTA-boundary cliff: {}\n",
            caps_bench::fig01::render(&pts),
            caps_bench::fig01::shows_cta_boundary_cliff(&pts)
        )
    });
    write(
        dir,
        "fig04_iterations.txt",
        caps_bench::fig04::render(&caps_bench::fig04::compute()),
    );
    write(dir, "fig05_cta_strides.txt", {
        let d = caps_bench::fig05::compute();
        caps_bench::fig05::render(&d)
    });
    let fig10 = caps_bench::fig10::compute(scale);
    write(dir, "fig10_ipc.txt", caps_bench::fig10::render(&fig10));
    write(
        dir,
        "fig11_cta_sweep.txt",
        caps_bench::fig11::render(&caps_bench::fig11::compute(scale)),
    );
    write(
        dir,
        "fig12_coverage_accuracy.txt",
        caps_bench::fig12::render(&caps_bench::fig12::compute(scale)),
    );
    write(
        dir,
        "fig13_bandwidth.txt",
        caps_bench::fig13::render(&caps_bench::fig13::compute(scale)),
    );
    write(
        dir,
        "fig14_timeliness.txt",
        caps_bench::fig14::render(&caps_bench::fig14::compute(scale)),
    );
    write(
        dir,
        "fig15_energy.txt",
        caps_bench::fig15::render(&caps_bench::fig15::compute(scale)),
    );
    write(
        dir,
        "table12_hardware.txt",
        caps_bench::tables::render_tables_1_2(),
    );
    write(dir, "table34_config.txt", {
        format!(
            "{}{}",
            caps_bench::tables::render_table_3(),
            caps_bench::tables::render_table_4()
        )
    });

    // Raw Figure-10 matrix as JSON for external post-processing.
    let mut specs = Vec::new();
    for w in caps_bench::workloads() {
        for e in caps_bench::engines_with_baseline() {
            let mut s = RunSpec::paper(w, e);
            s.scale = scale;
            specs.push(s);
        }
    }
    let recs = caps_metrics::run_matrix(&specs);
    save(&recs, &dir.join("fig10_records.json")).expect("save JSON");
    println!("wrote {}", dir.join("fig10_records.json").display());

    // A one-line verdict for CI-style smoke checks.
    let caps_col = fig10
        .engines
        .iter()
        .position(|&e| e == "CAPS")
        .expect("CAPS");
    println!(
        "\nCAPS mean speedup (all 16 benchmarks): {:.3} — {}",
        fig10.mean_all[caps_col],
        if scale == Scale::Small {
            "small scale"
        } else {
            "paper scale"
        }
    );
}
