//! Extension experiment: sensitivity of the CAPS speedup to the main
//! microarchitectural knobs around Table III (L1D size, MSHR count,
//! ready-queue size, prefetch-queue depth).

use caps_metrics::{standard_axes, sweep, Engine, Table};
use caps_workloads::{Scale, Workload};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { Scale::Small } else { Scale::Full };
    let workloads = if small {
        vec![Workload::Jc1]
    } else {
        vec![Workload::Lps, Workload::Jc1, Workload::Cnv, Workload::Mrq]
    };
    println!("Sensitivity of mean CAPS speedup (vs. same-config baseline)\n");
    for (axis, points) in standard_axes() {
        let r = sweep(&axis, points, &workloads, Engine::Caps, scale);
        let mut t = Table::new(&[axis.as_str(), "CAPS speedup"]);
        for (l, s) in r.labels.iter().zip(&r.speedup) {
            t.row(vec![l.clone(), format!("{s:.3}")]);
        }
        println!("{}", t.render());
    }
}
