//! Regenerates Tables I and II: CAPS hardware budget.
fn main() {
    println!("{}", caps_bench::tables::render_tables_1_2());
}
