//! Regenerates Figure 15: normalized energy under CAPS.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig15::compute(scale);
    println!("Figure 15 — energy consumption of CAPS (normalized)\n");
    println!("{}", caps_bench::fig15::render(&fig));
}
