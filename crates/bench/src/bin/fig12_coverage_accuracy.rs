//! Regenerates Figure 12: prefetch coverage and accuracy.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig12::compute(scale);
    println!("Figure 12 — prefetch coverage and accuracy\n");
    println!("{}", caps_bench::fig12::render(&fig));
    let (cov, acc) = caps_bench::fig12::caps_means(&fig);
    println!(
        "CAPS means: coverage {:.1}%, accuracy {:.1}%",
        cov * 100.0,
        acc * 100.0
    );
}
