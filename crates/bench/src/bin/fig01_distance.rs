//! Regenerates Figure 1: inter-warp prefetch accuracy and cycle gap vs.
//! warp distance on matrixMul.
fn main() {
    let scale = caps_bench::scale_from_args();
    let pts = caps_bench::fig01::compute(scale);
    println!("Figure 1 — inter-warp stride prefetch on MM (8 warps/CTA)\n");
    println!("{}", caps_bench::fig01::render(&pts));
    println!(
        "CTA-boundary accuracy cliff observed: {}",
        caps_bench::fig01::shows_cta_boundary_cliff(&pts)
    );
}
