//! Regenerates Figure 13: bandwidth overhead of prefetching.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig13::compute(scale);
    println!("Figure 13 — bandwidth overhead (normalized to no-prefetch baseline)\n");
    println!("{}", caps_bench::fig13::render(&fig));
    println!(
        "CAPS request-traffic overhead: {:+.1}%",
        caps_bench::fig13::caps_request_overhead(&fig) * 100.0
    );
}
