//! General-purpose runner: simulate one (benchmark, engine) pair and
//! print the full statistics.
//!
//! ```text
//! run <BENCH> <ENGINE> [--small] [--ctas N] [--kepler] [--threads N]
//!     [--sim-threads N]
//!   BENCH:  CP LPS BPR HSP MRQ STE CNV HST JC1 FFT SCN MM PVR CCL BFS KM
//!   ENGINE: base intra inter mta nlp lap orch caps caps-nw
//!           caps@lrr caps@tlv caps@gto
//! run --bench-throughput [--small] [--out PATH] [--workloads A,B,..]
//!     [--sim-threads A,B,..]
//! ```
//!
//! `--bench-throughput` times the full workload suite (BASE and CAPS,
//! event-horizon fast-forward on and off), reports simulated cycles/sec
//! and host seconds per run, and writes the results to
//! `BENCH_throughput.json` (override with `--out`) so the simulator's
//! perf trajectory is tracked across PRs. `--workloads` restricts the
//! sweep to a comma-separated list of benchmark abbreviations (the CI
//! smoke job runs `--workloads SCN,MRQ --small`). `--sim-threads A,B`
//! additionally times the phase-split parallel engine at each listed
//! worker count, asserts its stats are bit-identical to the sequential
//! fast engine, and appends per-thread-count entries to the JSON.

use std::time::Instant;

use caps_gpu_sim::config::GpuConfig;
use caps_json::{obj, Value};
use caps_metrics::{run_one_with_opts, Engine, RunOpts, RunSpec, Table};
use caps_workloads::{all_workloads, Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: run <BENCH> <ENGINE> [--small] [--ctas N] [--kepler] [--threads N] [--sim-threads N]\n\
         \x20      run --bench-throughput [--small] [--out PATH] [--workloads A,B,..] [--sim-threads A,B,..]\n\
         BENCH:  {}\n\
         ENGINE: base intra inter mta nlp lap orch caps caps-nw caps@lrr caps@tlv caps@gto",
        all_workloads()
            .iter()
            .map(|w| w.abbr())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn bench_throughput(args: &[String]) {
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let workloads: Vec<Workload> = match args.iter().position(|a| a == "--workloads") {
        Some(i) => {
            let list = args.get(i + 1).cloned().unwrap_or_default();
            list.split(',')
                .map(|abbr| {
                    all_workloads()
                        .into_iter()
                        .find(|w| w.abbr().eq_ignore_ascii_case(abbr.trim()))
                        .unwrap_or_else(|| {
                            eprintln!("unknown workload {abbr:?} in --workloads");
                            usage()
                        })
                })
                .collect()
        }
        None => all_workloads(),
    };
    let sim_threads: Vec<usize> = match args.iter().position(|a| a == "--sim-threads") {
        Some(i) => {
            let list = args.get(i + 1).cloned().unwrap_or_default();
            list.split(',')
                .map(|t| {
                    t.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                        eprintln!("bad worker count {t:?} in --sim-threads");
                        usage()
                    })
                })
                .collect()
        }
        None => Vec::new(),
    };
    let reps = 7;
    let scale_str = if scale == Scale::Small { "small" } else { "full" };
    // Engine configurations timed for every (workload, engine) pair:
    // naive, single-thread fast-forward, then the parallel engine at
    // each requested worker count.
    let mut configs = vec![
        RunOpts {
            fast_forward: Some(false),
            sim_threads: Some(1),
            ..RunOpts::default()
        },
        RunOpts {
            fast_forward: Some(true),
            sim_threads: Some(1),
            ..RunOpts::default()
        },
    ];
    for &threads in &sim_threads {
        configs.push(RunOpts {
            fast_forward: Some(true),
            sim_threads: Some(threads),
            // Measure the parallel engine itself: the adaptive
            // controller would otherwise fall back to sequential on
            // oversubscribed hosts and report fast-1 numbers twice.
            adaptive: Some(false),
            ..RunOpts::default()
        });
    }
    let engines = [Engine::Baseline, Engine::Caps];
    // Best-of-N with the reps spread across whole-suite passes (pass 1
    // times every cell once, then pass 2, ...). Two levels of
    // interleaving defend the mode-vs-mode ratios against host-speed
    // variance: adjacent configs of a pair sample the same short-term
    // drift, and a pair's reps land minutes apart so a multi-second
    // throttle burst (shared cores, CI quotas) cannot poison all reps
    // of one cell.
    type BestCell = Option<(caps_metrics::RunRecord, f64)>;
    let mut best: Vec<Vec<Vec<BestCell>>> =
        vec![vec![vec![None; configs.len()]; engines.len()]; workloads.len()];
    for pass in 0..reps {
        for (wi, &workload) in workloads.iter().enumerate() {
            for (ei, &engine) in engines.iter().enumerate() {
                let mut spec = RunSpec::paper(workload, engine);
                spec.scale = scale;
                for (ci, opts) in configs.iter().enumerate() {
                    let t0 = Instant::now();
                    let rec = run_one_with_opts(&spec, opts);
                    let secs = t0.elapsed().as_secs_f64();
                    let slot = &mut best[wi][ei][ci];
                    if slot.as_ref().is_none_or(|(_, b)| secs < *b) {
                        *slot = Some((rec, secs));
                    }
                }
            }
        }
        eprintln!("pass {}/{reps} done", pass + 1);
    }
    let mut entries = Vec::new();
    println!(
        "{:<5} {:<5} {:>12} {:>11} {:>11} {:>14} {:>14} {:>8}",
        "bench", "eng", "sim cycles", "naive s", "fast s", "naive cyc/s", "fast cyc/s", "speedup"
    );
    for (wi, _workload) in workloads.iter().enumerate() {
        for (ei, _engine) in engines.iter().enumerate() {
            let mut timed = best[wi][ei].iter().map(|slot| {
                let (rec, secs) = slot.as_ref().expect("reps > 0");
                (rec, *secs)
            });
            let (naive_rec, naive_s) = timed.next().expect("naive config");
            let (fast_rec, fast_s) = timed.next().expect("fast config");
            assert_eq!(
                naive_rec.stats, fast_rec.stats,
                "fast-forward diverged on {} / {}",
                naive_rec.workload, naive_rec.engine
            );
            let cycles = fast_rec.stats.cycles;
            let speedup = naive_s / fast_s;
            println!(
                "{:<5} {:<5} {:>12} {:>11.4} {:>11.4} {:>14.0} {:>14.0} {:>7.2}x",
                naive_rec.workload,
                naive_rec.engine,
                cycles,
                naive_s,
                fast_s,
                cycles as f64 / naive_s,
                cycles as f64 / fast_s,
                speedup
            );
            entries.push(obj(vec![
                ("workload", Value::Str(naive_rec.workload.clone())),
                ("engine", Value::Str(naive_rec.engine.clone())),
                ("scale", Value::Str(scale_str.to_string())),
                ("simulated_cycles", Value::UInt(cycles)),
                ("naive_host_seconds", Value::Float(naive_s)),
                ("fast_host_seconds", Value::Float(fast_s)),
                (
                    "naive_cycles_per_sec",
                    Value::Float(cycles as f64 / naive_s),
                ),
                ("fast_cycles_per_sec", Value::Float(cycles as f64 / fast_s)),
                ("speedup", Value::Float(speedup)),
                // Growth-valve activations across the whole memory path:
                // 0 = the preallocated ring sizing held and the run was
                // allocation-free in steady state.
                ("ring_grows", Value::UInt(fast_rec.links.total().grows)),
            ]));
            // Phase-split parallel engine at each requested worker
            // count, compared against the single-thread fast engine.
            for &threads in &sim_threads {
                let (par_rec, par_s) = timed.next().expect("parallel config");
                assert_eq!(
                    par_rec.stats, fast_rec.stats,
                    "parallel engine diverged on {} / {} at sim_threads={}",
                    par_rec.workload, par_rec.engine, threads
                );
                println!(
                    "{:<5} {:<5} {:>12} {:>11} {:>11.4} {:>14} {:>14.0} {:>7.2}x  (sim-threads {})",
                    par_rec.workload,
                    par_rec.engine,
                    cycles,
                    "-",
                    par_s,
                    "-",
                    cycles as f64 / par_s,
                    fast_s / par_s,
                    threads
                );
                entries.push(obj(vec![
                    ("workload", Value::Str(par_rec.workload.clone())),
                    ("engine", Value::Str(par_rec.engine.clone())),
                    ("scale", Value::Str(scale_str.to_string())),
                    ("sim_threads", Value::UInt(threads as u64)),
                    ("simulated_cycles", Value::UInt(cycles)),
                    ("par_host_seconds", Value::Float(par_s)),
                    ("par_cycles_per_sec", Value::Float(cycles as f64 / par_s)),
                    ("speedup_vs_fast1", Value::Float(fast_s / par_s)),
                    ("ring_grows", Value::UInt(par_rec.links.total().grows)),
                ]));
            }
        }
    }
    let best = entries
        .iter()
        .filter_map(|e| e.get("speedup").and_then(|v| v.as_f64().ok()))
        .fold(0.0_f64, f64::max);
    // Host header: oversubscription is judged against the widest
    // parallel-engine configuration this run timed (1 = seq only).
    let widest = sim_threads.iter().copied().max().unwrap_or(1);
    let doc = obj(vec![
        ("bench", Value::Str("sim_throughput".to_string())),
        (
            "timing",
            Value::Str(format!("best of {reps} whole-suite passes, configs interleaved")),
        ),
        ("host", caps_bench::host_json(widest)),
        ("best_speedup", Value::Float(best)),
        ("entries", Value::Arr(entries)),
    ]);
    std::fs::write(&out, doc.pretty()).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out} (best fast-forward speedup {best:.2}x)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--bench-throughput") {
        bench_throughput(&args);
        return;
    }
    if args.len() < 2 {
        usage();
    }
    caps_bench::apply_threads_from_args();
    let workload = all_workloads()
        .into_iter()
        .find(|w| w.abbr().eq_ignore_ascii_case(&args[0]))
        .unwrap_or_else(|| usage());
    let engine = match args[1].to_ascii_lowercase().as_str() {
        "base" | "baseline" => Engine::Baseline,
        "intra" => Engine::Intra,
        "inter" => Engine::Inter,
        "mta" => Engine::Mta,
        "nlp" => Engine::Nlp,
        "lap" => Engine::Lap,
        "orch" => Engine::Orch,
        "caps" => Engine::Caps,
        "caps-nw" => Engine::CapsNoWakeup,
        "caps@lrr" => Engine::CapsOnLrr,
        "caps@tlv" => Engine::CapsOnTlv,
        "caps@gto" => Engine::CapsOnPasGto,
        _ => usage(),
    };
    let mut spec = RunSpec::paper(workload, engine);
    if args.iter().any(|a| a == "--small") {
        spec.scale = Scale::Small;
    }
    if args.iter().any(|a| a == "--kepler") {
        spec.base_config = GpuConfig::kepler_like();
    }
    if let Some(i) = args.iter().position(|a| a == "--ctas") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        spec.base_config.max_ctas_per_sm = n;
    }
    let mut opts = RunOpts::default();
    if let Some(i) = args.iter().position(|a| a == "--sim-threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| usage());
        opts.sim_threads = Some(n);
    }

    let r = run_one_with_opts(&spec, &opts);
    let s = &r.stats;
    println!("{} under {}\n", r.workload, r.engine);
    let mut t = Table::new(&["metric", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cycles", format!("{}", s.cycles)),
        ("warp instructions", format!("{}", s.warp_instructions)),
        ("IPC", format!("{:.3}", s.ipc())),
        ("CTAs completed", format!("{}", s.ctas_completed)),
        ("L1D accesses", format!("{}", s.l1d_demand_accesses)),
        (
            "L1D miss rate",
            format!("{:.1}%", s.l1d_miss_rate() * 100.0),
        ),
        (
            "L2 hit rate",
            format!(
                "{:.1}%",
                100.0 * s.l2_hits as f64 / s.l2_accesses.max(1) as f64
            ),
        ),
        (
            "DRAM reads / writes",
            format!("{} / {}", s.dram_reads, s.dram_writes),
        ),
        (
            "DRAM row-hit rate",
            format!(
                "{:.1}%",
                100.0 * s.dram_row_hits as f64
                    / (s.dram_row_hits + s.dram_row_misses).max(1) as f64
            ),
        ),
        ("prefetches issued", format!("{}", s.prefetch_issued)),
        ("prefetch coverage", format!("{:.1}%", s.coverage() * 100.0)),
        ("prefetch accuracy", format!("{:.1}%", s.accuracy() * 100.0)),
        (
            "early-prefetch ratio",
            format!("{:.1}%", s.early_prefetch_ratio() * 100.0),
        ),
        (
            "prefetch distance",
            format!("{:.0} cycles", s.mean_prefetch_distance()),
        ),
        ("prefetch wake-ups", format!("{}", s.prefetch_wakeups)),
        ("mispredicts", format!("{}", s.prefetch_mispredicts)),
        ("energy", format!("{:.3} mJ", r.energy.total_mj())),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    println!("{}", t.render());
}
