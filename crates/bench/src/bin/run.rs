//! General-purpose runner: simulate one (benchmark, engine) pair and
//! print the full statistics.
//!
//! ```text
//! run <BENCH> <ENGINE> [--small] [--ctas N] [--kepler]
//!   BENCH:  CP LPS BPR HSP MRQ STE CNV HST JC1 FFT SCN MM PVR CCL BFS KM
//!   ENGINE: base intra inter mta nlp lap orch caps caps-nw
//!           caps@lrr caps@tlv caps@gto
//! ```

use caps_gpu_sim::config::GpuConfig;
use caps_metrics::{run_one, Engine, RunSpec, Table};
use caps_workloads::{all_workloads, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: run <BENCH> <ENGINE> [--small] [--ctas N] [--kepler]\n\
         BENCH:  {}\n\
         ENGINE: base intra inter mta nlp lap orch caps caps-nw caps@lrr caps@tlv caps@gto",
        all_workloads()
            .iter()
            .map(|w| w.abbr())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let workload = all_workloads()
        .into_iter()
        .find(|w| w.abbr().eq_ignore_ascii_case(&args[0]))
        .unwrap_or_else(|| usage());
    let engine = match args[1].to_ascii_lowercase().as_str() {
        "base" | "baseline" => Engine::Baseline,
        "intra" => Engine::Intra,
        "inter" => Engine::Inter,
        "mta" => Engine::Mta,
        "nlp" => Engine::Nlp,
        "lap" => Engine::Lap,
        "orch" => Engine::Orch,
        "caps" => Engine::Caps,
        "caps-nw" => Engine::CapsNoWakeup,
        "caps@lrr" => Engine::CapsOnLrr,
        "caps@tlv" => Engine::CapsOnTlv,
        "caps@gto" => Engine::CapsOnPasGto,
        _ => usage(),
    };
    let mut spec = RunSpec::paper(workload, engine);
    if args.iter().any(|a| a == "--small") {
        spec.scale = Scale::Small;
    }
    if args.iter().any(|a| a == "--kepler") {
        spec.base_config = GpuConfig::kepler_like();
    }
    if let Some(i) = args.iter().position(|a| a == "--ctas") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        spec.base_config.max_ctas_per_sm = n;
    }

    let r = run_one(&spec);
    let s = &r.stats;
    println!("{} under {}\n", r.workload, r.engine);
    let mut t = Table::new(&["metric", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cycles", format!("{}", s.cycles)),
        ("warp instructions", format!("{}", s.warp_instructions)),
        ("IPC", format!("{:.3}", s.ipc())),
        ("CTAs completed", format!("{}", s.ctas_completed)),
        ("L1D accesses", format!("{}", s.l1d_demand_accesses)),
        (
            "L1D miss rate",
            format!("{:.1}%", s.l1d_miss_rate() * 100.0),
        ),
        (
            "L2 hit rate",
            format!(
                "{:.1}%",
                100.0 * s.l2_hits as f64 / s.l2_accesses.max(1) as f64
            ),
        ),
        (
            "DRAM reads / writes",
            format!("{} / {}", s.dram_reads, s.dram_writes),
        ),
        (
            "DRAM row-hit rate",
            format!(
                "{:.1}%",
                100.0 * s.dram_row_hits as f64
                    / (s.dram_row_hits + s.dram_row_misses).max(1) as f64
            ),
        ),
        ("prefetches issued", format!("{}", s.prefetch_issued)),
        ("prefetch coverage", format!("{:.1}%", s.coverage() * 100.0)),
        ("prefetch accuracy", format!("{:.1}%", s.accuracy() * 100.0)),
        (
            "early-prefetch ratio",
            format!("{:.1}%", s.early_prefetch_ratio() * 100.0),
        ),
        (
            "prefetch distance",
            format!("{:.0} cycles", s.mean_prefetch_distance()),
        ),
        ("prefetch wake-ups", format!("{}", s.prefetch_wakeups)),
        ("mispredicts", format!("{}", s.prefetch_mispredicts)),
        ("energy", format!("{:.3} mJ", r.energy.total_mj())),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    println!("{}", t.render());
}
