//! Regenerates Figure 10: normalized IPC of all prefetcher
//! configurations over the two-level baseline.
fn main() {
    let scale = caps_bench::scale_from_args();
    let fig = caps_bench::fig10::compute(scale);
    println!("Figure 10 — normalized IPC over two-level scheduler without prefetch\n");
    println!("{}", caps_bench::fig10::render(&fig));
}
