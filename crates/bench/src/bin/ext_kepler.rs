//! Extension experiment (the paper's §VI-B outlook): on a Kepler-class
//! configuration — 64 resident warps, up to 16 resident CTAs per SM with
//! an unchanged cache budget — the CTA count sweep extends to 16 and
//! CTA-aware prefetching matters more, exactly as the paper argues.

use caps_gpu_sim::config::GpuConfig;
use caps_metrics::{mean, run_matrix, Engine, RunSpec, Table};
use caps_workloads::{Scale, Workload};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { Scale::Small } else { Scale::Full };
    // A representative stride-friendly subset keeps the sweep tractable.
    let workloads: Vec<Workload> = if small {
        vec![Workload::Jc1]
    } else {
        vec![
            Workload::Lps,
            Workload::Jc1,
            Workload::Cnv,
            Workload::Mrq,
            Workload::Bfs,
        ]
    };
    let cta_counts = [4usize, 8, 16];
    let engines = [Engine::Baseline, Engine::Mta, Engine::Caps];

    let mut specs = Vec::new();
    for &w in &workloads {
        for &c in &cta_counts {
            for &e in &engines {
                let mut s = RunSpec::paper(w, e);
                s.scale = scale;
                s.base_config = GpuConfig::kepler_like();
                s.base_config.max_ctas_per_sm = c;
                specs.push(s);
            }
        }
    }
    let recs = run_matrix(&specs);
    let per_e = engines.len();
    let per_c = cta_counts.len() * per_e;

    println!("Extension — Kepler-class residency (64 warps, ≤16 CTAs per SM)\n");
    let mut t = Table::new(&["CTAs", "BASE", "MTA", "CAPS", "CAPS vs BASE"]);
    for (ci, &c) in cta_counts.iter().enumerate() {
        let col = |ei: usize| -> f64 {
            let vals: Vec<f64> = workloads
                .iter()
                .enumerate()
                .map(|(wi, _)| {
                    // Normalize each workload to its own 16-CTA baseline.
                    let r = wi * per_c + (cta_counts.len() - 1) * per_e;
                    recs[wi * per_c + ci * per_e + ei].ipc() / recs[r].ipc()
                })
                .collect();
            mean(&vals)
        };
        let (b, m, ca) = (col(0), col(1), col(2));
        t.row(vec![
            format!("{c}"),
            format!("{b:.3}"),
            format!("{m:.3}"),
            format!("{ca:.3}"),
            format!("{:+.1}%", (ca / b - 1.0) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("The paper's claim: the CAPS advantage grows with the resident-CTA count.");
}
