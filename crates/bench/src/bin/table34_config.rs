//! Regenerates Tables III and IV: GPU configuration and workloads.
fn main() {
    println!("{}", caps_bench::tables::render_table_3());
    println!("{}", caps_bench::tables::render_table_4());
}
