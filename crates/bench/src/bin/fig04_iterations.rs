//! Regenerates Figure 4: loop-iteration counts of the most frequent
//! loads and the repeated/total static-load ratios.
fn main() {
    let rows = caps_bench::fig04::compute();
    println!("Figure 4 — load iteration characterization\n");
    println!("{}", caps_bench::fig04::render(&rows));
}
