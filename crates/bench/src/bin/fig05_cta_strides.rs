//! Regenerates the §IV/Figure 5-6 demonstration: irregular CTA base
//! addresses with a kernel-wide warp stride.
use caps_workloads::Workload;
fn main() {
    for w in [Workload::Lps, Workload::Mm, Workload::Bfs] {
        let d = caps_bench::fig05::compute_for(w);
        println!("{}", caps_bench::fig05::render(&d));
        println!(
            "irregular bases + constant warp stride: {}\n",
            caps_bench::fig05::demonstrates_cap_premise(&d)
        );
    }
}
