//! Figure 11 — mean normalized IPC as the maximum concurrent CTAs per
//! SM sweeps over {1, 2, 4, 8}. Everything is normalized to the
//! *8-CTA baseline without prefetching*, as in the paper.

use caps_metrics::{mean, run_matrix, RunSpec, Table};
use caps_workloads::{Scale, Workload};

/// The figure: for each CTA count, the mean normalized IPC per engine
/// (baseline first, then the seven prefetchers).
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// Swept CTA counts.
    pub cta_counts: Vec<usize>,
    /// Engine labels including the no-prefetch baseline.
    pub engines: Vec<&'static str>,
    /// `series[c][e]` = mean normalized IPC at `cta_counts[c]` under
    /// engine `e`.
    pub series: Vec<Vec<f64>>,
}

/// Sweep over an explicit workload list.
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure11 {
    let cta_counts = vec![1usize, 2, 4, 8];
    let engines = crate::engines_with_baseline();
    // Reference: 8 CTAs, no prefetch.
    let mut specs = Vec::new();
    for &w in workloads {
        for &c in &cta_counts {
            for &e in &engines {
                let mut s = RunSpec::paper(w, e);
                s.scale = scale;
                s.base_config.max_ctas_per_sm = c;
                specs.push(s);
            }
        }
    }
    let recs = run_matrix(&specs);
    let per_e = engines.len();
    let per_c = cta_counts.len() * per_e;
    let mut series = vec![vec![0.0; per_e]; cta_counts.len()];
    for (ci, _) in cta_counts.iter().enumerate() {
        for (ei, _) in engines.iter().enumerate() {
            let mut normalized = Vec::new();
            for (wi, _) in workloads.iter().enumerate() {
                // Reference IPC: this workload at 8 CTAs, baseline engine.
                let ref_idx = wi * per_c + (cta_counts.len() - 1) * per_e;
                let idx = wi * per_c + ci * per_e + ei;
                normalized.push(recs[idx].ipc() / recs[ref_idx].ipc());
            }
            series[ci][ei] = mean(&normalized);
        }
    }
    Figure11 {
        cta_counts,
        engines: engines.iter().map(|e| e.label()).collect(),
        series,
    }
}

/// Full-suite sweep.
pub fn compute(scale: Scale) -> Figure11 {
    compute_for(&crate::workloads(), scale)
}

/// Render as the paper's grouped-bar table.
pub fn render(fig: &Figure11) -> String {
    let mut header = vec!["CTAs"];
    header.extend(fig.engines.iter());
    let mut t = Table::new(&header);
    for (ci, &c) in fig.cta_counts.iter().enumerate() {
        let mut cells = vec![format!("{c}")];
        cells.extend(fig.series[ci].iter().map(|&x| format!("{x:.3}")));
        t.row(cells);
    }
    t.render()
}

/// `true` when the CAPS column is monotonically non-decreasing in the
/// CTA count — the paper's headline trend ("increasing CTA count makes
/// CTA-aware prefetching even more critical").
pub fn caps_improves_with_ctas(fig: &Figure11) -> bool {
    let caps_col = fig
        .engines
        .iter()
        .position(|&e| e == "CAPS")
        .expect("CAPS present");
    fig.series
        .windows(2)
        .all(|w| w[1][caps_col] >= w[0][caps_col] * 0.98)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape() {
        let fig = compute_for(&[Workload::Jc1], Scale::Small);
        assert_eq!(fig.cta_counts, vec![1, 2, 4, 8]);
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.series[0].len(), 8);
        // Fewer concurrent CTAs cannot beat the 8-CTA baseline by much:
        // the 1-CTA baseline column should be below 1.0.
        assert!(fig.series[0][0] <= 1.05);
        let s = render(&fig);
        assert!(s.contains("CTAs"));
    }
}
