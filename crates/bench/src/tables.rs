//! Tables I–IV: hardware-budget arithmetic and configuration listings.

use caps_core::hardware;
use caps_core::{dist, per_cta};
use caps_gpu_sim::config::GpuConfig;
use caps_metrics::Table;
use caps_workloads::Workload;

/// Render Table I (prefetcher entry layouts) and Table II (per-SM
/// storage) exactly as the paper reports them.
pub fn render_tables_1_2() -> String {
    let mut t1 = Table::new(&["table", "fields", "bytes/entry"]);
    t1.row(vec![
        "PerCTA".into(),
        "PC (4B), leading warp id (1B), base address (4×4B)".into(),
        format!("{}", per_cta::PER_CTA_ENTRY_BYTES),
    ]);
    t1.row(vec![
        "DIST".into(),
        "PC (4B), stride (4B), mispredict counter (1B)".into(),
        format!("{}", dist::DIST_ENTRY_BYTES),
    ]);
    let mut t2 = Table::new(&["table", "configuration", "total bytes"]);
    t2.row(vec![
        "DIST".into(),
        format!(
            "{} bytes × {} entries",
            dist::DIST_ENTRY_BYTES,
            dist::DIST_ENTRIES
        ),
        format!("{}", hardware::DIST_TABLE_BYTES),
    ]);
    t2.row(vec![
        "PerCTA".into(),
        format!(
            "{} bytes × {} entries × {} CTAs",
            per_cta::PER_CTA_ENTRY_BYTES,
            per_cta::PER_CTA_ENTRIES,
            hardware::CTAS_PER_SM
        ),
        format!("{}", hardware::PER_CTA_TABLE_BYTES),
    ]);
    t2.row(vec![
        "Total".into(),
        format!(
            "area {:.3} mm² ({:.2}% of an SM)",
            hardware::CAPS_AREA_MM2,
            hardware::area_overhead_fraction() * 100.0
        ),
        format!("{}", hardware::TOTAL_TABLE_BYTES),
    ]);
    format!(
        "Table I — entry layout\n{}\nTable II — per-SM storage\n{}",
        t1.render(),
        t2.render()
    )
}

/// Render Table III (the simulated GPU configuration).
pub fn render_table_3() -> String {
    let c = GpuConfig::fermi_gtx480();
    let mut t = Table::new(&["parameter", "value"]);
    t.row(vec![
        "Core".into(),
        format!(
            "{} MHz, {} SIMT width, {} cores",
            c.core_clock_mhz, c.simt_width, c.num_sms
        ),
    ]);
    t.row(vec![
        "Resources / core".into(),
        format!(
            "{} concurrent warps, {} concurrent CTAs",
            c.max_warps_per_sm, c.max_ctas_per_sm
        ),
    ]);
    t.row(vec![
        "Scheduler".into(),
        format!("two-level ({} ready warps)", c.ready_queue_size),
    ]);
    t.row(vec![
        "L1D cache".into(),
        format!(
            "{}KB, {}B line, {}-way, LRU, {} MSHR entries",
            c.l1d.size_bytes / 1024,
            c.l1d.line_size,
            c.l1d.assoc,
            c.l1d.mshr_entries
        ),
    ]);
    t.row(vec![
        "L2 unified cache".into(),
        format!(
            "{}KB per partition ({} partitions), {}B line, {}-way, LRU",
            c.l2.size_bytes / 1024,
            c.num_partitions,
            c.l2.line_size,
            c.l2.assoc
        ),
    ]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "{} MHz, {} channels, FR-FCFS, {} scheduler queue entries",
            c.dram_clock_mhz, c.num_dram_channels, c.dram_queue_entries
        ),
    ]);
    let d = &c.dram_timing;
    t.row(vec![
        "GDDR5 timing".into(),
        format!(
            "tCL={}, tRP={}, tRC={}, tRAS={}, tRCD={}, tRRD={}, tCDLR={}, tWR={}",
            d.t_cl, d.t_rp, d.t_rc, d.t_ras, d.t_rcd, d.t_rrd, d.t_cdlr, d.t_wr
        ),
    ]);
    format!("Table III — GPU configuration\n{}", t.render())
}

/// Render Table IV (the workload list).
pub fn render_table_4() -> String {
    let mut t = Table::new(&["benchmark", "abbr", "suite", "class"]);
    for w in Workload::ALL {
        let i = w.info();
        t.row(vec![
            i.name.to_string(),
            i.abbr.to_string(),
            i.suite.to_string(),
            if i.irregular {
                "irregular".into()
            } else {
                "regular".into()
            },
        ]);
    }
    format!("Table IV — workloads\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_paper_totals() {
        let s = render_tables_1_2();
        assert!(s.contains("21"));
        assert!(s.contains("9"));
        assert!(s.contains("708"));
        assert!(s.contains("672"));
        assert!(s.contains("36"));
    }

    #[test]
    fn table_3_lists_fermi_parameters() {
        let s = render_table_3();
        assert!(s.contains("1400 MHz"));
        assert!(s.contains("16KB"));
        assert!(s.contains("FR-FCFS"));
        assert!(s.contains("tCL=12"));
    }

    #[test]
    fn table_4_lists_sixteen_workloads() {
        let s = render_table_4();
        assert_eq!(
            s.matches("regular").count(),
            16,
            "12 regular + 4 irregular rows"
        );
    }
}
