//! # caps-bench — figure and table regeneration
//!
//! One module per table/figure of the paper's evaluation (§VI). Each
//! exposes a `compute` function returning structured rows and a `render`
//! function printing the same series the paper plots. The `src/bin/`
//! binaries are thin wrappers; `benches/` times the underlying machinery
//! with Criterion.

#![warn(missing_docs)]

pub mod fig01;
pub mod fig04;
pub mod fig05;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod tables;

use caps_json::{obj, Value};
use caps_metrics::{run_matrix, Engine, RunRecord, RunSpec};
use caps_workloads::{all_workloads, Scale, Workload};

/// Host topology metadata for benchmark report headers, so numbers in
/// committed `BENCH_*.json` files can be compared across machines:
/// physical core count, logical CPUs, SMT, the CPU model string, worker
/// pinning, and whether `workers` threads oversubscribe the physical
/// cores (the single-core-CI caveat made machine-readable).
pub fn host_json(workers: usize) -> Value {
    let t = caps_gpu_sim::topo::host_topology();
    obj(vec![
        ("physical_cores", Value::UInt(t.physical_cores as u64)),
        ("logical_cpus", Value::UInt(t.logical_cpus() as u64)),
        ("smt", Value::Bool(t.smt)),
        ("model", Value::Str(t.model.clone())),
        ("workers", Value::UInt(workers as u64)),
        ("oversubscribed", Value::Bool(t.oversubscribed(workers))),
        (
            "pinning",
            Value::Bool(caps_gpu_sim::topo::pinning_enabled()),
        ),
    ])
}

/// Scale selector shared by all figure binaries: `--small` runs the
/// reduced kernels (useful for smoke tests), default is paper scale.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    }
}

/// Apply a `--threads N` flag (if present) to the shared harness worker
/// count; without it the harness auto-detects from
/// `available_parallelism`. Shared by all figure binaries.
pub fn apply_threads_from_args() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            });
        caps_metrics::set_default_threads(n);
    }
}

/// Run `engines × workloads` and return records in row-major
/// (workload-major) order.
pub fn run_grid(workloads: &[Workload], engines: &[Engine], scale: Scale) -> Vec<RunRecord> {
    let specs: Vec<RunSpec> = workloads
        .iter()
        .flat_map(|&w| {
            engines.iter().map(move |&e| {
                let mut s = RunSpec::paper(w, e);
                s.scale = scale;
                s
            })
        })
        .collect();
    run_matrix(&specs)
}

/// The baseline-plus-Fig.10 engine set, baseline first.
pub fn engines_with_baseline() -> Vec<Engine> {
    let mut v = vec![Engine::Baseline];
    v.extend(Engine::FIGURE10);
    v
}

/// All 16 workloads (paper order).
pub fn workloads() -> Vec<Workload> {
    all_workloads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_workload_major() {
        let recs = run_grid(
            &[Workload::Jc1, Workload::Scn],
            &[Engine::Baseline, Engine::Caps],
            Scale::Small,
        );
        assert_eq!(recs.len(), 4);
        assert_eq!(
            (recs[0].workload.as_str(), recs[0].engine.as_str()),
            ("JC1", "BASE")
        );
        assert_eq!(
            (recs[1].workload.as_str(), recs[1].engine.as_str()),
            ("JC1", "CAPS")
        );
        assert_eq!(
            (recs[2].workload.as_str(), recs[2].engine.as_str()),
            ("SCN", "BASE")
        );
    }

    #[test]
    fn engine_list_is_baseline_plus_seven() {
        let e = engines_with_baseline();
        assert_eq!(e.len(), 8);
        assert_eq!(e[0], Engine::Baseline);
    }
}
