//! Figure 12 — prefetch coverage (a) and accuracy (b) per benchmark for
//! every prefetcher configuration.

use caps_metrics::{mean, Engine, Table};
use caps_workloads::{Scale, Workload};

use crate::run_grid;

/// Coverage and accuracy grids.
#[derive(Debug, Clone)]
pub struct Figure12 {
    /// Engine labels.
    pub engines: Vec<&'static str>,
    /// Benchmark abbreviations.
    pub workloads: Vec<String>,
    /// `coverage[w][e]`.
    pub coverage: Vec<Vec<f64>>,
    /// `accuracy[w][e]`.
    pub accuracy: Vec<Vec<f64>>,
}

/// Compute over an explicit workload list.
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure12 {
    let engines: Vec<Engine> = Engine::FIGURE10.to_vec();
    let recs = run_grid(workloads, &engines, scale);
    let per = engines.len();
    let mut coverage = Vec::new();
    let mut accuracy = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        coverage.push(
            (0..per)
                .map(|j| recs[i * per + j].stats.coverage())
                .collect(),
        );
        accuracy.push(
            (0..per)
                .map(|j| recs[i * per + j].stats.accuracy())
                .collect(),
        );
    }
    Figure12 {
        engines: engines.iter().map(|e| e.label()).collect(),
        workloads: workloads.iter().map(|w| w.abbr().to_string()).collect(),
        coverage,
        accuracy,
    }
}

/// Full suite.
pub fn compute(scale: Scale) -> Figure12 {
    compute_for(&crate::workloads(), scale)
}

fn render_grid(title: &str, fig: &Figure12, grid: &[Vec<f64>]) -> String {
    let mut header = vec!["bench"];
    header.extend(fig.engines.iter());
    let mut t = Table::new(&header);
    for (i, w) in fig.workloads.iter().enumerate() {
        let mut cells = vec![w.clone()];
        cells.extend(grid[i].iter().map(|&x| format!("{:.1}%", x * 100.0)));
        t.row(cells);
    }
    let mut cells = vec!["Mean".to_string()];
    for j in 0..fig.engines.len() {
        let col: Vec<f64> = grid.iter().map(|r| r[j]).collect();
        cells.push(format!("{:.1}%", mean(&col) * 100.0));
    }
    t.row(cells);
    format!("{title}\n{}", t.render())
}

/// Render both panels.
pub fn render(fig: &Figure12) -> String {
    format!(
        "{}\n{}",
        render_grid("(a) Coverage", fig, &fig.coverage),
        render_grid("(b) Accuracy", fig, &fig.accuracy)
    )
}

/// Mean CAPS coverage and accuracy (the paper reports 18% / 97%).
pub fn caps_means(fig: &Figure12) -> (f64, f64) {
    let j = fig.engines.iter().position(|&e| e == "CAPS").expect("CAPS");
    let cov: Vec<f64> = fig.coverage.iter().map(|r| r[j]).collect();
    let acc: Vec<f64> = fig
        .accuracy
        .iter()
        .map(|r| r[j])
        .filter(|&a| a > 0.0)
        .collect();
    (mean(&cov), mean(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_prefetches_accurately_on_stride_kernels() {
        let fig = compute_for(&[Workload::Jc1], Scale::Small);
        let (cov, acc) = caps_means(&fig);
        assert!(cov > 0.0, "CAPS must cover some demand");
        assert!(
            acc > 0.8,
            "CAPS accuracy must be high on a stride kernel, got {acc}"
        );
        let s = render(&fig);
        assert!(s.contains("Coverage") && s.contains("Accuracy"));
    }
}
