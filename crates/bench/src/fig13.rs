//! Figure 13 — bandwidth overhead of prefetching: (a) memory request
//! traffic from the SMs, (b) data read from DRAM, both normalized to
//! the no-prefetch baseline.

use caps_metrics::{mean, Table};
use caps_workloads::{Scale, Workload};

use crate::run_grid;

/// Normalized traffic grids.
#[derive(Debug, Clone)]
pub struct Figure13 {
    /// Engine labels (prefetchers only; the baseline is the divisor).
    pub engines: Vec<&'static str>,
    /// Benchmark abbreviations.
    pub workloads: Vec<String>,
    /// `requests[w][e]`: SM→memory request traffic vs. baseline.
    pub requests: Vec<Vec<f64>>,
    /// `dram_reads[w][e]`: DRAM read traffic vs. baseline.
    pub dram_reads: Vec<Vec<f64>>,
}

/// Compute over an explicit workload list.
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure13 {
    let engines = crate::engines_with_baseline();
    let recs = run_grid(workloads, &engines, scale);
    let per = engines.len();
    let mut requests = Vec::new();
    let mut dram_reads = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        let base = &recs[i * per].stats;
        requests.push(
            (1..per)
                .map(|j| {
                    recs[i * per + j].stats.icnt_requests as f64 / base.icnt_requests.max(1) as f64
                })
                .collect(),
        );
        dram_reads.push(
            (1..per)
                .map(|j| recs[i * per + j].stats.dram_reads as f64 / base.dram_reads.max(1) as f64)
                .collect(),
        );
    }
    Figure13 {
        engines: engines[1..].iter().map(|e| e.label()).collect(),
        workloads: workloads.iter().map(|w| w.abbr().to_string()).collect(),
        requests,
        dram_reads,
    }
}

/// Full suite.
pub fn compute(scale: Scale) -> Figure13 {
    compute_for(&crate::workloads(), scale)
}

fn render_grid(title: &str, fig: &Figure13, grid: &[Vec<f64>]) -> String {
    let mut header = vec!["bench"];
    header.extend(fig.engines.iter());
    let mut t = Table::new(&header);
    for (i, w) in fig.workloads.iter().enumerate() {
        let mut cells = vec![w.clone()];
        cells.extend(grid[i].iter().map(|&x| format!("{x:.2}")));
        t.row(cells);
    }
    let mut cells = vec!["Mean".to_string()];
    for j in 0..fig.engines.len() {
        let col: Vec<f64> = grid.iter().map(|r| r[j]).collect();
        cells.push(format!("{:.2}", mean(&col)));
    }
    t.row(cells);
    format!("{title}\n{}", t.render())
}

/// Render both panels.
pub fn render(fig: &Figure13) -> String {
    format!(
        "{}\n{}",
        render_grid(
            "(a) Fetch requests from cores (normalized)",
            fig,
            &fig.requests
        ),
        render_grid("(b) Data read from DRAM (normalized)", fig, &fig.dram_reads)
    )
}

/// Mean CAPS request-traffic overhead (paper: ≈3%).
pub fn caps_request_overhead(fig: &Figure13) -> f64 {
    let j = fig.engines.iter().position(|&e| e == "CAPS").expect("CAPS");
    mean(&fig.requests.iter().map(|r| r[j]).collect::<Vec<_>>()) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_normalized_and_bounded() {
        let fig = compute_for(&[Workload::Scn], Scale::Small);
        assert_eq!(fig.requests[0].len(), 7);
        assert!(
            fig.requests[0].iter().all(|&x| x >= 0.9),
            "{:?}",
            fig.requests
        );
        let s = render(&fig);
        assert!(s.contains("DRAM"));
    }
}
