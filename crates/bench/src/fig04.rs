//! Figure 4 — the average loop-iteration counts of the four most
//! frequently executed loads per benchmark, with the "repeated loads /
//! total loads (by PC)" annotation, derived both from the workload
//! metadata (paper-reported values) and from the kernel IR itself.

use caps_metrics::Table;
use caps_workloads::Scale;

/// One benchmark's row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark abbreviation.
    pub workload: String,
    /// Mean iterations of the four most frequent loads (metadata).
    pub top4_iters: [f32; 4],
    /// Repeated (in-loop) static loads.
    pub looped_loads: u32,
    /// Total static loads by PC.
    pub total_loads: u32,
    /// Loads in loops as counted in the kernel IR we actually execute.
    pub ir_looped: usize,
    /// Static loads in the IR (a representative subset for benchmarks
    /// whose real static count exceeds what we model; see DESIGN.md).
    pub ir_total: usize,
}

/// Compute for all 16 workloads (static analysis — no simulation).
pub fn compute() -> Vec<Row> {
    crate::workloads()
        .into_iter()
        .map(|w| {
            let info = w.info();
            let k = w.kernel(Scale::Full);
            let loads = k.program.static_loads();
            Row {
                workload: info.abbr.to_string(),
                top4_iters: info.top4_iters,
                looped_loads: info.looped_loads,
                total_loads: info.total_loads,
                ir_looped: loads.iter().filter(|(_, _, l)| *l).count(),
                ir_total: loads.len(),
            }
        })
        .collect()
}

/// Render the figure's data.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "bench",
        "top-4 mean iters",
        "repeated/total (paper)",
        "in-loop/total (IR)",
    ]);
    for r in rows {
        let avg: f32 = r.top4_iters.iter().sum::<f32>() / 4.0;
        t.row(vec![
            r.workload.clone(),
            format!("{avg:.1}"),
            format!("{}/{}", r.looped_loads, r.total_loads),
            format!("{}/{}", r.ir_looped, r.ir_total),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_benchmarks_with_consistent_loop_flags() {
        let rows = compute();
        assert_eq!(rows.len(), 16);
        for r in &rows {
            // IR loop presence must agree with the declared ratio.
            assert_eq!(r.ir_looped > 0, r.looped_loads > 0, "{}", r.workload);
        }
        assert!(render(&rows).contains("MM"));
    }

    #[test]
    fn most_loads_are_not_in_loops() {
        // The paper's observation: deep loops are rare in GPU kernels.
        let rows = compute();
        let looped: u32 = rows.iter().map(|r| r.looped_loads).sum();
        let total: u32 = rows.iter().map(|r| r.total_loads).sum();
        assert!(looped * 2 < total, "looped {looped} of {total}");
    }
}
