//! Figure 5 / §IV — demonstration that CTA base addresses observed by
//! one SM are irregular in arrival order while the warp stride within
//! every CTA is a single kernel-wide constant: the two facts CAP is
//! built on.

use caps_gpu_sim::coalescer::coalesce;
use caps_gpu_sim::config::GpuConfig;
use caps_gpu_sim::isa::Op;
use caps_metrics::Table;
use caps_workloads::{Scale, Workload};

/// The demonstration data for one benchmark's first targeted load.
#[derive(Debug, Clone)]
pub struct Demo {
    /// Benchmark abbreviation.
    pub workload: String,
    /// CTA linear ids in an interleaved arrival order (one SM's view).
    pub ctas: Vec<u32>,
    /// Base line address of each CTA.
    pub bases: Vec<u64>,
    /// Deltas between consecutive bases (irregular).
    pub base_deltas: Vec<i64>,
    /// The intra-CTA warp strides measured per CTA (all equal).
    pub warp_strides: Vec<i64>,
}

/// Build the demonstration for `workload`'s first affine load, sampling
/// the CTAs one SM would receive under round-robin distribution.
pub fn compute_for(workload: Workload) -> Demo {
    let cfg = GpuConfig::fermi_gtx480();
    let k = workload.kernel(Scale::Full);
    let pattern = k
        .program
        .ops()
        .iter()
        .find_map(|op| match op {
            Op::Ld { pattern, .. } if pattern.is_affine() => Some(*pattern),
            _ => None,
        })
        .expect("workload has an affine load");
    // SM 0 receives CTAs 0, 15, 30, … under the initial round-robin.
    let ctas: Vec<u32> = (0..6u32)
        .map(|i| i * cfg.num_sms as u32)
        .filter(|&c| c < k.num_ctas())
        .collect();
    let mut bases = Vec::new();
    let mut warp_strides = Vec::new();
    let mut lines = Vec::new();
    for &c in &ctas {
        let coord = k.cta_coord(c);
        coalesce(&pattern, coord, 0, 0, 32, cfg.l1d.line_size, &mut lines);
        bases.push(lines[0]);
        coalesce(&pattern, coord, 1, 0, 32, cfg.l1d.line_size, &mut lines);
        let w1 = lines[0] as i64;
        warp_strides.push(w1 - bases.last().copied().expect("pushed") as i64);
    }
    let base_deltas = bases
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    Demo {
        workload: workload.abbr().to_string(),
        ctas,
        bases,
        base_deltas,
        warp_strides,
    }
}

/// Default demonstration: LPS, the paper's own example.
pub fn compute() -> Demo {
    compute_for(Workload::Lps)
}

/// Render the demonstration.
pub fn render(d: &Demo) -> String {
    let mut t = Table::new(&["CTA (arrival)", "base address", "Δ base", "warp stride"]);
    for i in 0..d.ctas.len() {
        t.row(vec![
            format!("{}", d.ctas[i]),
            format!("{:#x}", d.bases[i]),
            if i == 0 {
                "-".to_string()
            } else {
                format!("{}", d.base_deltas[i - 1])
            },
            format!("{}", d.warp_strides[i]),
        ]);
    }
    format!("{} (first targeted load)\n{}", d.workload, t.render())
}

/// The §IV facts: irregular base deltas, one common warp stride.
pub fn demonstrates_cap_premise(d: &Demo) -> bool {
    let strides_equal = d.warp_strides.windows(2).all(|w| w[0] == w[1]);
    let deltas_irregular = d.base_deltas.windows(2).any(|w| w[0] != w[1]);
    strides_equal && deltas_irregular
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lps_demonstrates_the_premise() {
        let d = compute();
        assert!(demonstrates_cap_premise(&d), "{d:?}");
        assert!(render(&d).contains("warp stride"));
    }

    #[test]
    fn mm_demonstrates_the_premise_too() {
        let d = compute_for(Workload::Mm);
        assert!(demonstrates_cap_premise(&d), "{d:?}");
    }
}
