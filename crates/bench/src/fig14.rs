//! Figure 14 — timeliness of prefetching: (a) the early-prefetch ratio
//! (prefetched data evicted before use) for the stride prefetchers and
//! CAPS with/without the eager warp wake-up; (b) the mean
//! prefetch-to-demand distance of CAP on LRR, the unmodified two-level
//! scheduler, and the prefetch-aware two-level scheduler.

use caps_metrics::{mean, Engine, Table};
use caps_workloads::{Scale, Workload};

use crate::run_grid;

/// Both panels, averaged over the workload set.
#[derive(Debug, Clone)]
pub struct Figure14 {
    /// Panel (a): engine label → mean early-prefetch ratio.
    pub early_ratio: Vec<(&'static str, f64)>,
    /// Panel (b): scheduler label → mean prefetch distance (cycles).
    pub distance: Vec<(&'static str, f64)>,
}

/// Compute over an explicit workload list.
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure14 {
    // (a) early prefetch ratio.
    let a_engines = [
        Engine::Intra,
        Engine::Inter,
        Engine::Mta,
        Engine::Caps,
        Engine::CapsNoWakeup,
    ];
    let recs = run_grid(workloads, &a_engines, scale);
    let per = a_engines.len();
    let mut early_ratio = Vec::new();
    for (j, e) in a_engines.iter().enumerate() {
        let vals: Vec<f64> = (0..workloads.len())
            .map(|i| recs[i * per + j].stats.early_prefetch_ratio())
            .collect();
        let label = match e {
            Engine::CapsNoWakeup => "CAPS w/o Wakeup",
            other => other.label(),
        };
        early_ratio.push((label, mean(&vals)));
    }

    // (b) prefetch distance under the three schedulers (paper: LRR,
    // TLV, PA-TLV with the CAP engine fixed).
    let b_engines = [Engine::CapsOnLrr, Engine::CapsOnTlv, Engine::Caps];
    let labels = ["LRR", "TLV", "PA-TLV"];
    let recs = run_grid(workloads, &b_engines, scale);
    let per = b_engines.len();
    let mut distance = Vec::new();
    for (j, &label) in labels.iter().enumerate() {
        let vals: Vec<f64> = (0..workloads.len())
            .map(|i| recs[i * per + j].stats.mean_prefetch_distance())
            .filter(|&d| d > 0.0)
            .collect();
        distance.push((label, mean(&vals)));
    }
    Figure14 {
        early_ratio,
        distance,
    }
}

/// Full suite.
pub fn compute(scale: Scale) -> Figure14 {
    compute_for(&crate::workloads(), scale)
}

/// Render both panels.
pub fn render(fig: &Figure14) -> String {
    let mut t = Table::new(&["engine", "early prefetch ratio"]);
    for (label, v) in &fig.early_ratio {
        t.row(vec![label.to_string(), format!("{:.2}%", v * 100.0)]);
    }
    let mut d = Table::new(&["scheduler", "mean prefetch distance (cycles)"]);
    for (label, v) in &fig.distance {
        d.row(vec![label.to_string(), format!("{v:.1}")]);
    }
    format!(
        "(a) Early prefetch ratio\n{}\n(b) Prefetch distance\n{}",
        t.render(),
        d.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_expected_series() {
        let fig = compute_for(&[Workload::Jc1], Scale::Small);
        assert_eq!(fig.early_ratio.len(), 5);
        assert_eq!(fig.distance.len(), 3);
        assert!(fig.early_ratio.iter().any(|(l, _)| *l == "CAPS w/o Wakeup"));
        let s = render(&fig);
        assert!(s.contains("PA-TLV"));
    }
}
