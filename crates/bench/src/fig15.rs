//! Figure 15 — GPU energy under CAPS normalized to the baseline
//! (GPUWattch-style model plus the CAPS table costs from §V-D).

use caps_metrics::{mean, Engine, Table};
use caps_workloads::{Scale, Workload};

use crate::run_grid;

/// Per-benchmark normalized energy plus the mean.
#[derive(Debug, Clone)]
pub struct Figure15 {
    /// (benchmark, CAPS energy / baseline energy).
    pub rows: Vec<(String, f64)>,
    /// Mean across the suite (paper: 0.98).
    pub mean: f64,
}

/// Compute over an explicit workload list.
pub fn compute_for(workloads: &[Workload], scale: Scale) -> Figure15 {
    let engines = [Engine::Baseline, Engine::Caps];
    let recs = run_grid(workloads, &engines, scale);
    let mut rows = Vec::new();
    for (i, &w) in workloads.iter().enumerate() {
        let base = recs[i * 2].energy.total_mj();
        let caps = recs[i * 2 + 1].energy.total_mj();
        rows.push((w.abbr().to_string(), caps / base));
    }
    let m = mean(&rows.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    Figure15 { rows, mean: m }
}

/// Full suite.
pub fn compute(scale: Scale) -> Figure15 {
    compute_for(&crate::workloads(), scale)
}

/// Render the figure.
pub fn render(fig: &Figure15) -> String {
    let mut t = Table::new(&["bench", "normalized energy"]);
    for (w, v) in &fig.rows {
        t.row(vec![w.clone(), format!("{v:.3}")]);
    }
    t.row(vec!["Mean".to_string(), format!("{:.3}", fig.mean)]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_ratio_is_near_unity() {
        let fig = compute_for(&[Workload::Scn], Scale::Small);
        assert!(fig.mean > 0.5 && fig.mean < 1.5, "mean {}", fig.mean);
        assert!(render(&fig).contains("Mean"));
    }
}
