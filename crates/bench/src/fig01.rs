//! Figure 1 — accuracy and prefetch distance (cycle gap) of simple
//! inter-warp stride prefetching on matrixMul, as the targeted warp
//! distance sweeps 1..10.
//!
//! MM has 8 warps per CTA: at distance ≥ 7 essentially every prediction
//! crosses a CTA boundary, where the next CTA's base address is
//! unrelated — the accuracy cliff that motivates CAP.

use caps_metrics::{run_matrix, Engine, RunSpec, Table};
use caps_workloads::{Scale, Workload};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Warp distance the prefetcher targets.
    pub distance: u32,
    /// Prefetch accuracy (consumed / issued).
    pub accuracy: f64,
    /// Mean cycle gap between prefetch issue and the demand.
    pub gap_cycles: f64,
}

/// Sweep distances 1..=10 on MM.
pub fn compute(scale: Scale) -> Vec<Point> {
    let specs: Vec<RunSpec> = (1..=10)
        .map(|d| {
            let mut s = RunSpec::paper(Workload::Mm, Engine::InterAtDistance(d));
            s.scale = scale;
            s
        })
        .collect();
    let recs = run_matrix(&specs);
    recs.iter()
        .zip(1..=10u32)
        .map(|(r, d)| Point {
            distance: d,
            accuracy: r.stats.accuracy(),
            gap_cycles: r.stats.mean_prefetch_distance(),
        })
        .collect()
}

/// Render the two series.
pub fn render(points: &[Point]) -> String {
    let mut t = Table::new(&["warp distance", "accuracy", "gap (cycles)"]);
    for p in points {
        t.row(vec![
            format!("{}", p.distance),
            format!("{:.1}%", p.accuracy * 100.0),
            format!("{:.0}", p.gap_cycles),
        ]);
    }
    t.render()
}

/// The headline property: accuracy within the CTA (distance ≤ 2) beats
/// accuracy across the boundary (distance ≥ 8), and the gap grows with
/// distance.
pub fn shows_cta_boundary_cliff(points: &[Point]) -> bool {
    let near: f64 = points[..2].iter().map(|p| p.accuracy).sum::<f64>() / 2.0;
    let far: f64 = points[7..].iter().map(|p| p.accuracy).sum::<f64>() / 3.0;
    near > far
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_ten_points() {
        let pts = compute(Scale::Small);
        assert_eq!(pts.len(), 10);
        assert!(render(&pts).contains("warp distance"));
    }
}
