//! The CTA-Aware Prefetcher (CAP, §V-B/§V-C).
//!
//! CAP exploits the paper's central observation: within one kernel every
//! CTA shares a single warp-to-warp stride Δ per load PC, while each CTA
//! has its own unpredictable base address θ. It therefore
//!
//! 1. captures θ per (CTA, PC) from each CTA's *leading warp* into the
//!    [`PerCtaTable`]s;
//! 2. computes Δ per PC from the first *trailing* warp of the leading CTA
//!    into the shared [`DistTable`];
//! 3. generates prefetches `base(CTA) + Δ·(w − w_lead)` for every
//!    trailing warp `w` of every registered CTA — in both trigger orders
//!    (Fig. 9a: bases settle before the stride; Fig. 9b: stride known
//!    before a trailing CTA's base);
//! 4. verifies every trailing demand fetch against its prediction and
//!    shuts prefetching off per-PC after 128 mispredictions;
//! 5. excludes indirect (data-dependent) loads and loads coalescing into
//!    more than four lines.

use caps_gpu_sim::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{line_base, Addr, CtaCoord, CtaSlot, Pc};

use crate::dist::{DistTable, DEFAULT_MISPREDICT_THRESHOLD, DIST_ENTRIES};
use crate::per_cta::{PerCtaTable, MAX_BASE_ADDRS, PER_CTA_ENTRIES};

/// Tuning knobs of the CTA-aware prefetcher; defaults follow the paper.
#[derive(Debug, Clone, Copy)]
pub struct CapConfig {
    /// PerCTA tables (one per hardware CTA slot; Fermi: 8).
    pub cta_slots: usize,
    /// Entries per PerCTA table.
    pub per_cta_entries: usize,
    /// Entries in the shared DIST table.
    pub dist_entries: usize,
    /// Misprediction-counter threshold (prefetch shut-off).
    pub mispredict_threshold: u8,
    /// Maximum coalesced lines a targeted load may produce.
    pub max_target_lines: usize,
    /// Cache line size (for aligning generated addresses).
    pub line_size: u32,
    /// Replacement policy when a table is full: `true` evicts the
    /// least-recently-updated entry (the paper's §V-B policy); `false`
    /// pins the first PCs seen, which avoids churn on kernels with more
    /// static loads than entries. The paper notes its benchmarks target
    /// 2–4 loads, where the policies coincide; see DESIGN.md.
    pub lru_replacement: bool,
}

impl Default for CapConfig {
    fn default() -> Self {
        CapConfig {
            cta_slots: 8,
            per_cta_entries: PER_CTA_ENTRIES,
            dist_entries: DIST_ENTRIES,
            mispredict_threshold: DEFAULT_MISPREDICT_THRESHOLD,
            max_target_lines: MAX_BASE_ADDRS,
            line_size: 128,
            lru_replacement: false,
        }
    }
}

/// The CTA-aware prefetch engine of one SM.
pub struct CtaAwarePrefetcher {
    cfg: CapConfig,
    tables: Vec<PerCtaTable>,
    dist: DistTable,
    table_accesses: u64,
    mispredicts: u64,
}

impl CtaAwarePrefetcher {
    /// Engine with paper-default parameters.
    pub fn new() -> Self {
        Self::with_config(CapConfig::default())
    }

    /// Engine with explicit parameters (ablations).
    pub fn with_config(cfg: CapConfig) -> Self {
        CtaAwarePrefetcher {
            tables: (0..cfg.cta_slots)
                .map(|_| PerCtaTable::with_policy(cfg.per_cta_entries, cfg.lru_replacement))
                .collect(),
            dist: DistTable::with_policy(
                cfg.dist_entries,
                cfg.mispredict_threshold,
                cfg.lru_replacement,
            ),
            cfg,
            table_accesses: 0,
            mispredicts: 0,
        }
    }

    /// The shared stride table (diagnostics/tests).
    pub fn dist(&self) -> &DistTable {
        &self.dist
    }

    /// The PerCTA table of `slot` (diagnostics/tests).
    pub fn per_cta(&self, slot: CtaSlot) -> &PerCtaTable {
        &self.tables[slot]
    }

    /// Generate prefetches for every trailing warp of the CTA in `slot`
    /// whose demand has not been observed, using stride `delta`.
    fn generate_for_slot(
        &mut self,
        slot: CtaSlot,
        pc: Pc,
        delta: i64,
        warps_per_cta: u32,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.generate_for_slot_masked(slot, pc, delta, warps_per_cta, u64::MAX, out);
    }

    /// [`Self::generate_for_slot`] restricted to warps whose bit is set
    /// in `eligible` (loop refreshes target only caught-up warps).
    fn generate_for_slot_masked(
        &mut self,
        slot: CtaSlot,
        pc: Pc,
        delta: i64,
        warps_per_cta: u32,
        eligible: u64,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.table_accesses += 1;
        let line_size = self.cfg.line_size;
        let table = &mut self.tables[slot];
        let Some(entry) = table.lookup(pc) else {
            return;
        };
        let lead = entry.leading_warp;
        for w in 0..warps_per_cta {
            if w == lead || entry.demand_seen(w) || eligible & (1u64 << w.min(63)) == 0 {
                continue;
            }
            let off = delta * (w as i64 - lead as i64);
            for &base in &entry.bases {
                let addr = base as i64 + off;
                if addr < 0 {
                    continue;
                }
                out.push(PrefetchRequest {
                    line: line_base(addr as Addr, line_size),
                    pc,
                    target_warp: Some(slot * warps_per_cta as usize + w as usize),
                });
            }
        }
    }

    /// Insert into DIST; when pinned-full, scrub a stride whose PC has
    /// no live PerCTA entry anywhere (dead metadata) and retry.
    fn dist_insert_scrubbing(&mut self, pc: Pc, delta: i64) -> bool {
        if self.dist.insert(pc, delta) {
            return true;
        }
        let dead = self
            .dist
            .pcs()
            .into_iter()
            .find(|&p| self.tables.iter().all(|t| t.probe(p).is_none()));
        if let Some(victim) = dead {
            self.dist.invalidate(victim);
            return self.dist.insert(pc, delta);
        }
        false
    }

    /// Case 1 (Fig. 9a): the stride was just detected — traverse every
    /// PerCTA table and prefetch for each CTA whose base is registered.
    fn generate_everywhere(
        &mut self,
        pc: Pc,
        delta: i64,
        warps_per_cta: u32,
        out: &mut Vec<PrefetchRequest>,
    ) {
        for slot in 0..self.tables.len() {
            if self.tables[slot].probe(pc).is_some() {
                self.generate_for_slot(slot, pc, delta, warps_per_cta, out);
            }
        }
    }
}

impl Default for CtaAwarePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for CtaAwarePrefetcher {
    fn name(&self) -> &'static str {
        "CAPS"
    }

    fn on_demand(&mut self, obs: &DemandObservation<'_>, out: &mut Vec<PrefetchRequest>) {
        // Indirect accesses: backward register tracing says the address
        // derives from loaded data — excluded from prefetch (§V-B).
        if !obs.is_affine {
            return;
        }
        // PerCTA + DIST lookups happen for every targeted load.
        self.table_accesses += 2;

        // A CTA slot we have never seen launch (defensive; the SM always
        // announces launches first).
        if obs.cta_slot >= self.tables.len() {
            return;
        }
        // Uncoalesced loads (> 4 lines) are not targeted; drop any state.
        if obs.lines.len() > self.cfg.max_target_lines {
            self.tables[obs.cta_slot].invalidate(obs.pc);
            return;
        }

        let slot = obs.cta_slot;
        let pc = obs.pc;
        let throttled = self.dist.throttled(pc);
        let known_stride = self.dist.stride(pc);

        let entry_state = {
            let table = &mut self.tables[slot];
            match table.lookup(pc) {
                None => EntryState::Absent,
                Some(e) if e.leading_warp == obs.warp_in_cta => EntryState::LeadingAgain,
                Some(_) => EntryState::Trailing,
            }
        };

        match entry_state {
            EntryState::Absent => {
                // This warp is the leading warp of its CTA for this PC:
                // register the base-address vector. Exhausted entries
                // (all demands observed) are evicted first when full.
                let registered = self.tables[slot]
                    .insert_full(pc, obs.warp_in_cta, obs.lines, obs.iter, obs.warps_per_cta)
                    .is_some();
                self.table_accesses += 1;
                // Case 2 (Fig. 9b): the stride is already known — issue
                // prefetches for all trailing warps of *this* CTA.
                if registered {
                    if let Some(delta) = known_stride {
                        if !throttled {
                            self.generate_for_slot(slot, pc, delta, obs.warps_per_cta, out);
                        }
                    }
                }
            }
            EntryState::LeadingAgain => {
                // Loop re-execution by the leading warp: refresh bases
                // for the new iteration and prefetch for the trailing
                // warps that consumed the previous one.
                let caught_up = self.tables[slot].refresh(pc, obs.lines, obs.iter);
                self.table_accesses += 1;
                if let Some(delta) = known_stride {
                    if !throttled {
                        self.generate_for_slot_masked(
                            slot,
                            pc,
                            delta,
                            obs.warps_per_cta,
                            caught_up,
                            out,
                        );
                    }
                }
            }
            EntryState::Trailing => {
                let (lead, bases, entry_iter) = {
                    let e = self.tables[slot].probe(pc).expect("trailing implies entry");
                    (e.leading_warp, e.bases.clone(), e.iter)
                };
                let dw = obs.warp_in_cta as i64 - lead as i64;
                debug_assert!(dw != 0);
                // Detection and verification compare addresses of two
                // warps executing the *same* dynamic instance of the
                // load; a trailing warp in a different loop iteration
                // than the captured bases carries no information.
                let same_iter = entry_iter == obs.iter;
                match known_stride {
                    None if same_iter => {
                        // Stride detection from two warps of one CTA. All
                        // per-line candidate strides must agree (§V-B).
                        match stride_candidate(&bases, obs.lines, dw) {
                            Some(delta) => {
                                let resident = self.dist_insert_scrubbing(pc, delta);
                                self.table_accesses += 1;
                                self.tables[slot]
                                    .lookup(pc)
                                    .expect("live")
                                    .mark_demand(obs.warp_in_cta);
                                // Case 1 (Fig. 9a): prefetch for all
                                // registered CTAs.
                                if resident {
                                    self.generate_everywhere(pc, delta, obs.warps_per_cta, out);
                                }
                            }
                            None => {
                                // Not a striding load: invalidate.
                                self.tables[slot].invalidate(pc);
                            }
                        }
                    }
                    Some(delta) if same_iter => {
                        // Verification: every demand fetch recomputes its
                        // prediction and compares (§V-B).
                        let predicted_ok = bases.len() == obs.lines.len()
                            && bases.iter().zip(obs.lines).all(|(&b, &l)| {
                                let p = b as i64 + delta * dw;
                                p >= 0 && line_base(p as Addr, self.cfg.line_size) == l
                            });
                        if !predicted_ok {
                            self.dist.mispredict(pc);
                            self.mispredicts += 1;
                        }
                        self.tables[slot]
                            .lookup(pc)
                            .expect("live")
                            .mark_demand(obs.warp_in_cta);
                    }
                    _ => {
                        // Iteration mismatch: record the demand only.
                        self.tables[slot]
                            .lookup(pc)
                            .expect("live")
                            .mark_demand(obs.warp_in_cta);
                    }
                }
            }
        }
    }

    fn on_cta_launch(&mut self, cta_slot: CtaSlot, cta: CtaCoord) {
        // One PerCTA table per hardware CTA slot: configurations with
        // more resident CTAs (e.g. Kepler-class, 16 slots) get more
        // tables, exactly as the paper's Table II arithmetic scales.
        if cta_slot >= self.tables.len() {
            let entries = self.cfg.per_cta_entries;
            let lru = self.cfg.lru_replacement;
            self.tables
                .resize_with(cta_slot + 1, || PerCtaTable::with_policy(entries, lru));
        }
        self.tables[cta_slot].reset(cta);
    }

    fn on_cta_complete(&mut self, cta_slot: CtaSlot) {
        if cta_slot < self.tables.len() {
            self.tables[cta_slot].clear();
        }
    }

    fn table_accesses(&self) -> u64 {
        self.table_accesses
    }

    fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

enum EntryState {
    Absent,
    LeadingAgain,
    Trailing,
}

/// The single stride implied by two base vectors `dw` warps apart, if one
/// exists: all per-line strides must be equal and divide evenly.
fn stride_candidate(bases: &[Addr], lines: &[Addr], dw: i64) -> Option<i64> {
    if bases.is_empty() || bases.len() != lines.len() || dw == 0 {
        return None;
    }
    let mut delta = None;
    for (&b, &l) in bases.iter().zip(lines) {
        let diff = l as i64 - b as i64;
        if diff % dw != 0 {
            return None;
        }
        let d = diff / dw;
        match delta {
            None => delta = Some(d),
            Some(prev) if prev != d => return None,
            Some(_) => {}
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(
        pc: Pc,
        cta_slot: CtaSlot,
        cta_linear: u32,
        warp_in_cta: u32,
        lines: &'a [Addr],
    ) -> DemandObservation<'a> {
        DemandObservation {
            cycle: 0,
            pc,
            cta_slot,
            cta: CtaCoord::from_linear(cta_linear, 100),
            warp_in_cta,
            warp_slot: cta_slot * 4 + warp_in_cta as usize,
            warps_per_cta: 4,
            lines,
            is_affine: true,
            iter: 0,
        }
    }

    fn launch(p: &mut CtaAwarePrefetcher, slot: CtaSlot, linear: u32) {
        p.on_cta_launch(slot, CtaCoord::from_linear(linear, 100));
    }

    #[test]
    fn case1_bases_before_stride_fig9a() {
        // A0, B0, C0 register bases; A1 detects Δ; prefetches must fire
        // for trailing warps of ALL registered CTAs.
        let mut p = CtaAwarePrefetcher::new();
        for (slot, linear) in [(0, 0), (1, 7), (2, 11)] {
            launch(&mut p, slot, linear);
        }
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x10000]), &mut out); // A0
        p.on_demand(&obs(8, 1, 7, 0, &[0x90000]), &mut out); // B0
        p.on_demand(&obs(8, 2, 11, 0, &[0x50000]), &mut out); // C0
        assert!(out.is_empty(), "no stride yet — no prefetches");
        p.on_demand(&obs(8, 0, 0, 1, &[0x10000 + 512]), &mut out); // A1 → Δ=512
        assert_eq!(p.dist().stride(8), Some(512));
        // A: warps 2,3 (A0 led, A1 seen); B: 1,2,3; C: 1,2,3 → 8 reqs.
        assert_eq!(out.len(), 8);
        assert!(out.contains(&PrefetchRequest {
            line: 0x90000 + 512,
            pc: 8,
            target_warp: Some(4 + 1),
        }));
        assert!(out.contains(&PrefetchRequest {
            line: 0x50000 + 3 * 512,
            pc: 8,
            target_warp: Some(2 * 4 + 3),
        }));
    }

    #[test]
    fn case2_stride_before_base_fig9b() {
        // Stride learned in CTA A; later B0 registers its base → B's
        // trailing warps are prefetched immediately.
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x10000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x10200]), &mut out); // Δ=512
        out.clear();
        launch(&mut p, 1, 9);
        p.on_demand(&obs(8, 1, 9, 0, &[0x70000]), &mut out); // B0
        let lines: Vec<Addr> = out.iter().map(|r| r.line).collect();
        assert_eq!(lines, vec![0x70000 + 512, 0x70000 + 1024, 0x70000 + 1536]);
        assert_eq!(out[0].target_warp, Some(4 + 1));
    }

    #[test]
    fn multi_line_base_vector_prefetches_all_lines() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000, 0x8000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x1000 + 256, 0x8000 + 256]), &mut out);
        // Δ=256, warps 2 and 3 × 2 lines = 4 prefetches.
        assert_eq!(out.len(), 4);
        assert!(out.iter().any(|r| r.line == line_base(0x1000 + 512, 128)));
        assert!(out.iter().any(|r| r.line == line_base(0x8000 + 768, 128)));
    }

    #[test]
    fn inconsistent_per_line_strides_invalidate_entry() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000, 0x8000]), &mut out);
        // Line 0 strides by 256, line 1 by 512 → not a striding load.
        p.on_demand(&obs(8, 0, 0, 1, &[0x1000 + 256, 0x8000 + 512]), &mut out);
        assert!(out.is_empty());
        assert!(p.per_cta(0).probe(8).is_none(), "entry invalidated");
        assert_eq!(p.dist().stride(8), None);
    }

    #[test]
    fn indirect_loads_are_excluded() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        let mut o = obs(8, 0, 0, 0, &[0x1000]);
        o.is_affine = false;
        p.on_demand(&o, &mut out);
        assert!(out.is_empty());
        assert!(
            p.per_cta(0).is_empty(),
            "indirect loads never enter the tables"
        );
    }

    #[test]
    fn uncoalesced_loads_are_not_targeted() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        let lines: Vec<Addr> = (0..6).map(|i| i * 128).collect();
        p.on_demand(&obs(8, 0, 0, 0, &lines), &mut out);
        assert!(p.per_cta(0).is_empty());
        assert!(out.is_empty());
    }

    #[test]
    fn misprediction_counter_throttles_prefetch() {
        let mut p = CtaAwarePrefetcher::with_config(CapConfig {
            mispredict_threshold: 2,
            ..CapConfig::default()
        });
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x1200]), &mut out); // Δ=512
        out.clear();
        // Two wrong demands → counter hits threshold.
        p.on_demand(&obs(8, 0, 0, 2, &[0x9000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 3, &[0xa000]), &mut out);
        assert_eq!(p.mispredicts(), 2);
        assert!(p.dist().throttled(8));
        // A new CTA registers a base: throttled → no prefetches.
        launch(&mut p, 1, 5);
        out.clear();
        p.on_demand(&obs(8, 1, 5, 0, &[0x40000]), &mut out);
        assert!(out.is_empty(), "throttled PC must not prefetch");
    }

    #[test]
    fn correct_predictions_do_not_mispredict() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x1200]), &mut out);
        p.on_demand(&obs(8, 0, 0, 2, &[0x1400]), &mut out);
        p.on_demand(&obs(8, 0, 0, 3, &[0x1600]), &mut out);
        assert_eq!(p.mispredicts(), 0);
        assert!(!p.dist().throttled(8));
    }

    #[test]
    fn loop_refresh_prefetches_only_caught_up_warps() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x1200]), &mut out); // Δ=512, iter 0
        let mut o2 = obs(8, 0, 0, 2, &[0x1400]);
        o2.iter = 0;
        p.on_demand(&o2, &mut out); // warp 2 caught up; warp 3 lags
        out.clear();
        // Leading warp re-executes the PC at iteration 1 (base moved).
        let mut lead = obs(8, 0, 0, 0, &[0x5000]);
        lead.iter = 1;
        p.on_demand(&lead, &mut out);
        let lines: Vec<Addr> = out.iter().map(|r| r.line).collect();
        // Only warps 1 and 2 (who consumed iteration 0) are targeted;
        // warp 3 would receive far-too-early data (Fig. 14a).
        assert_eq!(lines, vec![0x5000 + 512, 0x5000 + 1024]);
    }

    #[test]
    fn demand_seen_warps_are_skipped() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 2, &[0x1400]), &mut out); // Δ=(0x400)/2=512
                                                            // Warp 2 led detection; prefetches go to warps 1 and 3 only.
        let targets: Vec<_> = out.iter().map(|r| r.target_warp).collect();
        assert_eq!(targets, vec![Some(1), Some(3)]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x10000]), &mut out);
        p.on_demand(&obs(8, 0, 0, 1, &[0x10000 - 512]), &mut out);
        assert_eq!(p.dist().stride(8), Some(-512));
        let lines: Vec<Addr> = out.iter().map(|r| r.line).collect();
        assert_eq!(lines, vec![0x10000 - 1024, 0x10000 - 1536]);
    }

    #[test]
    fn cta_completion_clears_slot_state() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        p.on_cta_complete(0);
        assert!(p.per_cta(0).is_empty());
        // A new CTA in the slot re-registers from scratch.
        launch(&mut p, 0, 42);
        p.on_demand(&obs(8, 0, 42, 1, &[0x7000]), &mut out);
        let e = p.per_cta(0).probe(8).unwrap();
        assert_eq!(e.leading_warp, 1, "first issuing warp becomes leading");
    }

    #[test]
    fn stride_candidate_math() {
        assert_eq!(stride_candidate(&[100], &[300], 2), Some(100));
        assert_eq!(stride_candidate(&[100], &[301], 2), None, "non-divisible");
        assert_eq!(stride_candidate(&[100, 200], &[300, 400], 2), Some(100));
        assert_eq!(
            stride_candidate(&[100, 200], &[300, 500], 2),
            None,
            "inconsistent"
        );
        assert_eq!(stride_candidate(&[], &[], 1), None);
        assert_eq!(
            stride_candidate(&[100], &[200, 300], 1),
            None,
            "length mismatch"
        );
    }

    #[test]
    fn table_accesses_are_counted() {
        let mut p = CtaAwarePrefetcher::new();
        launch(&mut p, 0, 0);
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, 0, 0, &[0x1000]), &mut out);
        assert!(p.table_accesses() >= 3);
    }
}
