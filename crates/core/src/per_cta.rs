//! The PerCTA table (§V-B).
//!
//! One table per hardware CTA slot. Each entry stores, for one targeted
//! load PC: the leading warp id (the first warp of this CTA to execute
//! that PC) and the base-address vector captured from that warp — up to
//! four coalesced line addresses, since loads producing more than four
//! accesses are not targeted. Entries are replaced least-recently-updated.
//!
//! Hardware layout (Table I): PC (4 B) + leading warp id (1 B) +
//! 4×4 B base-address vector = 21 B per entry, four entries per CTA.

use caps_gpu_sim::linemap::LineMap;
use caps_gpu_sim::types::{Addr, CtaCoord, Pc};

/// Entries per PerCTA table (paper default).
pub const PER_CTA_ENTRIES: usize = 4;

/// Maximum coalesced accesses a targeted load may produce (§V-B).
pub const MAX_BASE_ADDRS: usize = 4;

/// Bytes of one PerCTA entry as specified in Table I.
pub const PER_CTA_ENTRY_BYTES: usize = 4 + 1 + MAX_BASE_ADDRS * 4;

/// One PerCTA entry: the base addresses a leading warp computed for one
/// load PC.
#[derive(Debug, Clone)]
pub struct PerCtaEntry {
    /// Load PC this entry tracks.
    pub pc: Pc,
    /// Warp (index within the CTA) that registered the bases.
    pub leading_warp: u32,
    /// Base line addresses captured from the leading warp (≤ 4).
    pub bases: Vec<Addr>,
    /// Bitmask of warps (by index within the CTA) whose demand fetch for
    /// this PC was already observed — prefetching for them is pointless.
    pub demand_seen: u64,
    /// Loop iteration of the leading warp when the bases were captured.
    /// Address verification only compares demands from the *same*
    /// iteration — comparing across iterations of a loop load would
    /// misattribute the loop stride as a misprediction.
    pub iter: u32,
    lru: u64,
}

/// The PerCTA table of one CTA slot.
///
/// `entries` remains the source of truth for iteration and replacement
/// order (both architecturally visible); `index` is a flat PC → position
/// map layered on top so the per-demand `lookup`/`probe` on the issue
/// path costs one hash probe instead of a scan. Its generation-based
/// O(1) `clear` is what makes the per-CTA-launch `reset` free.
#[derive(Debug, Default)]
pub struct PerCtaTable {
    entries: Vec<PerCtaEntry>,
    index: LineMap<usize>,
    capacity: usize,
    replace_when_full: bool,
    clock: u64,
    /// The CTA currently owning this slot (None when free).
    pub cta: Option<CtaCoord>,
}

impl PerCtaTable {
    /// Empty table with the paper's default capacity and
    /// least-recently-updated replacement (§V-B).
    pub fn new() -> Self {
        Self::with_capacity(PER_CTA_ENTRIES)
    }

    /// Empty table with `capacity` entries and LRU replacement.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, true)
    }

    /// Explicit replacement policy: `replace_when_full = false` pins the
    /// first `capacity` load PCs of each CTA instead of churning — an
    /// implementation choice for kernels with more static loads than
    /// entries (see DESIGN.md).
    pub fn with_policy(capacity: usize, replace_when_full: bool) -> Self {
        assert!(capacity > 0);
        PerCtaTable {
            entries: Vec::with_capacity(capacity),
            index: LineMap::with_capacity(capacity),
            capacity,
            replace_when_full,
            clock: 0,
            cta: None,
        }
    }

    /// Re-initialize for a newly launched CTA.
    pub fn reset(&mut self, cta: CtaCoord) {
        self.entries.clear();
        self.index.clear();
        self.clock = 0;
        self.cta = Some(cta);
    }

    /// Drop all state (CTA completed).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.cta = None;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find the entry for `pc`.
    pub fn lookup(&mut self, pc: Pc) -> Option<&mut PerCtaEntry> {
        let i = *self.index.get(pc as u64)?;
        Some(&mut self.entries[i])
    }

    /// Immutable probe (no LRU effect).
    pub fn probe(&self, pc: Pc) -> Option<&PerCtaEntry> {
        let i = *self.index.get(pc as u64)?;
        Some(&self.entries[i])
    }

    /// Register the leading warp's bases for `pc`. When the table is
    /// full, either evicts the least-recently-updated entry (§V-B) or —
    /// with pinning — drops the insertion. Returns the fresh entry, or
    /// `None` when pinned-full.
    pub fn insert(
        &mut self,
        pc: Pc,
        leading_warp: u32,
        bases: &[Addr],
    ) -> Option<&mut PerCtaEntry> {
        self.insert_at_iter(pc, leading_warp, bases, 0)
    }

    /// [`Self::insert`] with the leading warp's loop iteration recorded.
    pub fn insert_at_iter(
        &mut self,
        pc: Pc,
        leading_warp: u32,
        bases: &[Addr],
        iter: u32,
    ) -> Option<&mut PerCtaEntry> {
        self.insert_full(pc, leading_warp, bases, iter, u32::MAX)
    }

    /// Full insertion: when the table is full, an *exhausted* entry — one
    /// whose demand mask covers every warp of the CTA, so it can never
    /// generate another prefetch — is evicted first; otherwise the policy
    /// flag decides between least-recently-updated eviction (§V-B) and
    /// pinning.
    pub fn insert_full(
        &mut self,
        pc: Pc,
        leading_warp: u32,
        bases: &[Addr],
        iter: u32,
        warps_per_cta: u32,
    ) -> Option<&mut PerCtaEntry> {
        debug_assert!(bases.len() <= MAX_BASE_ADDRS);
        debug_assert!(self.lookup(pc).is_none(), "insert over live entry");
        self.clock += 1;
        let clock = self.clock;
        if self.entries.len() == self.capacity {
            let exhausted = self
                .entries
                .iter()
                .position(|e| e.all_demands_seen(warps_per_cta));
            if let Some(victim) = exhausted {
                self.remove_at(victim);
            } else if !self.replace_when_full {
                return None;
            } else {
                // Least-recently-updated replacement (§V-B).
                let victim = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("full table has a victim");
                self.remove_at(victim);
            }
        }
        self.index.insert(pc as u64, self.entries.len());
        self.entries.push(PerCtaEntry {
            pc,
            leading_warp,
            bases: bases.to_vec(),
            demand_seen: 1u64 << leading_warp.min(63),
            iter,
            lru: clock,
        });
        self.entries.last_mut()
    }

    /// `swap_remove` the entry at `i`, fixing the index of the entry
    /// moved into its place.
    fn remove_at(&mut self, i: usize) {
        let removed = self.entries.swap_remove(i);
        self.index.remove(removed.pc as u64);
        if i < self.entries.len() {
            self.index.insert(self.entries[i].pc as u64, i);
        }
    }

    /// Refresh an existing entry's bases (leading warp re-executed the
    /// load in a new loop iteration). Returns the *previous* demand mask:
    /// warps set there consumed the last iteration and are about to want
    /// the new one — the right prefetch targets. Warps lagging several
    /// iterations behind are excluded until they catch up (prefetching
    /// for them would be far too early, Fig. 14a).
    pub fn refresh(&mut self, pc: Pc, bases: &[Addr], iter: u32) -> u64 {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.lookup(pc) {
            let lead = e.leading_warp;
            let prev_mask = e.demand_seen;
            e.bases.clear();
            e.bases.extend_from_slice(bases);
            e.demand_seen = 1u64 << lead.min(63);
            e.iter = iter;
            e.lru = clock;
            prev_mask
        } else {
            0
        }
    }

    /// Touch the entry's LRU stamp (it was used for verification or
    /// prefetch generation).
    pub fn touch(&mut self, pc: Pc) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.lookup(pc) {
            e.lru = clock;
        }
    }

    /// Invalidate the entry for `pc` (stride turned out irregular).
    /// Order-preserving removal (iteration order is visible to the
    /// prefetch-generation traversal), so later entries shift down and
    /// are re-indexed — bounded by the 4-entry capacity.
    pub fn invalidate(&mut self, pc: Pc) {
        let Some(&i) = self.index.get(pc as u64) else {
            return;
        };
        self.entries.remove(i);
        self.index.remove(pc as u64);
        for j in i..self.entries.len() {
            self.index.insert(self.entries[j].pc as u64, j);
        }
    }

    /// Iterate live entries (prefetch-generation traversal, Fig. 9a).
    pub fn entries(&self) -> impl Iterator<Item = &PerCtaEntry> {
        self.entries.iter()
    }

    /// Iterate live entries mutably.
    pub fn entries_mut(&mut self) -> impl Iterator<Item = &mut PerCtaEntry> {
        self.entries.iter_mut()
    }
}

impl PerCtaEntry {
    /// Whether warp `w` (index within the CTA) already issued its demand
    /// fetch for this PC.
    #[inline]
    pub fn demand_seen(&self, w: u32) -> bool {
        self.demand_seen & (1u64 << w.min(63)) != 0
    }

    /// Record warp `w`'s demand fetch.
    #[inline]
    pub fn mark_demand(&mut self, w: u32) {
        self.demand_seen |= 1u64 << w.min(63);
    }

    /// Whether every warp of a `warps_per_cta`-warp CTA has issued its
    /// demand for this PC (the entry cannot prefetch anything further
    /// until a refresh).
    #[inline]
    pub fn all_demands_seen(&self, warps_per_cta: u32) -> bool {
        if warps_per_cta == u32::MAX {
            return false;
        }
        let mask = if warps_per_cta >= 64 {
            u64::MAX
        } else {
            (1u64 << warps_per_cta) - 1
        };
        self.demand_seen & mask == mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> CtaCoord {
        CtaCoord {
            x: 1,
            y: 2,
            linear: 9,
        }
    }

    #[test]
    fn entry_layout_matches_table_i() {
        assert_eq!(PER_CTA_ENTRY_BYTES, 21);
        assert_eq!(PER_CTA_ENTRIES, 4);
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        t.insert(0x40, 2, &[0x1000, 0x2000]);
        let e = t.lookup(0x40).unwrap();
        assert_eq!(e.leading_warp, 2);
        assert_eq!(e.bases, vec![0x1000, 0x2000]);
        assert!(e.demand_seen(2));
        assert!(!e.demand_seen(0));
    }

    #[test]
    fn lru_replacement_evicts_least_recently_updated() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        for pc in 0..4u32 {
            t.insert(pc * 8, 0, &[pc as Addr * 0x100]);
        }
        // Touch PC 0 so PC 8 becomes the LRU victim.
        t.touch(0);
        t.insert(0x999, 1, &[0xabc]);
        assert!(t.probe(0).is_some());
        assert!(t.probe(8).is_none(), "LRU entry evicted");
        assert!(t.probe(0x999).is_some());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn refresh_updates_bases_and_resets_demand_mask() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        t.insert(0x40, 1, &[0x1000]);
        t.lookup(0x40).unwrap().mark_demand(3);
        t.refresh(0x40, &[0x5000], 1);
        let e = t.lookup(0x40).unwrap();
        assert_eq!(e.bases, vec![0x5000]);
        assert!(e.demand_seen(1), "leading warp stays marked");
        assert!(
            !e.demand_seen(3),
            "trailing marks cleared for new iteration"
        );
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        t.insert(0x40, 0, &[0]);
        t.invalidate(0x40);
        assert!(t.probe(0x40).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn reset_clears_for_new_cta() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        t.insert(0x40, 0, &[0]);
        let c2 = CtaCoord {
            x: 5,
            y: 0,
            linear: 5,
        };
        t.reset(c2);
        assert!(t.is_empty());
        assert_eq!(t.cta, Some(c2));
    }

    #[test]
    fn demand_mask_saturates_at_63() {
        let mut t = PerCtaTable::new();
        t.reset(cta());
        let e = t.insert(0x40, 70, &[0]).unwrap();
        assert!(e.demand_seen(70));
        assert!(e.demand_seen(63));
    }

    #[test]
    fn pinned_table_drops_insertions_when_full() {
        let mut t = PerCtaTable::with_policy(2, false);
        t.reset(cta());
        assert!(t.insert(1, 0, &[0]).is_some());
        assert!(t.insert(2, 0, &[0]).is_some());
        assert!(t.insert(3, 0, &[0]).is_none(), "pinned-full drops");
        assert!(t.probe(1).is_some() && t.probe(2).is_some());
        assert_eq!(t.len(), 2);
    }
}
