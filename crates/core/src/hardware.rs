//! Hardware cost model of CAPS (§V-D, Tables I & II).
//!
//! The paper synthesized CAPS in RTL with the FreePDK 45 nm library and
//! sized the PerCTA table with CACTI. We reproduce the arithmetic of
//! Tables I/II exactly and carry the published energy/area figures as
//! constants for the energy model (Fig. 15).

use crate::dist::{DIST_ENTRIES, DIST_ENTRY_BYTES};
use crate::per_cta::{PER_CTA_ENTRIES, PER_CTA_ENTRY_BYTES};

/// CTA slots per SM in the Fermi baseline.
pub const CTAS_PER_SM: usize = 8;

/// Total DIST table bytes per SM (Table II: 36 bytes).
pub const DIST_TABLE_BYTES: usize = DIST_ENTRY_BYTES * DIST_ENTRIES;

/// Total PerCTA table bytes per SM (Table II: 672 bytes).
pub const PER_CTA_TABLE_BYTES: usize = PER_CTA_ENTRY_BYTES * PER_CTA_ENTRIES * CTAS_PER_SM;

/// Total CAPS storage per SM (Table II: 708 bytes).
pub const TOTAL_TABLE_BYTES: usize = DIST_TABLE_BYTES + PER_CTA_TABLE_BYTES;

/// Synthesized CAPS area (mm², FreePDK 45 nm + CACTI; §V-D).
pub const CAPS_AREA_MM2: f64 = 0.018;

/// One-SM die area of GF100 (mm², from the die photo; §V-D).
pub const SM_AREA_MM2: f64 = 22.0;

/// Dynamic energy per CAPS table access (pJ; §V-D).
pub const CAPS_ENERGY_PER_ACCESS_PJ: f64 = 15.07;

/// CAPS static power (µW; §V-D).
pub const CAPS_STATIC_POWER_UW: f64 = 550.0;

/// Area overhead of CAPS relative to one SM (the paper reports 0.08%).
pub fn area_overhead_fraction() -> f64 {
    CAPS_AREA_MM2 / SM_AREA_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_totals() {
        assert_eq!(DIST_TABLE_BYTES, 36);
        assert_eq!(PER_CTA_TABLE_BYTES, 672);
        assert_eq!(TOTAL_TABLE_BYTES, 708);
    }

    #[test]
    fn area_overhead_is_well_under_a_percent() {
        let f = area_overhead_fraction();
        assert!((f - 0.0008).abs() < 2e-4, "paper reports 0.08%, got {f}");
    }
}
