//! The Prefetch-Aware Scheduler (PAS, §V-A).
//!
//! PAS is "a simple enhancement to the conventional two-level scheduler":
//! a one-bit *leading warp marker* per warp, a ready queue whose front
//! segment holds leading warps, and an eager wake-up path that promotes a
//! pending warp when prefetched data bound to it arrives. The queue
//! machinery lives in [`caps_gpu_sim::sched::TwoLevelScheduler`]; this
//! module instantiates it with the PAS policy bits enabled and is the
//! canonical constructor used by the CAPS composition.

use caps_gpu_sim::config::{GpuConfig, SchedulerKind};
use caps_gpu_sim::sched::TwoLevelScheduler;

/// Construct the prefetch-aware two-level scheduler (ready-queue size per
/// `cfg`, leading-warp priority and eager wake-up enabled).
pub fn pas_scheduler(cfg: &GpuConfig) -> TwoLevelScheduler {
    TwoLevelScheduler::new(cfg.ready_queue_size, true, false)
}

/// Derive a CAPS GPU configuration from a baseline: same hardware, but
/// the warp scheduler is PAS. This is the configuration used for every
/// "CAPS" bar in the evaluation figures.
pub fn caps_config(base: &GpuConfig) -> GpuConfig {
    let mut cfg = base.clone();
    cfg.scheduler = SchedulerKind::Pas;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::sched::WarpScheduler;

    #[test]
    fn pas_scheduler_reports_its_name() {
        let cfg = GpuConfig::fermi_gtx480();
        let s = pas_scheduler(&cfg);
        assert_eq!(s.name(), "PA-TLV");
    }

    #[test]
    fn caps_config_only_changes_scheduler() {
        let base = GpuConfig::fermi_gtx480();
        let caps = caps_config(&base);
        assert_eq!(caps.scheduler, SchedulerKind::Pas);
        let mut caps_reverted = caps.clone();
        caps_reverted.scheduler = base.scheduler;
        assert_eq!(caps_reverted, base);
    }

    #[test]
    fn leading_warp_priority_is_active() {
        let cfg = GpuConfig::fermi_gtx480();
        let mut s = pas_scheduler(&cfg);
        // Fill the ready queue with trailing warps, then launch a leader.
        for w in 0..cfg.ready_queue_size {
            s.on_launch(w, false, 0);
        }
        s.on_launch(99, true, 0);
        assert_eq!(s.ready_order()[0], 99, "leading warp hoisted to the front");
    }
}
