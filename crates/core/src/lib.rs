//! # caps-core — CTA-Aware Prefetching and Scheduling (CAPS)
//!
//! The primary contribution of Koo et al., *CTA-Aware Prefetching and
//! Scheduling for GPU* (IPDPS 2018), implemented against the
//! [`caps_gpu_sim`] simulator substrate:
//!
//! * [`cap::CtaAwarePrefetcher`] — the CTA-Aware Prefetcher: per-CTA-slot
//!   [`per_cta::PerCtaTable`]s capture each CTA's base-address vector via
//!   its leading warp; the shared [`dist::DistTable`] holds the
//!   kernel-wide warp stride Δ per load PC with a misprediction-counter
//!   shut-off; prefetches target every trailing warp of every resident
//!   CTA (Fig. 9 cases 1 and 2), with indirect and uncoalesced loads
//!   excluded.
//! * [`pas`] — the Prefetch-Aware Scheduler: a two-level scheduler with
//!   leading warps hoisted to the ready-queue front and eager wake-up of
//!   warps whose prefetched data arrives.
//! * [`hardware`] — the Table I/II storage arithmetic and published
//!   area/energy figures.
//!
//! ## Running a kernel under CAPS
//!
//! ```
//! use caps_core::{caps_factory, pas::caps_config};
//! use caps_gpu_sim::prelude::*;
//!
//! let pat = AddrPattern::Affine(AffinePattern::dense(
//!     0x1000_0000,
//!     CtaTerm::Linear { pitch: 1 << 16 },
//! ));
//! let prog = ProgramBuilder::new().ld(pat).wait().alu(16).build();
//! let kernel = Kernel::new("demo", (16, 1), 128, prog);
//!
//! let cfg = caps_config(&GpuConfig::test_small()); // PAS scheduler
//! let mut gpu = Gpu::new(cfg, kernel, &*caps_factory()); // CAP engine
//! let stats = gpu.run_to_completion();
//! assert!(stats.prefetch_issued > 0);
//! ```

#![warn(missing_docs)]

pub mod cap;
pub mod dist;
pub mod hardware;
pub mod pas;
pub mod per_cta;

pub use cap::{CapConfig, CtaAwarePrefetcher};
pub use dist::DistTable;
pub use pas::{caps_config, pas_scheduler};
pub use per_cta::PerCtaTable;

use caps_gpu_sim::prefetch::PrefetcherFactory;

/// Factory building one paper-default CAP engine per SM.
pub fn caps_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(CtaAwarePrefetcher::new()))
}

/// Factory with explicit CAP parameters (ablations).
pub fn caps_factory_with(cfg: CapConfig) -> Box<PrefetcherFactory> {
    Box::new(move |_| Box::new(CtaAwarePrefetcher::with_config(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build_cap_engines() {
        assert_eq!(caps_factory()(0).name(), "CAPS");
        let cfg = CapConfig {
            dist_entries: 8,
            ..CapConfig::default()
        };
        assert_eq!(caps_factory_with(cfg)(3).name(), "CAPS");
    }
}
