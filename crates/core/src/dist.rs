//! The DIST table (§V-B).
//!
//! A single table per SM, shared by all CTAs, because the warp-to-warp
//! stride Δ of a load is identical across every CTA of the kernel (§IV).
//! Each entry holds the load PC, the detected stride, and a one-byte
//! misprediction counter; once the counter crosses the threshold (128 by
//! default) prefetching for that PC is shut off, throttling streams whose
//! addresses turned out not to be warp-strided.
//!
//! Hardware layout (Table I): PC (4 B) + stride (4 B) + misprediction
//! counter (1 B) = 9 B per entry, four entries.

use caps_gpu_sim::linemap::LineMap;
use caps_gpu_sim::types::Pc;

/// Entries in the DIST table (paper default).
pub const DIST_ENTRIES: usize = 4;

/// Bytes of one DIST entry as specified in Table I.
pub const DIST_ENTRY_BYTES: usize = 4 + 4 + 1;

/// Default misprediction-counter threshold (§V-B).
pub const DEFAULT_MISPREDICT_THRESHOLD: u8 = 128;

/// One DIST entry.
#[derive(Debug, Clone, Copy)]
pub struct DistEntry {
    /// Load PC.
    pub pc: Pc,
    /// Warp-to-warp stride in bytes (Δ).
    pub stride: i64,
    /// Saturating misprediction counter.
    pub mispredicts: u8,
    lru: u64,
}

/// The per-SM stride table.
///
/// As in `PerCtaTable`, `entries` keeps replacement order and `index` is
/// a flat PC → position map so the per-demand `stride`/`throttled`
/// checks on the issue path cost one hash probe instead of a scan.
#[derive(Debug)]
pub struct DistTable {
    entries: Vec<DistEntry>,
    index: LineMap<usize>,
    capacity: usize,
    threshold: u8,
    replace_when_full: bool,
    clock: u64,
}

impl Default for DistTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DistTable {
    /// Paper-default table: 4 entries, threshold 128, LRU replacement.
    pub fn new() -> Self {
        Self::with_params(DIST_ENTRIES, DEFAULT_MISPREDICT_THRESHOLD)
    }

    /// Parameterized constructor (ablation knob), LRU replacement.
    pub fn with_params(capacity: usize, threshold: u8) -> Self {
        Self::with_policy(capacity, threshold, true)
    }

    /// Explicit replacement policy (`false` pins the first `capacity`
    /// PCs; see `PerCtaTable::with_policy`).
    pub fn with_policy(capacity: usize, threshold: u8, replace_when_full: bool) -> Self {
        assert!(capacity > 0);
        DistTable {
            entries: Vec::with_capacity(capacity),
            index: LineMap::with_capacity(capacity),
            capacity,
            threshold,
            replace_when_full,
            clock: 0,
        }
    }

    #[inline]
    fn find(&self, pc: Pc) -> Option<usize> {
        self.index.get(pc as u64).copied()
    }

    /// `swap_remove` the entry at `i`, fixing the index of the entry
    /// moved into its place.
    fn remove_at(&mut self, i: usize) {
        let removed = self.entries.swap_remove(i);
        self.index.remove(removed.pc as u64);
        if i < self.entries.len() {
            self.index.insert(self.entries[i].pc as u64, i);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stride for `pc` if known.
    pub fn stride(&self, pc: Pc) -> Option<i64> {
        self.find(pc).map(|i| self.entries[i].stride)
    }

    /// Whether prefetching for `pc` has been shut off by mispredictions.
    pub fn throttled(&self, pc: Pc) -> bool {
        self.find(pc)
            .is_some_and(|i| self.entries[i].mispredicts >= self.threshold)
    }

    /// Record a detected stride for `pc`, resetting its misprediction
    /// counter (§V-B). When full, replaces the least-recently-updated
    /// entry (or drops the insertion under pinning). Returns whether the
    /// stride is now resident.
    pub fn insert(&mut self, pc: Pc, stride: i64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self.find(pc) {
            let e = &mut self.entries[i];
            e.stride = stride;
            e.mispredicts = 0;
            e.lru = clock;
            return true;
        }
        if self.entries.len() == self.capacity {
            if !self.replace_when_full {
                return false;
            }
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full table has a victim");
            self.remove_at(victim);
        }
        self.index.insert(pc as u64, self.entries.len());
        self.entries.push(DistEntry {
            pc,
            stride,
            mispredicts: 0,
            lru: clock,
        });
        true
    }

    /// Bump the misprediction counter for `pc` (demand address disagreed
    /// with the prediction). Saturating.
    pub fn mispredict(&mut self, pc: Pc) {
        if let Some(i) = self.find(pc) {
            let e = &mut self.entries[i];
            e.mispredicts = e.mispredicts.saturating_add(1);
        }
    }

    /// Misprediction count for `pc` (diagnostics).
    pub fn mispredict_count(&self, pc: Pc) -> Option<u8> {
        self.find(pc).map(|i| self.entries[i].mispredicts)
    }

    /// Drop the entry for `pc`. Order-preserving removal (matching the
    /// seed's `retain`), re-indexing the shifted tail — bounded by the
    /// 4-entry capacity.
    pub fn invalidate(&mut self, pc: Pc) {
        let Some(i) = self.find(pc) else {
            return;
        };
        self.entries.remove(i);
        self.index.remove(pc as u64);
        for j in i..self.entries.len() {
            self.index.insert(self.entries[j].pc as u64, j);
        }
    }

    /// PCs of all live entries (scrub support).
    pub fn pcs(&self) -> Vec<Pc> {
        self.entries.iter().map(|e| e.pc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_layout_matches_table_i() {
        assert_eq!(DIST_ENTRY_BYTES, 9);
        assert_eq!(DIST_ENTRIES, 4);
        assert_eq!(DEFAULT_MISPREDICT_THRESHOLD, 128);
    }

    #[test]
    fn insert_resets_counter_and_updates_stride() {
        let mut t = DistTable::new();
        t.insert(8, 512);
        assert_eq!(t.stride(8), Some(512));
        for _ in 0..10 {
            t.mispredict(8);
        }
        assert_eq!(t.mispredict_count(8), Some(10));
        t.insert(8, 256);
        assert_eq!(t.stride(8), Some(256));
        assert_eq!(t.mispredict_count(8), Some(0));
    }

    #[test]
    fn throttles_after_threshold() {
        let mut t = DistTable::with_params(4, 3);
        t.insert(8, 128);
        assert!(!t.throttled(8));
        t.mispredict(8);
        t.mispredict(8);
        assert!(!t.throttled(8));
        t.mispredict(8);
        assert!(t.throttled(8));
    }

    #[test]
    fn counter_saturates() {
        let mut t = DistTable::new();
        t.insert(8, 128);
        for _ in 0..500 {
            t.mispredict(8);
        }
        assert_eq!(t.mispredict_count(8), Some(255));
    }

    #[test]
    fn lru_replacement() {
        let mut t = DistTable::new();
        for pc in 0..4u32 {
            t.insert(pc, pc as i64);
        }
        t.insert(0, 99); // refresh PC 0 — PC 1 becomes LRU
        t.insert(100, 7);
        assert_eq!(t.stride(0), Some(99));
        assert_eq!(t.stride(1), None);
        assert_eq!(t.stride(100), Some(7));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn unknown_pc_is_not_throttled() {
        let t = DistTable::new();
        assert!(!t.throttled(0xdead));
        assert_eq!(t.stride(0xdead), None);
    }

    #[test]
    fn invalidate_removes() {
        let mut t = DistTable::new();
        t.insert(8, 128);
        t.invalidate(8);
        assert!(t.is_empty());
    }

    #[test]
    fn pinned_table_drops_new_pcs_when_full() {
        let mut t = DistTable::with_policy(2, 128, false);
        assert!(t.insert(1, 100));
        assert!(t.insert(2, 200));
        assert!(!t.insert(3, 300), "pinned-full drops");
        assert_eq!(t.stride(1), Some(100));
        assert_eq!(t.stride(3), None);
        // Updates to resident PCs still work.
        assert!(t.insert(1, 150));
        assert_eq!(t.stride(1), Some(150));
    }
}
