//! Property tests for the CAP tables and address algebra.

use caps_core::dist::DistTable;
use caps_core::per_cta::{PerCtaTable, MAX_BASE_ADDRS};
use caps_core::{CapConfig, CtaAwarePrefetcher};
use caps_gpu_sim::prefetch::{DemandObservation, Prefetcher};
use caps_gpu_sim::types::{line_base, Addr, CtaCoord};
use proptest::prelude::*;

fn obs<'a>(
    pc: u32,
    slot: usize,
    cta: CtaCoord,
    warp: u32,
    wpc: u32,
    lines: &'a [Addr],
    iter: u32,
) -> DemandObservation<'a> {
    DemandObservation {
        cycle: 0,
        pc,
        cta_slot: slot,
        cta,
        warp_in_cta: warp,
        warp_slot: slot * wpc as usize + warp as usize,
        warps_per_cta: wpc,
        lines,
        is_affine: true,
        iter,
    }
}

proptest! {
    /// The DIST table never reports a stride it was not given, and the
    /// throttle fires exactly at the threshold.
    #[test]
    fn dist_table_threshold_is_exact(
        threshold in 1u8..200,
        mispredicts in 0usize..300,
    ) {
        let mut t = DistTable::with_params(4, threshold);
        t.insert(8, 512);
        for _ in 0..mispredicts {
            t.mispredict(8);
        }
        prop_assert_eq!(t.throttled(8), mispredicts >= threshold as usize);
        prop_assert_eq!(t.stride(8), Some(512));
        prop_assert_eq!(t.stride(9), None);
    }

    /// PerCTA capacity is never exceeded and lookups return exactly what
    /// was inserted, under arbitrary insert/invalidate interleavings.
    #[test]
    fn per_cta_table_is_bounded_and_consistent(
        ops in proptest::collection::vec((0u32..12, 0u64..1 << 20, prop::bool::ANY), 0..100),
    ) {
        let mut t = PerCtaTable::with_capacity(4);
        t.reset(CtaCoord::from_linear(3, 8));
        let mut live: Vec<(u32, u64)> = Vec::new();
        for (pc, base, remove) in ops {
            if remove {
                t.invalidate(pc);
                live.retain(|&(p, _)| p != pc);
            } else if t.probe(pc).is_none() {
                let inserted = t.insert(pc, 0, &[base]).is_some();
                if inserted {
                    live.retain(|&(p, _)| p != pc);
                    live.push((pc, base));
                }
            }
            prop_assert!(t.len() <= 4);
            // Everything the model says is live and fits must be found
            // with its base (the table may have evicted under LRU, so
            // only check entries the table still reports).
            for &(p, b) in &live {
                if let Some(e) = t.probe(p) {
                    prop_assert_eq!(e.bases[0], b);
                }
            }
        }
    }

    /// Base-address vectors respect the 4-entry hardware budget.
    #[test]
    fn base_vectors_are_capped(lines in proptest::collection::vec(0u64..1 << 24, 1..=4)) {
        let lines: Vec<Addr> = lines.iter().map(|&a| line_base(a, 128)).collect();
        let mut t = PerCtaTable::new();
        t.reset(CtaCoord::from_linear(0, 4));
        let e = t.insert(9, 1, &lines).expect("fits");
        prop_assert!(e.bases.len() <= MAX_BASE_ADDRS);
        prop_assert_eq!(&e.bases, &lines);
    }

    /// CAP end-to-end: for any multi-line affine load geometry, every
    /// generated prefetch line equals the target warp's demand line —
    /// and a wrong observation chain never panics.
    #[test]
    fn cap_multi_line_algebra(
        base in 1u64 << 20..1 << 26,
        stride_lines in 1i64..32,
        nlines in 1usize..=4,
        lead in 0u32..8,
        second in 0u32..8,
        wpc in 2u32..=8,
    ) {
        prop_assume!(lead < wpc && second < wpc && lead != second);
        // Observations come from the coalescer: always line-aligned.
        let base = line_base(base, 128);
        let delta = stride_lines * 128;
        let cta = CtaCoord::from_linear(5, 8);
        let mk = |w: u32| -> Vec<Addr> {
            (0..nlines)
                .map(|i| base + i as u64 * (1 << 16) + (w as i64 * delta) as u64)
                .collect()
        };
        let mut cap = CtaAwarePrefetcher::with_config(CapConfig::default());
        cap.on_cta_launch(0, cta);
        let mut out = Vec::new();
        let l0 = mk(lead);
        cap.on_demand(&obs(4, 0, cta, lead, wpc, &l0, 0), &mut out);
        let l1 = mk(second);
        cap.on_demand(&obs(4, 0, cta, second, wpc, &l1, 0), &mut out);
        prop_assert_eq!(cap.dist().stride(4), Some(delta));
        for r in &out {
            let w = (r.target_warp.expect("bound") % wpc as usize) as u32;
            let demand = mk(w);
            prop_assert!(demand.contains(&r.line));
        }
        prop_assert_eq!(cap.mispredicts(), 0);
    }

    /// Indirect observations never touch the tables, for any geometry.
    #[test]
    fn indirect_is_always_excluded(addr in 0u64..1 << 30, warp in 0u32..8) {
        let cta = CtaCoord::from_linear(0, 4);
        let mut cap = CtaAwarePrefetcher::new();
        cap.on_cta_launch(0, cta);
        let lines = [line_base(addr, 128)];
        let mut o = obs(4, 0, cta, warp, 8, &lines, 0);
        o.is_affine = false;
        let mut out = Vec::new();
        cap.on_demand(&o, &mut out);
        prop_assert!(out.is_empty());
        prop_assert!(cap.per_cta(0).is_empty());
        prop_assert_eq!(cap.table_accesses(), 0);
    }

    /// Wrong-stride streams throttle within threshold + slack and then
    /// stay silent, for any threshold.
    #[test]
    fn throttle_silences_wrong_streams(threshold in 1u8..16) {
        let cta = CtaCoord::from_linear(0, 4);
        let mut cap = CtaAwarePrefetcher::with_config(CapConfig {
            mispredict_threshold: threshold,
            ..CapConfig::default()
        });
        cap.on_cta_launch(0, cta);
        let mut out = Vec::new();
        // Train a stride from warps 0 and 1.
        cap.on_demand(&obs(4, 0, cta, 0, 8, &[0x10000], 0), &mut out);
        cap.on_demand(&obs(4, 0, cta, 1, 8, &[0x10200], 0), &mut out);
        // Feed wrong addresses from higher warps until throttled.
        for w in 2..8u32 {
            let wrong = [0x900000 + w as u64 * 0x10000];
            cap.on_demand(&obs(4, 0, cta, w, 8, &wrong, 0), &mut out);
        }
        if cap.mispredicts() >= threshold as u64 {
            prop_assert!(cap.dist().throttled(4));
            out.clear();
            // A fresh CTA registration must not emit prefetches.
            cap.on_cta_launch(1, CtaCoord::from_linear(9, 4));
            cap.on_demand(&obs(4, 1, CtaCoord::from_linear(9, 4), 0, 8, &[0x40000], 0), &mut out);
            prop_assert!(out.is_empty());
        }
    }
}
