//! Property tests for the baseline prefetch engines.

use caps_gpu_sim::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{line_base, Addr, CtaCoord};
use caps_prefetchers::lap::MACRO_BLOCK_LINES;
use caps_prefetchers::{
    InterWarpPrefetcher, IntraWarpPrefetcher, LocalityAwarePrefetcher, MtaPrefetcher,
    NextLinePrefetcher,
};
use proptest::prelude::*;

fn obs<'a>(pc: u32, warp: usize, lines: &'a [Addr]) -> DemandObservation<'a> {
    DemandObservation {
        cycle: 0,
        pc,
        cta_slot: warp / 4,
        cta: CtaCoord::from_linear((warp / 4) as u32, 8),
        warp_in_cta: (warp % 4) as u32,
        warp_slot: warp,
        warps_per_cta: 4,
        lines,
        is_affine: true,
        iter: 0,
    }
}

proptest! {
    /// INTRA: after a stable stride, the prediction is exactly
    /// last + k·stride for the same warp, for any stride.
    #[test]
    fn intra_predicts_exact_stride(
        base in 1u64 << 12..1 << 28,
        stride_lines in 1i64..128,
        warp in 0usize..48,
    ) {
        let stride = stride_lines * 128;
        let mut p = IntraWarpPrefetcher::new();
        let mut out: Vec<PrefetchRequest> = Vec::new();
        for i in 0..3u64 {
            let lines = [base + i * stride as u64];
            out.clear();
            p.on_demand(&obs(8, warp, &lines), &mut out);
        }
        prop_assert!(!out.is_empty());
        let last = base + 2 * stride as u64;
        for (k, r) in out.iter().enumerate() {
            prop_assert_eq!(r.line, line_base(last + (k as u64 + 1) * stride as u64, 128));
            prop_assert_eq!(r.target_warp, Some(warp));
        }
    }

    /// INTRA keeps separate streams per warp: training one warp never
    /// emits prefetches for another.
    #[test]
    fn intra_streams_do_not_leak(w1 in 0usize..24, w2 in 24usize..48) {
        let mut p = IntraWarpPrefetcher::new();
        let mut out = Vec::new();
        for i in 0..4u64 {
            let lines = [0x10000 + i * 0x400];
            p.on_demand(&obs(8, w1, &lines), &mut out);
        }
        prop_assert!(out.iter().all(|r| r.target_warp == Some(w1)));
        let _ = w2;
    }

    /// INTER: with a clean warp sequence, predictions equal the stride
    /// extrapolation; the target warp is always ahead of the trigger.
    #[test]
    fn inter_extrapolates_forward(
        base in 1u64 << 12..1 << 28,
        stride_lines in 1i64..64,
        distance in 1u32..10,
    ) {
        let stride = stride_lines * 128;
        let mut p = InterWarpPrefetcher::with_distance(distance);
        let mut out: Vec<PrefetchRequest> = Vec::new();
        for w in 0..3usize {
            let lines = [base + w as u64 * stride as u64];
            out.clear();
            p.on_demand(&obs(8, w, &lines), &mut out);
        }
        for r in &out {
            let t = r.target_warp.expect("bound") as u64;
            prop_assert!(t > 2, "target must trail the trigger warp");
            prop_assert_eq!(r.line, line_base(base + t * stride as u64, 128));
        }
    }

    /// NLP always prefetches exactly the next `depth` lines.
    #[test]
    fn nlp_is_purely_sequential(line in 0u64..1 << 30, depth in 1u32..4) {
        let line = line_base(line, 128);
        let mut p = NextLinePrefetcher::with_params(128, depth);
        let mut out = Vec::new();
        p.on_l1_miss(0, line, &mut out);
        prop_assert_eq!(out.len(), depth as usize);
        for (k, r) in out.iter().enumerate() {
            prop_assert_eq!(r.line, line + (k as u64 + 1) * 128);
            prop_assert_eq!(r.target_warp, None);
        }
    }

    /// LAP: generated lines always lie inside the triggering macro block
    /// and never duplicate the missed lines.
    #[test]
    fn lap_stays_inside_the_macro_block(
        block in 0u64..1 << 20,
        l1 in 0u32..4,
        l2 in 0u32..4,
    ) {
        prop_assume!(l1 != l2);
        let block_base = block * 128 * MACRO_BLOCK_LINES as u64;
        let mut p = LocalityAwarePrefetcher::new();
        let mut out = Vec::new();
        p.on_l1_miss(0, block_base + l1 as u64 * 128, &mut out);
        p.on_l1_miss(0, block_base + l2 as u64 * 128, &mut out);
        prop_assert_eq!(out.len(), (MACRO_BLOCK_LINES - 2) as usize);
        for r in &out {
            prop_assert!(r.line >= block_base);
            prop_assert!(r.line < block_base + MACRO_BLOCK_LINES as u64 * 128);
            prop_assert_ne!(r.line, block_base + l1 as u64 * 128);
            prop_assert_ne!(r.line, block_base + l2 as u64 * 128);
        }
    }

    /// MTA = INTRA priority with INTER fallback: a warp with a stable
    /// intra stride gets same-warp prefetches, never cross-warp ones.
    #[test]
    fn mta_prefers_intra_for_iterative_streams(stride_lines in 1i64..32) {
        let stride = stride_lines * 128;
        let mut p = MtaPrefetcher::new();
        let mut out = Vec::new();
        for i in 0..4u64 {
            let lines = [0x40000 + i * stride as u64];
            out.clear();
            p.on_demand(&obs(8, 5, &lines), &mut out);
        }
        prop_assert!(!out.is_empty());
        prop_assert!(out.iter().all(|r| r.target_warp == Some(5)));
    }
}
