//! # caps-prefetchers — baseline GPU prefetch engines
//!
//! Every comparison point of the paper's evaluation (Fig. 10–14),
//! implemented against the [`caps_gpu_sim::prefetch::Prefetcher`]
//! interface:
//!
//! | Engine | Paper legend | Scheme |
//! |---|---|---|
//! | [`IntraWarpPrefetcher`] | INTRA | per-warp (loop-iteration) stride |
//! | [`InterWarpPrefetcher`] | INTER | per-PC stride across consecutive warps, CTA-oblivious |
//! | [`MtaPrefetcher`] | MTA | many-thread-aware: intra first, inter fallback (Lee et al.) |
//! | [`NextLinePrefetcher`] | NLP | next sequential line on each L1 miss |
//! | [`LocalityAwarePrefetcher`] | LAP | 4-line macro-block spatial prefetch on ≥2 misses (Jog et al.) |
//! | [`LocalityAwarePrefetcher::orch`] | ORCH | LAP paired with group-interleaved two-level scheduling |
//!
//! The CAPS engine itself lives in `caps-core`.

#![warn(missing_docs)]

pub mod inter;
pub mod intra;
pub mod lap;
pub mod mta;
pub mod nlp;

pub use inter::InterWarpPrefetcher;
pub use intra::IntraWarpPrefetcher;
pub use lap::LocalityAwarePrefetcher;
pub use mta::MtaPrefetcher;
pub use nlp::NextLinePrefetcher;

use caps_gpu_sim::prefetch::PrefetcherFactory;

/// Factory for the INTRA engine.
pub fn intra_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(IntraWarpPrefetcher::new()))
}

/// Factory for the INTER engine.
pub fn inter_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(InterWarpPrefetcher::new()))
}

/// Factory for the INTER engine probing a fixed warp distance (Fig. 1).
pub fn inter_distance_factory(distance: u32) -> Box<PrefetcherFactory> {
    Box::new(move |_| Box::new(InterWarpPrefetcher::with_distance(distance)))
}

/// Factory for the MTA engine.
pub fn mta_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(MtaPrefetcher::new()))
}

/// Factory for the NLP engine.
pub fn nlp_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(NextLinePrefetcher::new()))
}

/// Factory for the LAP engine.
pub fn lap_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(LocalityAwarePrefetcher::new()))
}

/// Factory for the ORCH engine (pair with
/// [`caps_gpu_sim::config::SchedulerKind::OrchGrouped`]).
pub fn orch_factory() -> Box<PrefetcherFactory> {
    Box::new(|_| Box::new(LocalityAwarePrefetcher::orch()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_report_paper_legend_names() {
        assert_eq!(intra_factory()(0).name(), "INTRA");
        assert_eq!(inter_factory()(0).name(), "INTER");
        assert_eq!(mta_factory()(0).name(), "MTA");
        assert_eq!(nlp_factory()(0).name(), "NLP");
        assert_eq!(lap_factory()(0).name(), "LAP");
        assert_eq!(orch_factory()(0).name(), "ORCH");
        assert_eq!(inter_distance_factory(7)(0).name(), "INTER");
    }
}
