//! Next-line prefetcher (§III-C).
//!
//! On every L1 demand miss, fetch the next sequential cache line.
//! Pattern-agnostic: decent spatial coverage, no timeliness (the prefetch
//! is issued at the moment the demand already missed) and wasted
//! bandwidth on non-sequential streams.

use caps_gpu_sim::prefetch::{PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{Addr, Cycle};

/// Per-SM next-line engine.
pub struct NextLinePrefetcher {
    line_size: u32,
    /// Consecutive next lines fetched per miss.
    pub depth: u32,
}

impl NextLinePrefetcher {
    /// Classic single next-line engine.
    pub fn new() -> Self {
        Self::with_params(128, 1)
    }

    /// Parameterized constructor.
    pub fn with_params(line_size: u32, depth: u32) -> Self {
        assert!(depth > 0);
        NextLinePrefetcher { line_size, depth }
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &'static str {
        "NLP"
    }

    fn on_l1_miss(&mut self, _cycle: Cycle, line: Addr, out: &mut Vec<PrefetchRequest>) {
        for k in 1..=self.depth as Addr {
            out.push(PrefetchRequest {
                line: line + k * self.line_size as Addr,
                pc: 0,
                target_warp: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_triggers_next_line() {
        let mut p = NextLinePrefetcher::new();
        let mut out = Vec::new();
        p.on_l1_miss(0, 0x1000, &mut out);
        assert_eq!(
            out,
            vec![PrefetchRequest {
                line: 0x1080,
                pc: 0,
                target_warp: None
            }]
        );
    }

    #[test]
    fn depth_fetches_multiple_lines() {
        let mut p = NextLinePrefetcher::with_params(128, 3);
        let mut out = Vec::new();
        p.on_l1_miss(0, 0, &mut out);
        assert_eq!(
            out.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![128, 256, 384]
        );
    }

    #[test]
    fn demand_observations_are_ignored() {
        use caps_gpu_sim::prefetch::DemandObservation;
        use caps_gpu_sim::types::CtaCoord;
        let mut p = NextLinePrefetcher::new();
        let mut out = Vec::new();
        let o = DemandObservation {
            cycle: 0,
            pc: 8,
            cta_slot: 0,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: 0,
            },
            warp_in_cta: 0,
            warp_slot: 0,
            warps_per_cta: 4,
            lines: &[0x1000],
            is_affine: true,
            iter: 0,
        };
        p.on_demand(&o, &mut out);
        assert!(out.is_empty());
    }
}
