//! Many-Thread-Aware prefetching (Lee et al., MICRO'10; §VI-B "MTA").
//!
//! The hardware variant of MTA combines both stride modes: per-warp
//! (intra) stride detection is tried first — it covers iterative loads in
//! loops — and loads without a stable intra-warp stride fall back to
//! inter-warp stride prefetching for trailing warps. Like INTER, the
//! inter-warp half is oblivious to CTA boundaries, which is why MTA
//! degrades as the number of concurrent CTAs grows (Fig. 11).

use caps_gpu_sim::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{CtaCoord, CtaSlot};

use crate::inter::InterWarpPrefetcher;
use crate::intra::IntraWarpPrefetcher;

/// Combined intra+inter engine.
pub struct MtaPrefetcher {
    intra: IntraWarpPrefetcher,
    inter: InterWarpPrefetcher,
    scratch: Vec<PrefetchRequest>,
}

impl MtaPrefetcher {
    /// Default engine (paper-typical degrees).
    pub fn new() -> Self {
        MtaPrefetcher {
            intra: IntraWarpPrefetcher::new(),
            inter: InterWarpPrefetcher::new(),
            scratch: Vec::new(),
        }
    }
}

impl Default for MtaPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for MtaPrefetcher {
    fn name(&self) -> &'static str {
        "MTA"
    }

    fn on_demand(&mut self, obs: &DemandObservation<'_>, out: &mut Vec<PrefetchRequest>) {
        // Train intra first: a stable per-warp stride wins.
        self.scratch.clear();
        self.intra.on_demand(obs, &mut self.scratch);
        if !self.scratch.is_empty() {
            out.append(&mut self.scratch);
            // Keep the inter table trained but discard its requests.
            let mut sink = Vec::new();
            self.inter.on_demand(obs, &mut sink);
            return;
        }
        // No iterative stride: inter-warp prefetching.
        self.inter.on_demand(obs, out);
    }

    fn on_cta_launch(&mut self, slot: CtaSlot, cta: CtaCoord) {
        self.intra.on_cta_launch(slot, cta);
        self.inter.on_cta_launch(slot, cta);
    }

    fn table_accesses(&self) -> u64 {
        self.intra.table_accesses() + self.inter.table_accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::types::{Addr, Pc, WarpSlot};

    fn obs(pc: Pc, warp: WarpSlot, lines: &[Addr]) -> DemandObservation<'_> {
        DemandObservation {
            cycle: 0,
            pc,
            cta_slot: warp / 4,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: (warp / 4) as u32,
            },
            warp_in_cta: (warp % 4) as u32,
            warp_slot: warp,
            warps_per_cta: 4,
            lines,
            is_affine: true,
            iter: 0,
        }
    }

    #[test]
    fn iterative_load_uses_intra_mode() {
        let mut p = MtaPrefetcher::new();
        let mut out = Vec::new();
        // Same warp, same PC, marching by 0x400: intra stride.
        for i in 0..3u64 {
            p.on_demand(&obs(8, 0, &[0x1000 + i * 0x400]), &mut out);
        }
        assert!(!out.is_empty());
        assert!(
            out.iter().all(|r| r.target_warp == Some(0)),
            "intra mode prefetches for the same warp"
        );
    }

    #[test]
    fn non_iterative_load_falls_back_to_inter_mode() {
        let mut p = MtaPrefetcher::new();
        let mut out = Vec::new();
        // Each warp executes the PC once: no intra stride exists.
        for w in 0..3 {
            p.on_demand(&obs(8, w, &[0x1000 + w as Addr * 0x200]), &mut out);
        }
        assert!(!out.is_empty());
        assert!(
            out.iter().all(|r| r.target_warp.unwrap() > 2),
            "inter mode prefetches for trailing warps"
        );
    }

    #[test]
    fn table_accesses_accumulate_from_both_halves() {
        let mut p = MtaPrefetcher::new();
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, &[0x1000]), &mut out);
        assert!(p.table_accesses() >= 2);
    }
}
