//! Locality-Aware Prefetching (Jog et al., ISCA'13; §VI-B "LAP").
//!
//! Memory is viewed in *macro blocks* of four consecutive cache lines.
//! The engine tracks demand misses per macro block; once two or more
//! lines of a block have missed, the remaining lines of the block are
//! prefetched — spatial prefetching gated by demonstrated block locality.
//! ORCH (§VI-B) pairs this engine with the group-interleaved two-level
//! scheduler so consecutive warps prefetch for each other across
//! scheduling groups.

use caps_gpu_sim::prefetch::{PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{Addr, Cycle};

/// Lines per macro block.
pub const MACRO_BLOCK_LINES: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    block: Addr,
    missed: u8, // bitmask of missed lines
    prefetched: bool,
    lru: u64,
}

/// Per-SM locality-aware engine.
pub struct LocalityAwarePrefetcher {
    entries: Vec<BlockEntry>,
    capacity: usize,
    line_size: u32,
    /// Misses within a block required before prefetching the rest.
    pub threshold: u32,
    clock: u64,
    table_accesses: u64,
    name: &'static str,
}

impl LocalityAwarePrefetcher {
    /// Paper-default engine: 64 tracked blocks, threshold 2.
    pub fn new() -> Self {
        Self::with_params(64, 2, 128)
    }

    /// The same engine labelled "ORCH" (paired with the grouped
    /// scheduler by the harness).
    pub fn orch() -> Self {
        let mut p = Self::new();
        p.name = "ORCH";
        p
    }

    /// Parameterized constructor.
    pub fn with_params(capacity: usize, threshold: u32, line_size: u32) -> Self {
        assert!(capacity > 0 && threshold >= 1);
        LocalityAwarePrefetcher {
            entries: Vec::with_capacity(capacity),
            capacity,
            line_size,
            threshold,
            clock: 0,
            table_accesses: 0,
            name: "LAP",
        }
    }

    #[inline]
    fn block_of(&self, line: Addr) -> Addr {
        line / (self.line_size as Addr * MACRO_BLOCK_LINES as Addr)
    }

    #[inline]
    fn line_index(&self, line: Addr) -> u32 {
        ((line / self.line_size as Addr) % MACRO_BLOCK_LINES as Addr) as u32
    }
}

impl Default for LocalityAwarePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for LocalityAwarePrefetcher {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_l1_miss(&mut self, _cycle: Cycle, line: Addr, out: &mut Vec<PrefetchRequest>) {
        self.table_accesses += 1;
        self.clock += 1;
        let clock = self.clock;
        let block = self.block_of(line);
        let idx = self.line_index(line);
        let threshold = self.threshold;
        let line_size = self.line_size as Addr;

        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.missed |= 1 << idx;
            e.lru = clock;
            if !e.prefetched && e.missed.count_ones() >= threshold {
                e.prefetched = true;
                let base = block * line_size * MACRO_BLOCK_LINES as Addr;
                for k in 0..MACRO_BLOCK_LINES {
                    if e.missed & (1 << k) == 0 {
                        out.push(PrefetchRequest {
                            line: base + k as Addr * line_size,
                            pc: 0,
                            target_warp: None,
                        });
                    }
                }
            }
            return;
        }

        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full table");
            self.entries.swap_remove(victim);
        }
        self.entries.push(BlockEntry {
            block,
            missed: 1 << idx,
            prefetched: false,
            lru: clock,
        });
    }

    fn table_accesses(&self) -> u64 {
        self.table_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_misses_prefetch_rest_of_macro_block() {
        let mut p = LocalityAwarePrefetcher::new();
        let mut out = Vec::new();
        p.on_l1_miss(0, 0x0, &mut out); // line 0 of block 0
        assert!(out.is_empty());
        p.on_l1_miss(0, 0x100, &mut out); // line 2 of block 0
        assert_eq!(
            out.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![0x080, 0x180],
            "remaining lines 1 and 3"
        );
    }

    #[test]
    fn block_prefetches_only_once() {
        let mut p = LocalityAwarePrefetcher::new();
        let mut out = Vec::new();
        p.on_l1_miss(0, 0x0, &mut out);
        p.on_l1_miss(0, 0x100, &mut out);
        out.clear();
        p.on_l1_miss(0, 0x080, &mut out);
        assert!(out.is_empty(), "block already prefetched");
    }

    #[test]
    fn blocks_are_independent() {
        let mut p = LocalityAwarePrefetcher::new();
        let mut out = Vec::new();
        p.on_l1_miss(0, 0x0, &mut out); // block 0
        p.on_l1_miss(0, 0x200, &mut out); // block 1
        assert!(out.is_empty());
        p.on_l1_miss(0, 0x280, &mut out); // block 1, second miss
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.line >= 0x200 && r.line < 0x400));
    }

    #[test]
    fn orch_variant_reports_its_name() {
        assert_eq!(LocalityAwarePrefetcher::orch().name(), "ORCH");
        assert_eq!(LocalityAwarePrefetcher::new().name(), "LAP");
    }

    #[test]
    fn lru_eviction_bounds_state() {
        let mut p = LocalityAwarePrefetcher::with_params(2, 2, 128);
        let mut out = Vec::new();
        p.on_l1_miss(0, 0x0000, &mut out);
        p.on_l1_miss(0, 0x1000, &mut out);
        p.on_l1_miss(0, 0x2000, &mut out); // evicts block of 0x0000
        p.on_l1_miss(0, 0x0080, &mut out); // re-allocates, single miss
        assert!(out.is_empty());
    }
}
