//! Intra-warp stride prefetcher (§III-A).
//!
//! Classic per-thread stride prefetching lifted to warp granularity: for
//! each (warp, load PC) pair the engine tracks the address delta between
//! successive executions — i.e. successive *loop iterations* of the same
//! warp — and prefetches ahead once the delta repeats. Effective only for
//! loads inside loops (Fig. 4 shows most GPU kernels have few), and
//! issues prefetches only a short time before the next iteration's
//! demand, limiting timeliness.

use caps_gpu_sim::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{line_base, Addr, Pc, WarpSlot};

/// Detection-table entry for one (warp, PC) stream.
#[derive(Debug, Clone, Copy)]
struct Entry {
    warp: WarpSlot,
    pc: Pc,
    last: Addr,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// Per-SM intra-warp stride engine.
pub struct IntraWarpPrefetcher {
    entries: Vec<Entry>,
    capacity: usize,
    /// Iterations prefetched ahead once the stride is stable.
    pub degree: u32,
    line_size: u32,
    clock: u64,
    table_accesses: u64,
}

/// Confidence needed before prefetches are issued.
const CONF_THRESHOLD: u8 = 2;

impl IntraWarpPrefetcher {
    /// Default engine: 64 streams, prefetch degree 2.
    pub fn new() -> Self {
        Self::with_params(64, 2, 128)
    }

    /// Parameterized constructor.
    pub fn with_params(capacity: usize, degree: u32, line_size: u32) -> Self {
        assert!(capacity > 0 && degree > 0);
        IntraWarpPrefetcher {
            entries: Vec::with_capacity(capacity),
            capacity,
            degree,
            line_size,
            clock: 0,
            table_accesses: 0,
        }
    }
}

impl Default for IntraWarpPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for IntraWarpPrefetcher {
    fn name(&self) -> &'static str {
        "INTRA"
    }

    fn on_demand(&mut self, obs: &DemandObservation<'_>, out: &mut Vec<PrefetchRequest>) {
        let Some(&addr) = obs.lines.first() else {
            return;
        };
        self.table_accesses += 1;
        self.clock += 1;
        let clock = self.clock;

        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.warp == obs.warp_slot && e.pc == obs.pc)
        {
            let d = addr as i64 - e.last as i64;
            if d == e.stride && d != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.stride = d;
                e.confidence = u8::from(d != 0);
            }
            e.last = addr;
            e.lru = clock;
            if e.confidence >= CONF_THRESHOLD {
                for k in 1..=self.degree as i64 {
                    let p = addr as i64 + e.stride * k;
                    if p >= 0 {
                        out.push(PrefetchRequest {
                            line: line_base(p as Addr, self.line_size),
                            pc: obs.pc,
                            target_warp: Some(obs.warp_slot),
                        });
                    }
                }
            }
            return;
        }

        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full table");
            self.entries.swap_remove(victim);
        }
        self.entries.push(Entry {
            warp: obs.warp_slot,
            pc: obs.pc,
            last: addr,
            stride: 0,
            confidence: 0,
            lru: clock,
        });
    }

    fn table_accesses(&self) -> u64 {
        self.table_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::types::CtaCoord;

    fn obs(pc: Pc, warp: WarpSlot, lines: &[Addr]) -> DemandObservation<'_> {
        DemandObservation {
            cycle: 0,
            pc,
            cta_slot: 0,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: 0,
            },
            warp_in_cta: warp as u32,
            warp_slot: warp,
            warps_per_cta: 4,
            lines,
            is_affine: true,
            iter: 0,
        }
    }

    #[test]
    fn needs_two_confirmations_before_prefetching() {
        let mut p = IntraWarpPrefetcher::new();
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, &[0x1000]), &mut out); // train
        p.on_demand(&obs(8, 0, &[0x1400]), &mut out); // stride 0x400, conf 1
        assert!(out.is_empty());
        p.on_demand(&obs(8, 0, &[0x1800]), &mut out); // conf 2 → prefetch
        assert_eq!(
            out.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![0x1c00, 0x2000],
            "degree-2 prefetch of the next iterations"
        );
        assert_eq!(out[0].target_warp, Some(0));
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = IntraWarpPrefetcher::new();
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 0, &[0x1400]), &mut out);
        p.on_demand(&obs(8, 0, &[0x9000]), &mut out); // break
        assert!(out.is_empty());
        p.on_demand(&obs(8, 0, &[0x9400]), &mut out); // new stride conf 1
        assert!(out.is_empty());
    }

    #[test]
    fn streams_are_per_warp_and_per_pc() {
        let mut p = IntraWarpPrefetcher::new();
        let mut out = Vec::new();
        // Interleave two warps: each trains its own stream.
        for i in 0..3u64 {
            p.on_demand(&obs(8, 0, &[0x1000 + i * 0x400]), &mut out);
            p.on_demand(&obs(8, 1, &[0x80000 + i * 0x200]), &mut out);
        }
        let w0: Vec<_> = out.iter().filter(|r| r.target_warp == Some(0)).collect();
        let w1: Vec<_> = out.iter().filter(|r| r.target_warp == Some(1)).collect();
        assert_eq!(w0.len(), 2);
        assert_eq!(w1.len(), 2);
        assert_eq!(w0[0].line, 0x1800 + 0x400);
        assert_eq!(w1[0].line, line_base(0x80400 + 0x200, 128));
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = IntraWarpPrefetcher::new();
        let mut out = Vec::new();
        for _ in 0..5 {
            p.on_demand(&obs(8, 0, &[0x1000]), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_is_bounded_with_lru() {
        let mut p = IntraWarpPrefetcher::with_params(2, 1, 128);
        let mut out = Vec::new();
        p.on_demand(&obs(1, 0, &[0]), &mut out);
        p.on_demand(&obs(2, 0, &[0]), &mut out);
        p.on_demand(&obs(3, 0, &[0]), &mut out); // evicts pc 1
        assert_eq!(p.entries.len(), 2);
        assert!(p.entries.iter().any(|e| e.pc == 3));
        assert!(!p.entries.iter().any(|e| e.pc == 1));
    }
}
