//! Inter-warp stride prefetcher (§III-B).
//!
//! Detects a per-PC stride between *consecutive hardware warps* and
//! prefetches for trailing warps — deliberately **ignoring CTA
//! boundaries**, which is the flaw the paper quantifies in Fig. 1: within
//! a CTA the stride holds, but the warp after a CTA's last warp belongs
//! to a different CTA whose base address is unrelated, so prefetches
//! crossing the boundary are wrong and pollute the cache.

use caps_gpu_sim::prefetch::{DemandObservation, PrefetchRequest, Prefetcher};
use caps_gpu_sim::types::{line_base, Addr, Pc, WarpSlot};

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: Pc,
    last_warp: WarpSlot,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// Per-SM inter-warp stride engine.
pub struct InterWarpPrefetcher {
    entries: Vec<Entry>,
    capacity: usize,
    /// How many warps ahead each prefetch targets (Fig. 1's x-axis).
    pub distance: u32,
    /// Prefetches issued per trigger (for warps `+1..=degree` when
    /// `distance == 1`, or exactly warp `+distance` otherwise).
    pub degree: u32,
    max_warps: usize,
    line_size: u32,
    clock: u64,
    table_accesses: u64,
}

const CONF_THRESHOLD: u8 = 2;

impl InterWarpPrefetcher {
    /// Default engine: prefetch for the next two warps.
    pub fn new() -> Self {
        Self::with_params(16, 1, 2, 48, 128)
    }

    /// Engine prefetching exactly for the warp `distance` ahead — the
    /// Fig. 1 accuracy/timeliness probe.
    pub fn with_distance(distance: u32) -> Self {
        Self::with_params(16, distance, 1, 48, 128)
    }

    /// Fully parameterized constructor.
    pub fn with_params(
        capacity: usize,
        distance: u32,
        degree: u32,
        max_warps: usize,
        line_size: u32,
    ) -> Self {
        assert!(capacity > 0 && distance > 0 && degree > 0);
        InterWarpPrefetcher {
            entries: Vec::with_capacity(capacity),
            capacity,
            distance,
            degree,
            max_warps,
            line_size,
            clock: 0,
            table_accesses: 0,
        }
    }
}

impl Default for InterWarpPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for InterWarpPrefetcher {
    fn name(&self) -> &'static str {
        "INTER"
    }

    fn on_demand(&mut self, obs: &DemandObservation<'_>, out: &mut Vec<PrefetchRequest>) {
        let Some(&addr) = obs.lines.first() else {
            return;
        };
        self.table_accesses += 1;
        self.clock += 1;
        let clock = self.clock;

        if let Some(e) = self.entries.iter_mut().find(|e| e.pc == obs.pc) {
            e.lru = clock;
            let dw = obs.warp_slot as i64 - e.last_warp as i64;
            if dw != 0 {
                let diff = addr as i64 - e.last_addr as i64;
                if diff % dw == 0 {
                    let s = diff / dw;
                    if s == e.stride && s != 0 {
                        e.confidence = (e.confidence + 1).min(3);
                    } else {
                        e.stride = s;
                        e.confidence = u8::from(s != 0);
                    }
                } else {
                    e.confidence = 0;
                }
                e.last_warp = obs.warp_slot;
                e.last_addr = addr;
                if e.confidence >= CONF_THRESHOLD {
                    let stride = e.stride;
                    for k in 0..self.degree {
                        let d = (self.distance + k) as i64;
                        let target = obs.warp_slot as i64 + d;
                        if target < 0 || target as usize >= self.max_warps {
                            continue;
                        }
                        let p = addr as i64 + stride * d;
                        if p >= 0 {
                            out.push(PrefetchRequest {
                                line: line_base(p as Addr, self.line_size),
                                pc: obs.pc,
                                target_warp: Some(target as usize),
                            });
                        }
                    }
                }
            } else {
                // Same warp re-executing (loop): refresh the base only.
                e.last_addr = addr;
            }
            return;
        }

        if self.entries.len() == self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full table");
            self.entries.swap_remove(victim);
        }
        self.entries.push(Entry {
            pc: obs.pc,
            last_warp: obs.warp_slot,
            last_addr: addr,
            stride: 0,
            confidence: 0,
            lru: clock,
        });
    }

    fn table_accesses(&self) -> u64 {
        self.table_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::types::CtaCoord;

    fn obs(pc: Pc, warp: WarpSlot, lines: &[Addr]) -> DemandObservation<'_> {
        DemandObservation {
            cycle: 0,
            pc,
            cta_slot: warp / 4,
            cta: CtaCoord {
                x: 0,
                y: 0,
                linear: (warp / 4) as u32,
            },
            warp_in_cta: (warp % 4) as u32,
            warp_slot: warp,
            warps_per_cta: 4,
            lines,
            is_affine: true,
            iter: 0,
        }
    }

    #[test]
    fn detects_stride_across_consecutive_warps() {
        let mut p = InterWarpPrefetcher::new();
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 1, &[0x1200]), &mut out); // Δ=512, conf 1
        assert!(out.is_empty());
        p.on_demand(&obs(8, 2, &[0x1400]), &mut out); // conf 2 → prefetch
        assert_eq!(
            out.iter().map(|r| r.line).collect::<Vec<_>>(),
            vec![0x1600, 0x1800],
            "prefetch for warps 3 and 4"
        );
        assert_eq!(out[0].target_warp, Some(3));
        assert_eq!(out[1].target_warp, Some(4));
    }

    #[test]
    fn crosses_cta_boundary_with_wrong_address() {
        // The defining flaw: warp 3 is the last of CTA 0; warp 4 belongs
        // to another CTA with an unrelated base, but INTER still predicts
        // base + Δ.
        let mut p = InterWarpPrefetcher::new();
        let mut out = Vec::new();
        for w in 0..3 {
            p.on_demand(&obs(8, w, &[0x1000 + w as Addr * 0x200]), &mut out);
        }
        out.clear();
        p.on_demand(&obs(8, 3, &[0x1600]), &mut out);
        // Prefetch for warp 4 predicts 0x1800 — but warp 4's real base
        // (different CTA) would be elsewhere. INTER has no way to know.
        assert!(out
            .iter()
            .any(|r| r.target_warp == Some(4) && r.line == 0x1800));
    }

    #[test]
    fn distance_parameter_targets_far_warp() {
        let mut p = InterWarpPrefetcher::with_distance(7);
        let mut out = Vec::new();
        for w in 0..3 {
            p.on_demand(&obs(8, w, &[0x1000 + w as Addr * 0x200]), &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target_warp, Some(2 + 7));
        assert_eq!(out[0].line, 0x1400 + 7 * 0x200);
    }

    #[test]
    fn same_warp_reexecution_does_not_destroy_stride() {
        let mut p = InterWarpPrefetcher::new();
        let mut out = Vec::new();
        p.on_demand(&obs(8, 0, &[0x1000]), &mut out);
        p.on_demand(&obs(8, 1, &[0x1200]), &mut out);
        p.on_demand(&obs(8, 1, &[0x5000]), &mut out); // loop iteration
        p.on_demand(&obs(8, 2, &[0x5200]), &mut out); // stride still 512
        assert!(!out.is_empty());
    }

    #[test]
    fn out_of_range_targets_are_skipped() {
        let mut p = InterWarpPrefetcher::with_params(4, 1, 2, 4, 128);
        let mut out = Vec::new();
        for w in 0..4 {
            p.on_demand(&obs(8, w, &[0x1000 + w as Addr * 0x200]), &mut out);
        }
        // Last trigger at warp 3: targets 4 and 5 exceed max_warps=4.
        assert!(out.iter().all(|r| r.target_warp.unwrap() < 4));
    }
}
