//! Suite-wide properties: every benchmark's affine loads must satisfy
//! the §IV decomposition CAP relies on, at any CTA and scale.

use caps_gpu_sim::coalescer::coalesce;
use caps_gpu_sim::isa::Op;
use caps_workloads::{all_workloads, Scale, Workload};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop::sample::select(all_workloads())
}

proptest! {
    /// The warp stride of every affine load is identical in every CTA of
    /// the kernel — the paper's central premise (§IV), checked across
    /// the whole suite for arbitrary CTAs.
    #[test]
    fn warp_stride_is_kernel_wide(w in workload_strategy(), c1 in 0u32..64, c2 in 0u32..64) {
        let k = w.kernel(Scale::Full);
        let n = k.num_ctas();
        let (a, b) = (c1 % n, c2 % n);
        for op in k.program.ops() {
            if let Op::Ld { pattern, .. } = op {
                if !pattern.is_affine() {
                    continue;
                }
                let ca = k.cta_coord(a);
                let cb = k.cta_coord(b);
                let d_a = pattern.addr(ca, 1, 0, 0) as i64 - pattern.addr(ca, 0, 0, 0) as i64;
                let d_b = pattern.addr(cb, 1, 0, 0) as i64 - pattern.addr(cb, 0, 0, 0) as i64;
                prop_assert_eq!(d_a, d_b, "{}: warp stride differs across CTAs", w.abbr());
            }
        }
    }

    /// Every load of every benchmark coalesces into a bounded number of
    /// valid lines for every warp of every CTA.
    #[test]
    fn every_load_coalesces_cleanly(
        w in workload_strategy(),
        cta in 0u32..256,
        warp in 0u32..8,
        iter in 0u32..4,
    ) {
        let k = w.kernel(Scale::Small);
        let cta = k.cta_coord(cta % k.num_ctas());
        let warp = warp % k.warps_per_cta(32);
        let mut lines = Vec::new();
        for op in k.program.ops() {
            if let Op::Ld { pattern, active_lanes, .. } = op {
                coalesce(pattern, cta, warp, iter, *active_lanes, 128, &mut lines);
                prop_assert!(!lines.is_empty());
                prop_assert!(lines.len() <= 32);
                for &l in &lines {
                    prop_assert_eq!(l % 128, 0);
                }
            }
        }
    }

    /// Address patterns never alias across distinct array regions:
    /// loads and stores of different arrays stay 16 MiB apart.
    #[test]
    fn regions_do_not_alias(w in workload_strategy(), cta in 0u32..64, warp in 0u32..8) {
        let k = w.kernel(Scale::Full);
        let cta = k.cta_coord(cta % k.num_ctas());
        let warp = warp % k.warps_per_cta(32);
        let mut by_region: std::collections::HashMap<u64, &'static str> = Default::default();
        for op in k.program.ops() {
            let (pattern, what) = match op {
                Op::Ld { pattern, .. } => (pattern, "load"),
                Op::St { pattern, .. } => (pattern, "store"),
                _ => continue,
            };
            if !pattern.is_affine() {
                continue;
            }
            let a = pattern.addr(cta, warp, 0, 0);
            let region = a >> 24;
            by_region.entry(region).or_insert(what);
            // A region is 16 MiB: all addresses of this op must stay in
            // one or two adjacent regions (offsets may cross one edge).
            let a_last = pattern.addr(cta, warp, 31, 3);
            prop_assert!((a_last >> 24) - region <= 1, "{}: op spans regions", w.abbr());
        }
    }
}

#[test]
fn small_scale_kernels_are_strictly_smaller() {
    for w in all_workloads() {
        let full = w.kernel(Scale::Full);
        let small = w.kernel(Scale::Small);
        assert!(
            small.num_ctas() <= full.num_ctas(),
            "{}: small scale must not exceed full",
            w.abbr()
        );
    }
}

#[test]
fn bfs_frontier_divergence_reduces_dynamic_loads() {
    // The SkipIf predicate makes only ~half the warps expand edges: the
    // dynamic load count must be well below the undiverged bound.
    use caps_gpu_sim::config::GpuConfig;
    use caps_gpu_sim::gpu::Gpu;
    use caps_gpu_sim::prefetch::null_factory;
    let k = Workload::Bfs.kernel(Scale::Small);
    let warps = k.total_warps(32);
    let stats = Gpu::new(GpuConfig::test_small(), k, &*null_factory()).run(10_000_000);
    // Undiverged: every warp would issue 4 metadata + 2·3 loop loads…
    let undiverged_min = warps * (4 + 3 * 2);
    assert!(
        stats.warp_instructions > 0 && stats.l1d_demand_accesses > 0,
        "kernel ran"
    );
    assert!(
        stats.l1d_demand_accesses < undiverged_min * 4,
        "sanity bound"
    );
    // The loop body's loads must be visibly sparser than all-warps-taken.
    let per_warp = stats.l1d_demand_accesses as f64 / warps as f64;
    assert!(
        per_warp < 30.0,
        "diverged BFS should average few line requests per warp, got {per_warp:.1}"
    );
}

#[test]
fn launch_counts_are_sane() {
    for w in all_workloads() {
        let l = w.launches();
        assert!((1..=8).contains(&l), "{}: {l} launches", w.abbr());
    }
}
