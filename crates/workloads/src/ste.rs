//! STE — stencil (Parboil).
//!
//! 7-point 3-D stencil sweeping z in a 62-iteration loop. Eight of the
//! twelve static loads sit in the loop body (Fig. 4), all taps of the
//! *same* input volume: row neighbours reuse lines fetched by adjacent
//! warps, and the z−1 plane is the previous iteration's z plane.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{surface_at, surface_loop_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

const ROW: i64 = 16 * 32 * 4;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "STE",
        name: "stencil",
        suite: "Parboil",
        irregular: false,
        looped_loads: 8,
        total_loads: 12,
        top4_iters: [62.0, 62.0, 62.0, 62.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let (gx, gy) = match scale {
        Scale::Full => (16, 12),
        Scale::Small => (4, 4),
    };
    let iters = scale.iters(62);
    let x_pitch = 32 * 4;
    let y_pitch = ROW * 4;
    let mut b = ProgramBuilder::new();
    // Four boundary-condition loads outside the loop (second array).
    for off in 0..4i64 {
        b = b.ld(surface_at(1, off * ROW, x_pitch, y_pitch, ROW));
    }
    b = b.wait().alu(12).begin_loop(iters);
    // Eight taps of the input volume per z-plane: fresh plane centre,
    // row neighbours (warp-overlapping), column neighbours (same line),
    // and the z−1 plane re-read (previous iteration's fetch).
    for &off in &[
        ROW,     // band z centre (fresh)
        ROW - 4, // z, col −1 (same line)
        ROW + 4, // z, col +1 (same line)
        2 * ROW, // z, row +1 (overlaps warp w+1)
        0,       // z−1 centre (last iteration's band)
        -4,      // z−1 col −1
        4,       // z−1 col +1
        -(ROW),  // z−2 row (still warm)
    ] {
        b = b.ld(surface_loop_at(0, off, x_pitch, y_pitch, ROW, ROW));
        if off == 2 * ROW {
            b = b.wait().alu(16);
        }
    }
    let prog = b
        .wait()
        .alu(30)
        .st(surface_loop_at(5, 0, x_pitch, y_pitch, ROW, ROW))
        .end_loop()
        .build();
    Kernel::new("STE", (gx, gy), 128, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 12);
        assert_eq!(loads.iter().filter(|(_, _, l)| *l).count(), 8);
        assert!(loads.iter().any(|&(_, it, _)| it == 62));
    }
}
