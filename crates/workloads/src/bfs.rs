//! BFS — Breadth First Search (Rodinia).
//!
//! The paper's Fig. 6b example. Thread-indexed metadata
//! (`g_graph_mask[tid]`, `g_graph_nodes[tid]`, `g_cost[tid]`) is
//! perfectly predictable from CTA id and thread id — CAP prefetches it —
//! while the edge-expansion loop chases `g_graph_edges[i]`-indexed
//! neighbours whose addresses are loaded data: excluded from prefetch by
//! the indirect-access detection.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{indirect, linear, linear_loop};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "BFS",
        name: "Breadth First Search",
        suite: "Rodinia",
        irregular: true,
        looped_loads: 5,
        total_loads: 9,
        top4_iters: [5.0, 5.0, 5.0, 5.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(128);
    let iters = match scale {
        Scale::Full => 5, // mean out-degree of the frontier
        Scale::Small => 2,
    };
    let cta_pitch = 8 * 128; // MAX_THREADS_PER_BLOCK · 4 B, Fig. 6b's C2·C3
    let prog = ProgramBuilder::new()
        .ld(linear(0, cta_pitch, 128)) // g_graph_mask[tid]
        .ld(linear(1, cta_pitch * 2, 256)) // g_graph_nodes[tid] (8 B records)
        .ld(linear(2, cta_pitch, 128)) // g_cost[tid]
        .ld(linear(3, cta_pitch, 128)) // g_updating_mask[tid]
        .wait()
        .alu(10)
        // Frontier predicate (`if (tid < n && g_graph_mask[tid])`):
        // roughly half the warps expand edges this sweep.
        .begin_skip(2)
        .begin_loop(iters)
        .ld(linear_loop(4, cta_pitch, 128, 8 * 128)) // g_graph_edges[i]
        .ld_lanes(indirect(8, 1 << 17, 53), 8) // g_graph_visited[id]
        .ld_lanes(indirect(9, 1 << 17, 59), 8) // g_cost[id]
        .wait()
        .alu(10)
        .st_lanes(indirect(10, 1 << 17, 61), 8) // g_updating_graph_mask[id]
        .end_loop()
        .end_skip()
        .st(linear(0, cta_pitch, 128)) // g_graph_mask[tid] = false
        .build();
    Kernel::new("BFS", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;

    #[test]
    fn metadata_is_affine_edges_are_indirect() {
        let k = kernel(Scale::Full);
        let affine_loads = k
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Ld { pattern, .. } if pattern.is_affine()))
            .count();
        let indirect_loads = k
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Ld { pattern, .. } if !pattern.is_affine()))
            .count();
        assert_eq!(affine_loads, 5, "mask/nodes/cost/updating + edge scan");
        assert_eq!(indirect_loads, 2, "visited + cost chases");
    }

    #[test]
    fn frontier_loop_iterates() {
        let k = kernel(Scale::Full);
        assert!(k
            .program
            .static_loads()
            .iter()
            .any(|&(_, it, l)| l && it == 5));
    }
}
