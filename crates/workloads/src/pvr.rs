//! PVR — PageViewRank (Mars MapReduce).
//!
//! MapReduce-style log ranking: strided reads of record metadata mixed
//! with hash-bucket chases (indirect). Fig. 4 reports 4 of 32 static
//! loads repeated; the indirect chases dominate dynamic count, which is
//! why the paper's coverage for PVR is low — CAP prefetches only the
//! strided metadata.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{indirect, linear, linear_loop};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "PVR",
        name: "PageViewRank",
        suite: "Mars",
        irregular: true,
        looped_loads: 4,
        total_loads: 32,
        top4_iters: [12.0, 12.0, 12.0, 12.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(48);
    let iters = scale.iters(12);
    let cta_pitch = 8 * 128 * 12;
    let mut b = ProgramBuilder::new();
    // Straight-line metadata loads (a representative 6 of the static 28
    // non-repeated loads; see DESIGN.md on static-count scaling).
    for arr in 0..6u32 {
        b = b.ld(linear(arr, cta_pitch, 128));
    }
    b = b.wait().alu(16).begin_loop(iters);
    let prog = b
        .ld(linear_loop(0, cta_pitch, 128, 8 * 128)) // record scan
        .ld_lanes(indirect(8, 1 << 17, 31), 8) // URL hash chase
        .ld_lanes(indirect(9, 1 << 17, 37), 8) // rank bucket chase
        .wait()
        .alu(14)
        .end_loop()
        .st(linear(10, cta_pitch, 128))
        .build();
    Kernel::new("PVR", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;

    #[test]
    fn mixes_strided_and_indirect_loads() {
        let k = kernel(Scale::Full);
        let (mut affine, mut ind) = (0, 0);
        for op in k.program.ops() {
            if let Op::Ld { pattern, .. } = op {
                if pattern.is_affine() {
                    affine += 1;
                } else {
                    ind += 1;
                }
            }
        }
        assert!(affine >= 6);
        assert_eq!(ind, 2);
    }

    #[test]
    fn looped_loads_present() {
        let k = kernel(Scale::Full);
        assert!(k
            .program
            .static_loads()
            .iter()
            .any(|(_, it, l)| *l && *it == 12));
    }
}
