//! BPR — backprop (Rodinia).
//!
//! Neural-network training layer: the weight matrices are shared by all
//! CTAs (L2-hot after the first wave) while per-sample activations
//! stream. 14 static loads, none in loops (Fig. 4), moderate arithmetic,
//! two stores — a bursty, load-dense kernel.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{linear, linear_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "BPR",
        name: "backprop",
        suite: "Rodinia",
        irregular: false,
        looped_loads: 0,
        total_loads: 14,
        top4_iters: [1.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(128);
    let cta_pitch = 512; // adjacent CTAs overlap half a stripe (reuse)
    let mut b = ProgramBuilder::new();
    // Private activations (streaming, strided).
    for arr in 0..6u32 {
        b = b.ld(linear(arr, cta_pitch, 128));
        if arr % 3 == 2 {
            b = b.wait().alu(20);
        }
    }
    // Shared weight tiles (identical across CTAs; L2-resident).
    for arr in 8..16u32 {
        b = b.ld(linear_at(arr, 0, 0, 256));
        if arr % 4 == 3 {
            b = b.wait().alu(20);
        }
    }
    let prog = b
        .wait()
        .alu(24)
        .st(linear(16, cta_pitch, 128))
        .st(linear(17, cta_pitch, 128))
        .build();
    Kernel::new("BPR", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_straight_line_loads() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 14);
        assert!(loads.iter().all(|(_, _, looped)| !looped));
        assert_eq!(k.warps_per_cta(32), 8);
    }
}
