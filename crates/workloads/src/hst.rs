//! HST — histogram (CUDA SDK).
//!
//! Each warp scans a chunk of input in a 15-iteration loop (the suite's
//! single static load sits in that loop, Fig. 4: 1/1) and scatters
//! increments into bins. The scatter is a data-dependent *store* — loads
//! stay strided, so prefetching still applies to the scan.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{indirect, linear_loop};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "HST",
        name: "histogram",
        suite: "CUDA SDK",
        irregular: false,
        looped_loads: 1,
        total_loads: 1,
        top4_iters: [15.0, 0.0, 0.0, 0.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(96);
    let iters = scale.iters(15);
    let cta_pitch = 8 * 128 * 15; // warps × line × iters
    let prog = ProgramBuilder::new()
        .begin_loop(iters)
        .ld(linear_loop(0, cta_pitch, 128, 8 * 128)) // input chunk scan
        .wait()
        .alu(20) // bin computation
        .st_lanes(indirect(1, 1 << 16, 77), 8) // scatter into bins
        .end_loop()
        .build();
    Kernel::new("HST", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;

    #[test]
    fn single_looped_load() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 1);
        assert!(loads[0].2);
        assert_eq!(loads[0].1, 15);
    }

    #[test]
    fn scatter_is_a_store_not_a_load() {
        let k = kernel(Scale::Full);
        let indirect_stores = k
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::St { pattern, .. } if !pattern.is_affine()))
            .count();
        assert_eq!(indirect_stores, 1);
    }
}
