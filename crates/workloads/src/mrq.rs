//! MRQ — mri-q (Parboil).
//!
//! MRI reconstruction Q-matrix computation: the k-space trajectory
//! arrays (kx/ky/kz/phi) are shared by every CTA and become L2-hot;
//! three sample arrays stream privately. Heavy trigonometric arithmetic
//! follows — compute-bound, so prefetch gains stay small.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{linear, linear_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "MRQ",
        name: "mri-q",
        suite: "Parboil",
        irregular: false,
        looped_loads: 0,
        total_loads: 7,
        top4_iters: [1.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(256);
    let cta_pitch = 8 * 128;
    let mut b = ProgramBuilder::new();
    // Private sample streams.
    for arr in 0..3u32 {
        b = b.ld(linear(arr, cta_pitch, 128));
    }
    // Shared k-space trajectory (identical addresses in every CTA).
    for arr in 4..8u32 {
        b = b.ld(linear_at(arr, 0, 0, 128));
    }
    let prog = b
        .wait()
        .alu(60) // sin/cos accumulation
        .alu(60)
        .st(linear(8, cta_pitch, 128))
        .build();
    Kernel::new("MRQ", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_loads_no_loops() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 7);
        assert!(loads.iter().all(|(_, _, l)| !l));
    }
}
