//! The workload registry (Table IV).

use caps_gpu_sim::kernel::Kernel;

use crate::Scale;

/// The 16 benchmarks of the evaluation (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Coulombic Potential (CUDA SDK / Parboil lineage).
    Cp,
    /// laplace3D (GPGPU-Sim suite).
    Lps,
    /// backprop (Rodinia).
    Bpr,
    /// hotspot (Rodinia).
    Hsp,
    /// mri-q (Parboil).
    Mrq,
    /// stencil (Parboil).
    Ste,
    /// convolutionSeparable (CUDA SDK).
    Cnv,
    /// histogram (CUDA SDK).
    Hst,
    /// jacobi1D (Polybench/GPU).
    Jc1,
    /// FFT (SHOC).
    Fft,
    /// scan (CUDA SDK).
    Scn,
    /// MatrixMul (CUDA SDK).
    Mm,
    /// PageViewRank (Mars).
    Pvr,
    /// Connected Component Labelling.
    Ccl,
    /// Breadth First Search (Rodinia).
    Bfs,
    /// Kmeans (Mars/Rodinia).
    Km,
}

/// Static description of one workload: Table IV identity plus the Fig. 4
/// characterization (repeated/total static loads and the mean loop trip
/// counts of the four most frequent loads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadInfo {
    /// Paper abbreviation (x-axis label).
    pub abbr: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// Source suite.
    pub suite: &'static str,
    /// One of the four irregular (graph-style) applications.
    pub irregular: bool,
    /// Static loads inside loop bodies (numerator under Fig. 4 bars).
    pub looped_loads: u32,
    /// Total static loads by PC (denominator under Fig. 4 bars).
    pub total_loads: u32,
    /// Mean iteration counts of the four most frequently executed loads.
    pub top4_iters: [f32; 4],
}

impl Workload {
    /// Registry order matches the paper's figure x-axes: 12 regular
    /// benchmarks, then the 4 irregular ones.
    pub const ALL: [Workload; 16] = [
        Workload::Cp,
        Workload::Lps,
        Workload::Bpr,
        Workload::Hsp,
        Workload::Mrq,
        Workload::Ste,
        Workload::Cnv,
        Workload::Hst,
        Workload::Jc1,
        Workload::Fft,
        Workload::Scn,
        Workload::Mm,
        Workload::Pvr,
        Workload::Ccl,
        Workload::Bfs,
        Workload::Km,
    ];

    /// Static description.
    pub fn info(self) -> WorkloadInfo {
        match self {
            Workload::Cp => crate::cp::info(),
            Workload::Lps => crate::lps::info(),
            Workload::Bpr => crate::bpr::info(),
            Workload::Hsp => crate::hsp::info(),
            Workload::Mrq => crate::mrq::info(),
            Workload::Ste => crate::ste::info(),
            Workload::Cnv => crate::cnv::info(),
            Workload::Hst => crate::hst::info(),
            Workload::Jc1 => crate::jc1::info(),
            Workload::Fft => crate::fft::info(),
            Workload::Scn => crate::scn::info(),
            Workload::Mm => crate::mm::info(),
            Workload::Pvr => crate::pvr::info(),
            Workload::Ccl => crate::ccl::info(),
            Workload::Bfs => crate::bfs::info(),
            Workload::Km => crate::km::info(),
        }
    }

    /// Materialize the kernel at `scale`.
    pub fn kernel(self, scale: Scale) -> Kernel {
        match self {
            Workload::Cp => crate::cp::kernel(scale),
            Workload::Lps => crate::lps::kernel(scale),
            Workload::Bpr => crate::bpr::kernel(scale),
            Workload::Hsp => crate::hsp::kernel(scale),
            Workload::Mrq => crate::mrq::kernel(scale),
            Workload::Ste => crate::ste::kernel(scale),
            Workload::Cnv => crate::cnv::kernel(scale),
            Workload::Hst => crate::hst::kernel(scale),
            Workload::Jc1 => crate::jc1::kernel(scale),
            Workload::Fft => crate::fft::kernel(scale),
            Workload::Scn => crate::scn::kernel(scale),
            Workload::Mm => crate::mm::kernel(scale),
            Workload::Pvr => crate::pvr::kernel(scale),
            Workload::Ccl => crate::ccl::kernel(scale),
            Workload::Bfs => crate::bfs::kernel(scale),
            Workload::Km => crate::km::kernel(scale),
        }
    }

    /// Paper abbreviation.
    pub fn abbr(self) -> &'static str {
        self.info().abbr
    }

    /// Back-to-back kernel launches simulated per run. The paper runs
    /// whole applications; iterative benchmarks (relaxations, stencil
    /// time steps, frontier sweeps, clustering epochs) relaunch their
    /// kernel many times with a warm L2, which is where most of their
    /// L2 locality comes from.
    pub fn launches(self) -> u32 {
        match self {
            // Iterative solvers / sweeps: several warm relaunches.
            Workload::Jc1 | Workload::Hsp | Workload::Bfs | Workload::Km => 4,
            Workload::Cnv | Workload::Scn | Workload::Hst => 3,
            Workload::Bpr | Workload::Ccl | Workload::Pvr => 2,
            // Single long kernels (the z-loop/tile-loop is in-kernel).
            Workload::Lps | Workload::Ste | Workload::Mm => 1,
            Workload::Cp | Workload::Mrq | Workload::Fft => 2,
        }
    }
}

/// All 16 workloads in figure order.
pub fn all_workloads() -> Vec<Workload> {
    Workload::ALL.to_vec()
}

/// The 12 regular workloads.
pub fn regular_workloads() -> Vec<Workload> {
    Workload::ALL
        .iter()
        .copied()
        .filter(|w| !w.info().irregular)
        .collect()
}

/// The 4 irregular (graph-style) workloads.
pub fn irregular_workloads() -> Vec<Workload> {
    Workload::ALL
        .iter()
        .copied()
        .filter(|w| w.info().irregular)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_has_sixteen_workloads() {
        assert_eq!(Workload::ALL.len(), 16);
        assert_eq!(regular_workloads().len(), 12);
        assert_eq!(irregular_workloads().len(), 4);
    }

    #[test]
    fn abbreviations_match_table_iv() {
        let abbrs: Vec<_> = all_workloads().iter().map(|w| w.abbr()).collect();
        assert_eq!(
            abbrs,
            vec![
                "CP", "LPS", "BPR", "HSP", "MRQ", "STE", "CNV", "HST", "JC1", "FFT", "SCN", "MM",
                "PVR", "CCL", "BFS", "KM"
            ]
        );
    }

    #[test]
    fn irregular_set_matches_paper() {
        let irr: Vec<_> = irregular_workloads().iter().map(|w| w.abbr()).collect();
        assert_eq!(irr, vec!["PVR", "CCL", "BFS", "KM"]);
    }

    #[test]
    fn every_kernel_validates_at_both_scales() {
        for w in all_workloads() {
            for scale in [Scale::Full, Scale::Small] {
                let k = w.kernel(scale);
                assert!(k.validate().is_ok(), "{} invalid at {scale:?}", w.abbr());
                assert!(k.num_ctas() >= 4);
                assert!(k.warps_per_cta(32) >= 2, "{}", w.abbr());
            }
        }
    }

    #[test]
    fn fig4_ratios_match_paper_annotations() {
        // "repeated loads / total loads (by PC)" under Fig. 4.
        let expect = [
            ("CP", 0, 2),
            ("LPS", 2, 4),
            ("BPR", 0, 14),
            ("HSP", 0, 2),
            ("MRQ", 0, 7),
            ("STE", 8, 12),
            ("CNV", 0, 10),
            ("HST", 1, 1),
            ("JC1", 0, 4),
            ("FFT", 0, 16),
            ("SCN", 0, 1),
            ("MM", 2, 2),
            ("PVR", 4, 32),
            ("CCL", 1, 22),
            ("BFS", 5, 9),
            ("KM", 10, 144),
        ];
        for (abbr, looped, total) in expect {
            let w = all_workloads()
                .into_iter()
                .find(|w| w.abbr() == abbr)
                .unwrap();
            let info = w.info();
            assert_eq!(info.looped_loads, looped, "{abbr}");
            assert_eq!(info.total_loads, total, "{abbr}");
        }
    }

    #[test]
    fn looped_kernels_contain_loops_in_ir() {
        for w in all_workloads() {
            let info = w.info();
            let k = w.kernel(Scale::Full);
            let loads = k.program.static_loads();
            let looped_in_ir = loads.iter().filter(|(_, _, in_loop)| *in_loop).count();
            if info.looped_loads > 0 {
                assert!(
                    looped_in_ir > 0,
                    "{} declares loops but IR has none",
                    info.abbr
                );
            } else {
                assert_eq!(looped_in_ir, 0, "{} declares no loops", info.abbr);
            }
        }
    }

    #[test]
    fn irregular_kernels_carry_indirect_loads() {
        use caps_gpu_sim::isa::Op;
        for w in all_workloads() {
            let k = w.kernel(Scale::Full);
            let has_indirect = k.program.ops().iter().any(|op| match op {
                Op::Ld { pattern, .. } => !pattern.is_affine(),
                _ => false,
            });
            assert_eq!(
                has_indirect,
                w.info().irregular,
                "{}: indirect loads should appear iff irregular",
                w.abbr()
            );
        }
    }
}
