//! Helpers for authoring benchmark kernels.
//!
//! Arrays live in disjoint 16 MiB regions so prefetch streams of distinct
//! loads never alias. The pattern constructors encode the §IV address
//! decomposition idioms that recur across the suite.

use caps_gpu_sim::isa::{AddrPattern, AffinePattern, CtaTerm, IndirectPattern};
use caps_gpu_sim::types::Addr;

/// Base address of array number `i` (16 MiB apart).
#[inline]
pub fn region(i: u32) -> Addr {
    0x1000_0000 + ((i as Addr) << 24)
}

/// A 1-D grid access: `addr = base + cta·pitch + warp·Δ + lane·4`.
/// `pitch ≠ warps_per_cta·Δ` in general — the inter-CTA discontinuity.
pub fn linear(array: u32, cta_pitch: i64, warp_stride: i64) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: region(array),
        cta_term: CtaTerm::Linear { pitch: cta_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride: 0,
    })
}

/// A 2-D surface access: `θ = cta.x·x_pitch + cta.y·y_pitch` (LPS-style,
/// Fig. 6a). Consecutively launched CTAs wrap rows, so θ deltas are
/// irregular in launch order.
pub fn surface(array: u32, x_pitch: i64, y_pitch: i64, warp_stride: i64) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: region(array),
        cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride: 0,
    })
}

/// A loop access marching by `iter_stride` bytes per iteration on top of
/// a 2-D surface base.
pub fn surface_loop(
    array: u32,
    x_pitch: i64,
    y_pitch: i64,
    warp_stride: i64,
    iter_stride: i64,
) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: region(array),
        cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride,
    })
}

/// A loop access on a 1-D grid.
pub fn linear_loop(array: u32, cta_pitch: i64, warp_stride: i64, iter_stride: i64) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: region(array),
        cta_term: CtaTerm::Linear { pitch: cta_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride,
    })
}

/// A 1-D grid access at a byte offset within the array — models
/// neighbour loads (`A[i-1]`, `A[i+1]`) that overlap other threads'
/// accesses and create the cache reuse real kernels exhibit.
pub fn linear_at(array: u32, offset: i64, cta_pitch: i64, warp_stride: i64) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: (region(array) as i64 + offset) as Addr,
        cta_term: CtaTerm::Linear { pitch: cta_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride: 0,
    })
}

/// A 2-D surface access at a byte offset (stencil taps / halo rows of
/// one shared array).
pub fn surface_at(
    array: u32,
    offset: i64,
    x_pitch: i64,
    y_pitch: i64,
    warp_stride: i64,
) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: (region(array) as i64 + offset) as Addr,
        cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride: 0,
    })
}

/// A 2-D surface loop access at a byte offset.
pub fn surface_loop_at(
    array: u32,
    offset: i64,
    x_pitch: i64,
    y_pitch: i64,
    warp_stride: i64,
    iter_stride: i64,
) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: (region(array) as i64 + offset) as Addr,
        cta_term: CtaTerm::Surface2D { x_pitch, y_pitch },
        warp_stride,
        lane_stride: 4,
        iter_stride,
    })
}

/// A broadcast access (all lanes read the same small table — e.g.
/// convolution coefficients, k-means centroids).
pub fn broadcast(array: u32) -> AddrPattern {
    AddrPattern::Affine(AffinePattern {
        base: region(array),
        cta_term: CtaTerm::Linear { pitch: 0 },
        warp_stride: 0,
        lane_stride: 0,
        iter_stride: 128,
    })
}

/// A data-dependent (graph-style) access over a `len`-byte footprint —
/// stride-free by construction, excluded by CAP's indirect detection.
pub fn indirect(array: u32, len: u64, salt: u64) -> AddrPattern {
    AddrPattern::Indirect(IndirectPattern {
        region_base: region(array),
        region_len: len,
        salt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn regions_do_not_overlap() {
        for i in 0..32u32 {
            assert_eq!(region(i + 1) - region(i), 1 << 24);
        }
    }

    #[test]
    fn linear_pattern_strides_per_warp() {
        let p = linear(0, 4096, 512);
        let cta = CtaCoord::from_linear(3, 8);
        let a0 = p.addr(cta, 0, 0, 0);
        let a1 = p.addr(cta, 1, 0, 0);
        assert_eq!(a1 - a0, 512);
        assert_eq!(a0, region(0) + 3 * 4096);
    }

    #[test]
    fn surface_pattern_wraps_rows_irregularly() {
        let p = surface(0, 128, 99_840, 1024);
        let grid_x = 16;
        let theta = |l: u32| {
            let c = CtaCoord::from_linear(l, grid_x);
            p.addr(c, 0, 0, 0)
        };
        // Step within a row vs. step across the row wrap differ.
        let in_row = theta(1) as i64 - theta(0) as i64;
        let wrap = theta(16) as i64 - theta(15) as i64;
        assert_ne!(in_row, wrap);
    }

    #[test]
    fn broadcast_touches_one_line_per_iteration() {
        let p = broadcast(2);
        let cta = CtaCoord::from_linear(5, 4);
        assert_eq!(p.addr(cta, 0, 0, 0), p.addr(cta, 3, 31, 0));
        assert_eq!(p.addr(cta, 0, 0, 1) - p.addr(cta, 0, 0, 0), 128);
    }

    #[test]
    fn indirect_is_affine_false() {
        assert!(!indirect(9, 1 << 22, 1).is_affine());
        assert!(linear(0, 0, 0).is_affine());
    }
}
