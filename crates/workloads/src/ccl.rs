//! CCL — Connected Component Labelling (GPU graph suite).
//!
//! Label propagation over an image/graph: strided reads of the label and
//! adjacency arrays plus neighbour chases through data-dependent
//! indices. One of 22 static loads repeats (Fig. 4).

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{indirect, linear};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "CCL",
        name: "Connected Component Labelling",
        suite: "IISWC'14 graph suite",
        irregular: true,
        looped_loads: 1,
        total_loads: 22,
        top4_iters: [24.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(96);
    let iters = scale.iters(24);
    let cta_pitch = 8 * 128 * 4;
    let mut b = ProgramBuilder::new();
    // Strided structure loads (representative 5 of 21 straight-line).
    for arr in 0..5u32 {
        b = b.ld(linear(arr, cta_pitch, 128));
    }
    b = b.wait().alu(14);
    // Neighbour label chases.
    b = b
        .ld_lanes(indirect(8, 1 << 17, 41), 8)
        .ld_lanes(indirect(9, 1 << 17, 43), 8)
        .wait()
        .alu(4);
    let prog = b
        // Only unconverged labels keep propagating (divergent frontier).
        .begin_skip(2)
        .begin_loop(iters)
        .ld_lanes(indirect(10, 1 << 17, 47), 8) // frontier chase
        .wait()
        .alu(12)
        .end_loop()
        .end_skip()
        .st(linear(11, cta_pitch, 128))
        .build();
    Kernel::new("CCL", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_declaration() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        let looped = loads.iter().filter(|(_, _, l)| *l).count();
        assert_eq!(looped, 1);
        assert!(loads.iter().any(|&(_, it, l)| l && it == 24));
    }
}
