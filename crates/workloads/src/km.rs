//! KM — Kmeans (Mars / Rodinia).
//!
//! Cluster assignment: a 10-iteration loop over clusters reads the
//! point's feature vector (strided) and the centroid table (broadcast),
//! then a membership chase updates cluster state through data-dependent
//! indices. Fig. 4 reports 10 of 144 static loads repeated — the static
//! count is dominated by an unrolled distance computation which we model
//! with a representative subset (see DESIGN.md).

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{broadcast, indirect, linear, linear_loop};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "KM",
        name: "Kmeans",
        suite: "Mars",
        irregular: true,
        looped_loads: 10,
        total_loads: 144,
        top4_iters: [10.0, 10.0, 10.0, 10.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(48);
    let iters = scale.iters(10); // clusters
    let cta_pitch = 8 * 128 * 10;
    let mut b = ProgramBuilder::new();
    // Representative straight-line feature loads.
    for arr in 0..4u32 {
        b = b.ld(linear(arr, cta_pitch, 128));
    }
    b = b.wait().alu(4).begin_loop(iters);
    // Per-cluster distance: feature stripe + centroid broadcast.
    let prog = b
        .ld(linear_loop(0, cta_pitch, 128, 8 * 128))
        .ld(broadcast(5))
        .wait()
        .alu(20)
        .end_loop()
        .ld_lanes(indirect(8, 1 << 22, 67), 8) // membership chase
        .wait()
        .alu(12)
        .st(linear(9, cta_pitch, 128))
        .build();
    Kernel::new("KM", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_loop_present() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert!(loads.iter().any(|&(_, it, l)| l && it == 10));
        let looped = loads.iter().filter(|(_, _, l)| *l).count();
        assert_eq!(looped, 2, "feature stripe + centroid broadcast in loop");
    }
}
