//! # caps-workloads — the 16-benchmark evaluation suite (Table IV)
//!
//! Synthetic kernels mirroring the memory behaviour of the paper's
//! workloads. The real benchmarks are CUDA/OpenCL binaries; what CAPS and
//! the baseline prefetchers react to is the *structure of their load
//! address streams* and issue interleavings — which §IV decomposes into
//! per-CTA bases θ, a kernel-wide warp stride Δ, per-lane pitch, loop
//! strides, and data-dependent indirect streams. Each module here encodes
//! one benchmark's published characteristics:
//!
//! * grid geometry and warps per CTA;
//! * the static load count and how many sit in loops, with the loop trip
//!   counts of the most frequent loads (Fig. 4);
//! * strided (affine) vs. indirect access classes (PVR/CCL/BFS/KM carry
//!   indirect graph-style loads, §VI-A);
//! * compute intensity and store traffic.
//!
//! Kernels materialize at two scales: [`Scale::Full`] for
//! figure regeneration and [`Scale::Small`] for fast tests.

#![warn(missing_docs)]

pub mod dsl;
pub mod suite;

mod bfs;
mod bpr;
mod ccl;
mod cnv;
mod cp;
mod fft;
mod hsp;
mod hst;
mod jc1;
mod km;
mod lps;
mod mm;
mod mrq;
mod pvr;
mod scn;
mod ste;

pub use suite::{all_workloads, irregular_workloads, regular_workloads, Workload, WorkloadInfo};

/// Kernel sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale grids (figure regeneration).
    Full,
    /// Small grids for unit/integration tests.
    Small,
}

impl Scale {
    /// Scale a full-size CTA count down for tests.
    #[inline]
    pub fn ctas(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Small => (full / 8).max(4),
        }
    }

    /// Scale a loop trip count down for tests.
    #[inline]
    pub fn iters(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Small => (full / 8).max(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_shrinks_but_never_to_zero() {
        assert_eq!(Scale::Full.ctas(192), 192);
        assert_eq!(Scale::Small.ctas(192), 24);
        assert_eq!(Scale::Small.ctas(8), 4);
        assert_eq!(Scale::Full.iters(99), 99);
        assert_eq!(Scale::Small.iters(99), 12);
        assert_eq!(Scale::Small.iters(3), 2);
    }
}
