//! CNV — convolutionSeparable (CUDA SDK).
//!
//! Column-pass separable convolution. The real kernel stages its tile
//! and apron rows into shared memory: the *global* loads are
//! warp-partitioned (each warp fetches distinct rows, one per tap PC),
//! perfectly strided, and touched exactly once per CTA — the data reuse
//! happens in shared memory, not in L1. Vertically adjacent CTAs fetch
//! overlapping aprons, so the image is L2-resident after the leading
//! wave. The result is a memory-latency-bound kernel whose every load
//! CAP can predict — the paper's best case (+27%).

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{broadcast, surface_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

/// Image row: 32 CTAs across × 32 lanes × 4 B.
const ROW: i64 = 32 * 32 * 4;
/// Warps per CTA (256 threads).
const WPC: i64 = 8;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "CNV",
        name: "convolutionSeparable",
        suite: "CUDA SDK",
        irregular: false,
        looped_loads: 0,
        total_loads: 10,
        top4_iters: [1.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let (gx, gy) = match scale {
        Scale::Full => (32, 6),
        Scale::Small => (8, 4),
    };
    let x_pitch = 32 * 4; // column offset of the CTA
    let y_pitch = ROW * WPC; // CTA row block
    let mut b = ProgramBuilder::new();
    // Eight warp-partitioned apron fetches: tap t loads row block
    // 8·(cta.y + t) + w — distinct rows per (warp, tap), overlapping
    // the aprons of vertical neighbour CTAs (L2 reuse only).
    for tap in -3i64..=4 {
        b = b.ld(surface_at(0, (tap + 3) * WPC * ROW, x_pitch, y_pitch, ROW));
        if tap == 0 {
            b = b.wait().alu(40);
        }
    }
    let prog = b
        .ld(broadcast(2)) // filter coefficients (hot line)
        .ld(surface_at(3, 0, x_pitch, y_pitch, ROW)) // edge mask
        .wait()
        .alu(40)
        .st(surface_at(1, 0, x_pitch, y_pitch, ROW))
        .build();
    Kernel::new("CNV", (gx, gy), 32 * WPC as u32, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::coalescer::coalesce;
    use caps_gpu_sim::isa::Op;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn ten_loads_no_loops() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 10);
        assert!(loads.iter().all(|(_, _, l)| !l));
        assert_eq!(k.warps_per_cta(32), 8);
    }

    #[test]
    fn taps_are_warp_partitioned_within_a_cta() {
        // No two (warp, tap) pairs of one CTA touch the same image line:
        // the global loads are cold per CTA (smem holds the reuse).
        let k = kernel(Scale::Full);
        let cta = CtaCoord::from_linear(33, 32);
        let mut seen = std::collections::HashSet::new();
        let mut lines = Vec::new();
        let mut pairs = 0;
        for op in k.program.ops() {
            if let Op::Ld { pattern, .. } = op {
                if !pattern.is_affine() {
                    continue;
                }
                for w in 0..8u32 {
                    coalesce(pattern, cta, w, 0, 32, 128, &mut lines);
                    pairs += 1;
                    for &l in &lines {
                        seen.insert(l);
                    }
                }
            }
        }
        // 8 taps × 8 warps + edge mask 8 warps are all distinct lines;
        // the broadcast filter adds one shared line (10 affine loads).
        assert_eq!(pairs, 10 * 8);
        assert_eq!(seen.len(), 9 * 8 + 1);
    }

    #[test]
    fn vertical_neighbours_share_apron_rows() {
        // Tap +1 of CTA (x, y) touches the same rows as tap 0 of
        // CTA (x, y+1): the cross-CTA L2 reuse.
        let k = kernel(Scale::Full);
        let Op::Ld { pattern: tap0, .. } = k.program.op(3) else {
            panic!()
        }; // tap 0
        let Op::Ld { pattern: tap1, .. } = k.program.op(6) else {
            panic!()
        }; // tap +1
        let a = CtaCoord {
            x: 3,
            y: 1,
            linear: 35,
        };
        let b = CtaCoord {
            x: 3,
            y: 2,
            linear: 67,
        };
        assert_eq!(tap1.addr(a, 2, 5, 0), tap0.addr(b, 2, 5, 0));
    }
}
