//! FFT (SHOC).
//!
//! A radix-stage butterfly: eight data loads of the CTA-private signal
//! at doubling strides, four twiddle-factor loads shared across all
//! CTAs, and four bit-reversal index reads — sixteen straight-line loads
//! with heterogeneous strides. More distinct PCs than the CAP tables
//! hold, exercising entry replacement.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{linear, linear_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "FFT",
        name: "FFT",
        suite: "SHOC",
        irregular: false,
        looped_loads: 0,
        total_loads: 16,
        top4_iters: [1.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(192);
    let cta_pitch = 4 * 2048;
    let mut b = ProgramBuilder::new();
    // Butterfly data legs: stride doubles every two loads.
    for leg in 0..8u32 {
        let stride = 128i64 << (leg / 2); // 128..1024
        b = b.ld(linear(0, cta_pitch, stride));
        if leg % 4 == 3 {
            b = b.wait().alu(24);
        }
    }
    // Twiddle factors — shared across CTAs (hot).
    for t in 0..4i64 {
        b = b.ld(linear_at(2, t * 512, 0, 128));
    }
    // Bit-reversal index tables — shared.
    for t in 0..4i64 {
        b = b.ld(linear_at(3, t * 256, 0, 128));
    }
    let prog = b
        .wait()
        .alu(30)
        .st(linear(4, cta_pitch, 128))
        .st(linear(5, cta_pitch, 128))
        .build();
    Kernel::new("FFT", (ctas, 1), 128, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_loads_no_loops() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 16);
        assert!(loads.iter().all(|(_, _, l)| !l));
        assert!(loads.len() > 4, "more PCs than CAP entries");
    }
}
