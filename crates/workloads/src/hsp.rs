//! HSP — hotspot (Rodinia).
//!
//! Thermal simulation over a 2-D plate with halo exchanges. The halo
//! offsets make the *line-level* warp stride irregular: the temperature
//! and power reads use a warp stride that is not a multiple of the cache
//! line, so consecutive warps touch a varying number of lines. CAP
//! detects the mismatch through its address verification and throttles —
//! the paper reports HSP among the lowest-coverage benchmarks (§VI-C).

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::surface;
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "HSP",
        name: "hotspot",
        suite: "Rodinia",
        irregular: false,
        looped_loads: 0,
        total_loads: 2,
        top4_iters: [1.0, 1.0, 0.0, 0.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let side = match scale {
        Scale::Full => 12,
        Scale::Small => 4,
    };
    // Halo-adjusted row width: 576 B ≠ k·128 B, so line-level strides
    // alternate between one and two lines per warp step.
    let halo_row = 576;
    let prog = ProgramBuilder::new()
        .ld(surface(0, 128, halo_row * 8, halo_row)) // temp with halo
        .ld(surface(1, 128, halo_row * 8, halo_row)) // power with halo
        .wait()
        .alu(40)
        .st(surface(2, 128, halo_row * 8, halo_row))
        .build();
    Kernel::new("HSP", (side, side), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::coalescer::coalesce;
    use caps_gpu_sim::isa::Op;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn two_loads_no_loops() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().all(|(_, _, looped)| !looped));
    }

    #[test]
    fn halo_stride_breaks_line_level_regularity() {
        // The word-level stride is constant (576) but line-level bases
        // do not stride uniformly — CAP's verification will see
        // mismatches.
        let k = kernel(Scale::Full);
        let Op::Ld { pattern, .. } = k.program.op(0) else {
            panic!("expected load")
        };
        let cta = CtaCoord::from_linear(0, 12);
        let mut lines = Vec::new();
        let mut firsts = Vec::new();
        for w in 0..4 {
            coalesce(&pattern, cta, w, 0, 32, 128, &mut lines);
            firsts.push(lines[0] as i64);
        }
        let d1 = firsts[1] - firsts[0];
        let d2 = firsts[2] - firsts[1];
        assert_ne!(d1, d2, "line-level stride must be irregular");
    }
}
