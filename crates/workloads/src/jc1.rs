//! JC1 — jacobi1D (Polybench/GPU).
//!
//! One-dimensional Jacobi relaxation: three neighbour loads (`A[i-1]`,
//! `A[i]`, `A[i+1]`) of the *same* array plus a coefficient read.
//! Neighbour loads mostly land in lines already fetched by this or the
//! adjacent warp, so the kernel is miss-latency-bound on the leading
//! edge of each CTA's stripe.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::{broadcast, linear_at};
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "JC1",
        name: "jacobi1D",
        suite: "Polybench/GPU",
        irregular: false,
        looped_loads: 0,
        total_loads: 4,
        top4_iters: [1.0, 1.0, 1.0, 1.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(256);
    let cta_pitch = 8 * 128; // 8 warps × one 128 B line each
    let prog = ProgramBuilder::new()
        .ld(linear_at(0, 0, cta_pitch, 128)) // A[i]
        .ld(linear_at(0, -4, cta_pitch, 128)) // A[i-1]
        .ld(linear_at(0, 4, cta_pitch, 128)) // A[i+1]
        .ld(broadcast(2)) // relaxation coefficients
        .wait()
        .alu(24)
        .st(linear_at(1, 0, cta_pitch, 128))
        .build();
    Kernel::new("JC1", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::coalescer::coalesce;
    use caps_gpu_sim::isa::Op;
    use caps_gpu_sim::types::CtaCoord;

    #[test]
    fn four_loads_no_loops() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().all(|(_, _, l)| !l));
    }

    #[test]
    fn neighbour_loads_share_the_centre_line() {
        let k = kernel(Scale::Full);
        let Op::Ld {
            pattern: centre, ..
        } = k.program.op(0)
        else {
            panic!()
        };
        let Op::Ld { pattern: left, .. } = k.program.op(1) else {
            panic!()
        };
        let cta = CtaCoord::from_linear(5, 64);
        let mut lc = Vec::new();
        let mut ll = Vec::new();
        coalesce(&centre, cta, 3, 0, 32, 128, &mut lc);
        coalesce(&left, cta, 3, 0, 32, 128, &mut ll);
        assert!(ll.contains(&lc[0]), "A[i-1] touches A[i]'s line");
    }
}
