//! MM — MatrixMul (CUDA SDK).
//!
//! Tiled dense matrix multiply: both static loads (A-tile and B-tile)
//! sit in the 33-iteration tile loop (Fig. 4: 2/2). Eight warps per CTA
//! — the geometry behind Fig. 1, where inter-warp prefetching collapses
//! at warp distance 7→8 because every prediction crosses a CTA boundary.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::surface_loop;
use crate::suite::WorkloadInfo;
use crate::Scale;

/// Matrix row width in bytes: 33 tiles × 32 floats.
const WIDTH: i64 = 33 * 32 * 4;
/// Tile edge in bytes.
const TILE: i64 = 32 * 4;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "MM",
        name: "MatrixMul",
        suite: "CUDA SDK",
        irregular: false,
        looped_loads: 2,
        total_loads: 2,
        top4_iters: [33.0, 33.0, 0.0, 0.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let side = match scale {
        Scale::Full => 16,
        Scale::Small => 4,
    };
    let iters = scale.iters(33);
    let prog = ProgramBuilder::new()
        .begin_loop(iters)
        // A[row, k·TILE..]: θ depends on cta.y, loop marches along k.
        .ld(surface_loop(0, 0, WIDTH * 8, WIDTH, TILE))
        // B[k·TILE.., col]: θ depends on cta.x, loop marches down rows.
        .ld(surface_loop(1, TILE, 0, WIDTH, TILE * 32))
        .wait()
        .alu(24) // tile MAC chain
        .barrier()
        .end_loop()
        .st(surface_loop(2, TILE, WIDTH * 8, WIDTH, 0))
        .build();
    Kernel::new("MM", (side, side), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_loads_in_the_tile_loop() {
        let k = kernel(Scale::Full);
        let loads = k.program.static_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().all(|(_, it, l)| *l && *it == 33));
        assert_eq!(k.warps_per_cta(32), 8, "Fig. 1 geometry: 8 warps per CTA");
    }
}
