//! SCN — scan (CUDA SDK).
//!
//! Work-efficient prefix sum: one strided load, a barrier-synchronized
//! reduction phase (modelled as ALU work between CTA barriers), one
//! store. The single static load (Fig. 4: 0/1) gives prefetchers little
//! surface; gains are small for every scheme.

use caps_gpu_sim::isa::ProgramBuilder;
use caps_gpu_sim::kernel::Kernel;

use crate::dsl::linear;
use crate::suite::WorkloadInfo;
use crate::Scale;

pub(crate) fn info() -> WorkloadInfo {
    WorkloadInfo {
        abbr: "SCN",
        name: "scan",
        suite: "CUDA SDK",
        irregular: false,
        looped_loads: 0,
        total_loads: 1,
        top4_iters: [1.0, 0.0, 0.0, 0.0],
    }
}

pub(crate) fn kernel(scale: Scale) -> Kernel {
    let ctas = scale.ctas(192);
    let cta_pitch = 8 * 128;
    let prog = ProgramBuilder::new()
        .ld(linear(0, cta_pitch, 128))
        .wait()
        .alu(20) // up-sweep
        .barrier()
        .alu(20) // down-sweep
        .barrier()
        .st(linear(1, cta_pitch, 128))
        .build();
    Kernel::new("SCN", (ctas, 1), 256, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caps_gpu_sim::isa::Op;

    #[test]
    fn single_load_with_barriers() {
        let k = kernel(Scale::Full);
        assert_eq!(k.program.static_loads().len(), 1);
        let barriers = k
            .program
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Barrier))
            .count();
        assert_eq!(barriers, 2);
    }
}
